//! The MapReduce job executor.
//!
//! [`run_job`] executes one job with real thread parallelism and full
//! dataflow semantics: map tasks over input splits, an optional map-side
//! combiner, hash partitioning, a shuffle of pre-sorted runs, a reduce-side
//! k-way merge group-by, and reduce tasks per partition. Every mapper
//! emission is counted and sized — the "intermediate data" of the paper's
//! cost analysis.
//!
//! Execution layout: tasks run on the [`crate::pool::WorkerPool`] owned by
//! the [`Cluster`] (spawned once, reused by every job). Each map task
//! writes its output straight into per-partition columnar buffers
//! ([`crate::arena::ColumnBuffer`] — separate key and value arenas, no
//! per-record tuple allocation), sorts each bucket through a `u32` index
//! permutation, and hands the buckets to the shuffle as whole sealed
//! [`crate::arena::ColumnRun`]s — the shuffle moves column `Vec`s, never
//! records, and its byte accounting is aggregated per bucket rather than
//! per record. Reducers merge their partition's sorted runs instead of
//! re-sorting, streaming each key group through
//! [`GroupValues`] so a group is never materialized unless the reducer's
//! API shape requires it ([`run_job`]'s classic `Vec<VM>` signature
//! collects at the boundary; [`run_job_streaming`] never does). Output is
//! returned in partition order with ties resolved by map-task index, so
//! results and metrics are bit-identical across runs and thread counts.
//!
//! Metric accounting is batched and thread-local throughout: map and
//! reduce tasks accumulate their counters in task-owned results that are
//! folded into [`JobMetrics`] in task order after each phase — no shared
//! counter is touched per record.

use crate::arena::{ColumnBuffer, ColumnRun, RunCursor};
use crate::cluster::{Cluster, CostModel};
use crate::fault::JobFaultSchedule;
use crate::metrics::JobMetrics;
use crate::size::{slice_est_bytes, EstimateSize};
use crate::MrError;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub use crate::arena::GroupValues;

/// Per-record framing overhead (key length + value length prefixes), bytes.
/// Public because the static plan analyzer reconstructs the engine's byte
/// accounting symbolically and must charge the same framing per record.
pub const RECORD_FRAMING_BYTES: usize = 8;
use RECORD_FRAMING_BYTES as FRAMING_BYTES;

/// A map-side combiner: receives one key's values from a single map task
/// and returns the (smaller) combined value list.
pub type Combiner<'a, KM, VM> = &'a (dyn Fn(&KM, Vec<VM>) -> Vec<VM> + Sync);

/// Where a job runs: directly on a [`Cluster`] (record-immediately,
/// strictly sequential semantics) or inside a scheduler batch through a
/// [`crate::sched::JobCtx`] (per-submission fault keying, deferred
/// submission-order commit).
///
/// Abstracting the site as a trait — rather than giving the scheduler its
/// own entry point — keeps `run_job(site, spec, input, mapper, reducer)` a
/// plain function call with identical argument positions at every driver
/// site, which is the shape the UDF-purity scanner (`haten2-srcscan`)
/// keys on when it certifies mapper/reducer closures deterministic.
pub trait JobSite {
    /// The cluster the job executes on.
    fn cluster(&self) -> &Cluster;

    /// Submission index keying this job's fault schedule
    /// ([`crate::fault::FaultPlan::schedule`]). For a bare [`Cluster`]
    /// this is the number of jobs already recorded; a scheduler batch
    /// pre-assigns indices at submission so fault replay is independent
    /// of completion order.
    fn job_index(&self) -> usize;

    /// The plan-derived `map_emit_hint` for the named job, when the site
    /// knows the job's [`crate::plan::JobGraph`]. Only consulted when the
    /// [`JobSpec`] carries no explicit override.
    fn derived_emit_hint(&self, name: &str) -> Option<usize>;

    /// Validate that this site may run a job named `name` now. Scheduler
    /// contexts enforce that the job was declared at submission and runs
    /// exactly once.
    fn before_run(&self, name: &str) -> crate::Result<()>;

    /// Deliver the finished job's metrics: record immediately (bare
    /// cluster) or stash for submission-order commit (scheduler batch).
    fn commit_metrics(&self, metrics: JobMetrics);

    /// How many pool executors this job's internal task broadcasts may
    /// use, given the cluster's configured `threads`. A bare [`Cluster`]
    /// grants all of them; a scheduler batch running several jobs
    /// concurrently divides the pool between in-flight jobs, so nested
    /// broadcasts stop contending for the same workers — and on hosts
    /// with fewer cores than concurrent jobs each job's tasks collapse to
    /// inline execution with zero queue traffic. Purely a performance
    /// knob: task results are independent of executor count by
    /// construction.
    fn task_parallelism(&self, threads: usize) -> usize {
        threads
    }
}

impl JobSite for Cluster {
    fn cluster(&self) -> &Cluster {
        self
    }

    fn job_index(&self) -> usize {
        self.jobs_run()
    }

    fn derived_emit_hint(&self, _name: &str) -> Option<usize> {
        None
    }

    fn before_run(&self, _name: &str) -> crate::Result<()> {
        Ok(())
    }

    fn commit_metrics(&self, metrics: JobMetrics) {
        self.record(metrics);
    }
}

/// Declarative description of one job.
pub struct JobSpec<'a, KM, VM> {
    /// Job name for metrics.
    pub name: String,
    /// Optional map-side combiner: receives one key's values from a single
    /// map task and returns the (smaller) combined value list.
    pub combiner: Option<Combiner<'a, KM, VM>>,
    /// Expected mapper emissions per input record, when known. Purely a
    /// performance hint: map tasks pre-size their partition buckets from
    /// it. Has no effect on results or metrics.
    pub map_emit_hint: Option<usize>,
}

impl<'a, KM, VM> JobSpec<'a, KM, VM> {
    /// A job with no combiner.
    pub fn named(name: impl Into<String>) -> Self {
        JobSpec {
            name: name.into(),
            combiner: None,
            map_emit_hint: None,
        }
    }

    /// Attach a combiner.
    pub fn with_combiner(mut self, combiner: Combiner<'a, KM, VM>) -> Self {
        self.combiner = Some(combiner);
        self
    }

    /// Declare the expected number of mapper emissions per input record
    /// (e.g. 2 for a mapper that always emits twice), letting map tasks
    /// allocate their output buckets once.
    pub fn with_map_emit_hint(mut self, per_record: usize) -> Self {
        self.map_emit_hint = Some(per_record);
        self
    }
}

struct MapTaskResult<KM, VM> {
    /// Sealed `(partition, run)` pairs in partition order, **non-empty
    /// cells only**: a tiny job on a wide cluster touches a handful of
    /// its `tasks × reducers` cells, and shuffling the empty ones was a
    /// measurable per-job constant.
    runs: Vec<(u32, ColumnRun<KM, VM>)>,
    input_records: usize,
    input_bytes: usize,
    output_records: usize,
    output_bytes: usize,
    /// Arena high-water proxy: bytes reserved by this task's column
    /// buffers at peak fill. Observability only (never in [`JobMetrics`]).
    alloc_bytes: usize,
}

/// FNV-1a. The partitioner only needs a stable, well-mixed hash, not a
/// keyed SipHash — and it runs once per emitted record, which made
/// `DefaultHasher` construction and finalization a measurable per-record
/// cost in the seed engine.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// Hash-partitioner for one job, with the reduction `hash % partitions`
/// strength-reduced to multiplications (Lemire's fastmod, widened to
/// 64-bit operands over a 128-bit intermediate). The divisor is fixed for
/// a whole job while the reduction runs once per emitted record, where
/// the 64-bit division was a measurable per-record cost. The result is
/// *exactly* `hash % partitions` for every input — partition placement,
/// output order, and metrics are unchanged (asserted over edge cases and
/// random draws in `fastmod_matches_division`).
pub(crate) struct Partitioner {
    partitions: u64,
    /// `floor(2^128 / partitions) + 1`; zero when `partitions == 1`
    /// (everything lands in partition 0).
    magic: u128,
}

impl Partitioner {
    pub(crate) fn new(partitions: usize) -> Self {
        let d = partitions.max(1) as u64;
        Partitioner {
            partitions: d,
            magic: (u128::MAX / u128::from(d)).wrapping_add(1),
        }
    }

    #[inline]
    pub(crate) fn partition_of<K: Hash>(&self, key: &K) -> usize {
        let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
        key.hash(&mut h);
        self.rem(h.finish()) as usize
    }

    /// `x % self.partitions` via two widening multiplications.
    #[inline]
    fn rem(&self, x: u64) -> u64 {
        let lowbits = self.magic.wrapping_mul(u128::from(x));
        // mulhi(lowbits, d) = (lowbits * d) >> 128, in 128-bit pieces:
        // lowbits = hi·2^64 + lo, so the product >> 128 is
        // (hi·d + (lo·d >> 64)) >> 64. Both terms fit u128.
        let lo = lowbits & u128::from(u64::MAX);
        let hi = lowbits >> 64;
        let d = u128::from(self.partitions);
        ((hi * d + ((lo * d) >> 64)) >> 64) as u64
    }
}

pub(crate) fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    Partitioner::new(partitions).partition_of(key)
}

/// Deterministic key-slice assignment for two-phase aggregation: the
/// slice of `key` among `slices` (clamped to at least 1), computed with
/// the *same* FNV-1a hash + modulus the shuffle [`Partitioner`] uses. A
/// `heavy-key-split` split instance owns the whole key groups whose slice
/// equals its index, and the map-side [`crate::rewrite::KeyFreqSketch`]
/// buckets by the same function — so detector, splitter, and shuffle all
/// agree on where a key lives.
#[must_use]
pub fn key_slice<K: Hash>(key: &K, slices: usize) -> usize {
    partition_of(key, slices)
}

/// How reduce-side key groups are delivered to the user's reducer: either
/// collected into an owned `Vec` at the engine boundary ([`run_job`]'s
/// classic signature) or streamed ([`run_job_streaming`]). The merge loop
/// itself is shared and never materializes a group.
pub(crate) trait Reduce<KM: Ord, VM, KO, VO>: Sync {
    /// Whether each group is collected into one owned `Vec` (charged to
    /// the allocation high-water proxy).
    const MATERIALIZES: bool;

    /// Consume one key group. `values` streams the group in run (= map
    /// task) order; any values left unconsumed are drained by the caller.
    fn reduce(&self, key: &KM, values: &mut GroupValues<'_, KM, VM>, emit: &mut dyn FnMut(KO, VO));
}

/// Adapter giving classic reducers (`Fn(&K, Vec<V>, emit)`) the streamed
/// group as an owned `Vec`, sized exactly once.
struct VecReduce<F>(F);

impl<KM: Ord, VM, KO, VO, F> Reduce<KM, VM, KO, VO> for VecReduce<F>
where
    F: Fn(&KM, Vec<VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    const MATERIALIZES: bool = true;

    fn reduce(&self, key: &KM, values: &mut GroupValues<'_, KM, VM>, emit: &mut dyn FnMut(KO, VO)) {
        let mut vals = Vec::with_capacity(values.len());
        vals.extend(&mut *values);
        (self.0)(key, vals, emit)
    }
}

/// Pass-through for streaming reducers.
struct StreamReduce<F>(F);

impl<KM: Ord, VM, KO, VO, F> Reduce<KM, VM, KO, VO> for StreamReduce<F>
where
    F: Fn(&KM, &mut GroupValues<'_, KM, VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    const MATERIALIZES: bool = false;

    fn reduce(&self, key: &KM, values: &mut GroupValues<'_, KM, VM>, emit: &mut dyn FnMut(KO, VO)) {
        (self.0)(key, values, emit)
    }
}

/// Execute one MapReduce job on `site` (a [`Cluster`] for sequential
/// record-immediately execution, or a [`crate::sched::JobCtx`] inside a
/// scheduler batch).
///
/// * `input` — the input split, as `(key, value)` records.
/// * `mapper` — called per input record with an `emit(key, value)` sink.
/// * `reducer` — called per intermediate key with all its values (combined
///   across map tasks) and an `emit(key, value)` sink.
///
/// Returns the reduce output, in partition order with each key group's
/// values ordered by (map task, emission order) — deterministic across
/// runs and across `threads` settings. Metrics (including simulated
/// cluster time) are recorded on the `cluster` and also derivable from the
/// returned metrics snapshot.
///
/// Each key group is handed to `reducer` as one owned `Vec<VM>`; reducers
/// that fold their group in a single forward pass should prefer
/// [`run_job_streaming`], which skips that materialization entirely.
///
/// ```
/// use haten2_mapreduce::{run_job, Cluster, ClusterConfig, JobSpec};
///
/// let cluster = Cluster::new(ClusterConfig::with_machines(4));
/// let docs = vec![(0u64, "a b a".to_string()), (1, "b c".to_string())];
/// let mut counts = run_job(
///     &cluster,
///     JobSpec::named("word-count"),
///     &docs,
///     |_, text: &String, emit| {
///         for w in text.split_whitespace() {
///             emit(w.to_string(), 1u64);
///         }
///     },
///     |word, ones, emit| emit(word.clone(), ones.iter().sum::<u64>()),
/// )
/// .unwrap();
/// counts.sort();
/// assert_eq!(counts, vec![
///     ("a".to_string(), 2),
///     ("b".to_string(), 2),
///     ("c".to_string(), 1),
/// ]);
/// // The paper's "intermediate data" is the mapper output, counted exactly:
/// assert_eq!(cluster.metrics().jobs[0].map_output_records, 5);
/// ```
pub fn run_job<KI, VI, KM, VM, KO, VO, M, R>(
    site: &impl JobSite,
    spec: JobSpec<'_, KM, VM>,
    input: &[(KI, VI)],
    mapper: M,
    reducer: R,
) -> crate::Result<Vec<(KO, VO)>>
where
    KI: Sync + EstimateSize,
    VI: Sync + EstimateSize,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Send + EstimateSize,
    VO: Send + EstimateSize,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Fn(&KM, Vec<VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    run_job_inner(site, spec, input, mapper, VecReduce(reducer))
}

/// Like [`run_job`], but each key group's values are *streamed* to the
/// reducer through a [`GroupValues`] iterator instead of being collected
/// into an owned `Vec` first — the group is never materialized, so a
/// skewed key whose group dwarfs the average costs its wire bytes once
/// (in the runs) instead of twice. Semantics are otherwise identical:
/// same output order, same metrics, same failure rules, and the
/// per-group memory *accounting* (`max_group_bytes`, the OOM budget)
/// still charges the full group so the paper's o.o.m. behaviour is
/// unchanged.
///
/// Values arrive in run (= map task, then emission) order — exactly the
/// order [`run_job`] presents in its `Vec`. Unconsumed values are drained
/// automatically when the reducer returns.
///
/// ```
/// use haten2_mapreduce::{run_job_streaming, Cluster, ClusterConfig, JobSpec};
///
/// let cluster = Cluster::new(ClusterConfig::with_machines(4));
/// let input = vec![(0u64, 1.0f64), (0, 2.0), (1, 3.0)];
/// let mut sums = run_job_streaming(
///     &cluster,
///     JobSpec::named("sum"),
///     &input,
///     |k, v: &f64, emit| emit(*k, *v),
///     |k, vals, emit| emit(*k, vals.sum::<f64>()),
/// )
/// .unwrap();
/// sums.sort_by(|a, b| a.0.cmp(&b.0));
/// assert_eq!(sums, vec![(0, 3.0), (1, 3.0)]);
/// ```
pub fn run_job_streaming<KI, VI, KM, VM, KO, VO, M, R>(
    site: &impl JobSite,
    spec: JobSpec<'_, KM, VM>,
    input: &[(KI, VI)],
    mapper: M,
    reducer: R,
) -> crate::Result<Vec<(KO, VO)>>
where
    KI: Sync + EstimateSize,
    VI: Sync + EstimateSize,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Send + EstimateSize,
    VO: Send + EstimateSize,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Fn(&KM, &mut GroupValues<'_, KM, VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    run_job_inner(site, spec, input, mapper, StreamReduce(reducer))
}

fn run_job_inner<KI, VI, KM, VM, KO, VO, M, R>(
    site: &impl JobSite,
    spec: JobSpec<'_, KM, VM>,
    input: &[(KI, VI)],
    mapper: M,
    reducer: R,
) -> crate::Result<Vec<(KO, VO)>>
where
    KI: Sync + EstimateSize,
    VI: Sync + EstimateSize,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Send + EstimateSize,
    VO: Send + EstimateSize,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Reduce<KM, VM, KO, VO>,
{
    site.before_run(&spec.name)?;
    let mut spec = spec;
    if spec.map_emit_hint.is_none() {
        spec.map_emit_hint = site.derived_emit_hint(&spec.name);
    }
    let cluster = site.cluster();
    let job_index = site.job_index();
    let started = Instant::now();
    let started_s = cluster.since_epoch();
    let cfg = cluster.config();
    let num_reducers = cfg.num_reducers();
    let num_map_tasks = cfg.machines.max(1);
    let threads = site.task_parallelism(cfg.threads.max(1)).max(1);

    // ---- Map phase -------------------------------------------------------
    let split_len = input.len().div_ceil(num_map_tasks).max(1);
    let splits: Vec<&[(KI, VI)]> = input.chunks(split_len).collect();
    let actual_tasks = splits.len();

    // Expand the fault schedule up front: a pure function of the plan and
    // the job's geometry, so recovery decisions (and their metrics) are
    // independent of which worker thread runs which task.
    let sched: Option<JobFaultSchedule> = cfg.fault_plan.as_ref().map(|plan| {
        plan.schedule(
            &spec.name,
            job_index,
            actual_tasks,
            num_reducers,
            cfg.machines.max(1),
        )
    });
    if let Some(s) = &sched {
        if let Some(t) = s.first_exhausted_map() {
            return Err(MrError::TaskFailed {
                job: spec.name,
                phase: "map",
                task: t,
                attempts: s.map[t].failed_attempts,
            });
        }
    }

    // A task's buckets: either a fresh hint-capacity vector (its column
    // reservations are the point of the emit hint) or the executor's
    // recycled scratch vector. Sealing `mem::take`s the filled cells, so
    // after a task the scratch holds empty zero-capacity buffers again —
    // reuse saves the per-task construction and drop of a
    // `num_reducers`-sized vector, a measurable constant for tiny jobs on
    // wide clusters, and nothing else: the data-carrying columns are
    // moved into the shuffle either way.
    let run_map_task =
        |task_id: usize, scratch: &mut Vec<ColumnBuffer<KM, VM>>| -> MapTaskResult<KM, VM> {
            let split = splits[task_id];
            let bucket_capacity = spec.map_emit_hint.map_or(0, |per_record| {
                (split.len() * per_record).div_ceil(num_reducers)
            });
            // Pre-sizing only pays off past Vec's first growth steps; for tiny
            // expected buckets an eager allocation per (task × partition) costs
            // more than the reallocations it avoids.
            let bucket_capacity = if bucket_capacity >= 8 {
                bucket_capacity
            } else {
                0
            };
            let mut sized;
            let buckets: &mut Vec<ColumnBuffer<KM, VM>> = if bucket_capacity > 0 {
                sized = (0..num_reducers)
                    .map(|_| ColumnBuffer::with_capacity(bucket_capacity))
                    .collect();
                &mut sized
            } else {
                scratch.resize_with(num_reducers, ColumnBuffer::new);
                scratch
            };
            // Batch input accounting (O(1) for fixed-size record types) —
            // identical sum to a per-record walk, per `slice_est_bytes`.
            let input_bytes = slice_est_bytes(split) + split.len() * FRAMING_BYTES;
            {
                let partitioner = Partitioner::new(num_reducers);
                let mut emit = |k: KM, v: VM| {
                    let p = partitioner.partition_of(&k);
                    buckets[p].push(k, v);
                };
                for (k, v) in split {
                    mapper(k, v, &mut emit);
                }
            }
            let mut output_records = 0usize;
            let mut output_bytes = 0usize;
            let mut alloc_bytes = 0usize;
            let mut runs = Vec::new();
            for (p, slot) in buckets.iter_mut().enumerate() {
                alloc_bytes += slot.alloc_bytes();
                // Empty cells never reach the shuffle: a tiny job on a wide
                // cluster fills a handful of its `tasks × reducers` buckets,
                // and sealing/moving the empty rest was a measurable per-job
                // constant.
                if slot.is_empty() {
                    continue;
                }
                let mut bucket = std::mem::take(slot);
                // Pre-combine accounting: the paper's "intermediate data".
                // Batch-sized: O(1) for fixed-size record types.
                let pre_bytes = bucket.est_bytes();
                output_records += bucket.len();
                output_bytes += pre_bytes;
                // Map-side sort, so reducers merge instead of re-sorting.
                // Stability preserves emission order within equal keys.
                bucket.sort_stable();
                let bytes = match spec.combiner {
                    Some(combiner) => {
                        bucket.combine(combiner);
                        bucket.est_bytes()
                    }
                    None => pre_bytes,
                };
                // One push per sealed run (task × partition), not per record.
                // lint:allow(no-per-record-alloc)
                runs.push((p as u32, bucket.seal(bytes)));
            }
            MapTaskResult {
                runs,
                input_records: split.len(),
                input_bytes,
                output_records,
                output_bytes,
                alloc_bytes,
            }
        };

    // Results land in per-task write-once slots (not a shared push list),
    // so metrics accumulate in task order and the shuffle sees runs in
    // map-task order regardless of which worker finished first.
    // (`Mutex<Option<_>>` rather than `OnceLock`: the latter's `Sync`
    // bound would leak a `Sync` requirement onto key/value types.)
    let map_slots: Vec<Mutex<Option<MapTaskResult<KM, VM>>>> =
        (0..actual_tasks).map(|_| Mutex::new(None)).collect();
    let task_counter = AtomicUsize::new(0);

    let map_executors = threads.min(actual_tasks).max(1);
    // One recycled bucket vector per executor; executor indices are
    // distinct per broadcast, so each lock is uncontended and held for
    // the executor's whole drain of the task queue.
    let scratches: Vec<Mutex<Vec<ColumnBuffer<KM, VM>>>> =
        (0..map_executors).map(|_| Mutex::new(Vec::new())).collect();
    cluster.pool().broadcast(map_executors, &|executor| {
        let mut scratch = scratches[executor].lock().expect("scratch poisoned");
        loop {
            let t = task_counter.fetch_add(1, Ordering::Relaxed);
            if t >= actual_tasks {
                break;
            }
            // Scheduled task failures: each failed attempt runs the mapper
            // and discards its output (wasted work), then the task retries.
            if let Some(s) = &sched {
                for _ in 0..s.map[t].failed_attempts {
                    drop(run_map_task(t, &mut scratch));
                }
            }
            let result = run_map_task(t, &mut scratch);
            let prev = map_slots[t]
                .lock()
                .expect("map slot poisoned")
                .replace(result);
            assert!(prev.is_none(), "map task visited once");
        }
    });

    // ---- Shuffle ---------------------------------------------------------
    // Zero-copy: each map task's per-partition runs move wholesale to
    // their reducer; accounting uses the runs' precomputed aggregates.
    let mut metrics = JobMetrics {
        name: spec.name.clone(),
        ..Default::default()
    };
    let mut alloc_proxy_bytes = 0usize;
    // Lazily grown: partitions a job never emits into (common for tiny
    // jobs on wide clusters) must not pay an `actual_tasks`-sized alloc.
    let mut partition_runs: Vec<Vec<ColumnRun<KM, VM>>> =
        (0..num_reducers).map(|_| Vec::new()).collect();
    for (t, slot) in map_slots.into_iter().enumerate() {
        let r = slot
            .into_inner()
            .expect("map slot poisoned")
            .expect("every map task ran to completion");
        metrics.map_input_records += r.input_records;
        metrics.map_input_bytes += r.input_bytes;
        metrics.map_output_records += r.output_records;
        metrics.map_output_bytes += r.output_bytes;
        alloc_proxy_bytes += r.alloc_bytes;
        if let (Some(s), Some(plan)) = (&sched, &cfg.fault_plan) {
            s.map[t].account_map(
                plan,
                r.input_bytes as f64 / cfg.map_bytes_per_s,
                &mut metrics,
            );
        }
        for (p, run) in r.runs {
            metrics.shuffle_records += run.len();
            metrics.shuffle_bytes += run.bytes();
            partition_runs[p as usize].push(run);
        }
    }

    if let Some(cap) = cfg.cluster_capacity_bytes {
        if metrics.map_output_bytes > cap {
            return Err(MrError::ClusterCapacityExceeded {
                job: spec.name,
                intermediate_bytes: metrics.map_output_bytes,
                capacity_bytes: cap,
            });
        }
    }

    // ---- Reduce phase ----------------------------------------------------
    struct ReduceTaskResult<KO, VO> {
        output: ColumnBuffer<KO, VO>,
        groups: usize,
        output_records: usize,
        output_bytes: usize,
        max_group_bytes: usize,
        alloc_bytes: usize,
    }

    // Group one partition's sorted runs by k-way merge. Equal keys drain
    // in run (= map task) order, reproducing the record order a stable
    // full sort of task-ordered input would give. Groups are *streamed*:
    // the merge sizes each group (for the OOM budget and skew accounting)
    // from the runs' key columns, then hands the reducer a cursor-backed
    // iterator — only `Vec`-signature reducers collect it. `Err(Some(e))`
    // is this partition's own failure; `Err(None)` means it aborted
    // because another partition already failed.
    let reduce_partition = |runs: Vec<ColumnRun<KM, VM>>,
                            failed: &AtomicBool|
     -> Result<ReduceTaskResult<KO, VO>, Option<MrError>> {
        let mut cursors: Vec<RunCursor<KM, VM>> =
            runs.into_iter().map(ColumnRun::into_cursor).collect();
        let mut out: ColumnBuffer<KO, VO> = ColumnBuffer::new();
        let mut groups = 0usize;
        let mut output_records = 0usize;
        let mut output_bytes = 0usize;
        let mut max_group_bytes = 0usize;
        let mut alloc_bytes = 0usize;
        // Per-run prefix counts of the current group, reused across groups;
        // they both size the group and drive its cursor-backed iterator.
        let mut counts: Vec<u32> = Vec::with_capacity(cursors.len());
        loop {
            if failed.load(Ordering::Relaxed) {
                return Err(None);
            }
            // Smallest key at the head of any run starts the next group.
            let mut min_run: Option<usize> = None;
            for (i, cursor) in cursors.iter().enumerate() {
                if let Some(k) = cursor.peek_key() {
                    let smaller = match min_run {
                        None => true,
                        Some(m) => Some(k) < cursors[m].peek_key(),
                    };
                    if smaller {
                        min_run = Some(i);
                    }
                }
            }
            let Some(min_run) = min_run else { break };
            let key = cursors[min_run]
                .peek_key()
                .expect("min run nonempty")
                .clone();

            // Size the group before streaming it: count each run's
            // matching key prefix, O(1)-summing value bytes for
            // fixed-size value types. This is the budget/skew accounting
            // only — values are not touched.
            let mut n_vals = 0usize;
            let mut val_bytes = 0usize;
            counts.clear();
            for cursor in &cursors {
                let cnt = cursor
                    .pending_keys()
                    .iter()
                    .take_while(|k| **k == key)
                    .count();
                counts.push(u32::try_from(cnt).expect("group run prefix fits u32"));
                n_vals += cnt;
                val_bytes += match VM::FIXED_BYTES {
                    Some(b) => b * cnt,
                    None => cursor.pending_vals()[..cnt]
                        .iter()
                        .map(EstimateSize::est_bytes)
                        .sum(),
                };
            }
            let group_bytes = key.est_bytes() + val_bytes + n_vals * FRAMING_BYTES;
            if let Some(budget) = cfg.reducer_memory_bytes {
                if group_bytes > budget {
                    return Err(Some(MrError::ReducerOom {
                        job: spec.name.clone(),
                        group_bytes,
                        budget_bytes: budget,
                    }));
                }
            }
            max_group_bytes = max_group_bytes.max(group_bytes);
            groups += 1;
            if R::MATERIALIZES {
                // The Vec-signature boundary collects the group once.
                alloc_bytes += n_vals * std::mem::size_of::<VM>();
            }
            let mut group = GroupValues::new(&mut cursors, &key, &counts, n_vals);
            let mut emit = |k: KO, v: VO| {
                output_records += 1;
                output_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                out.push(k, v);
            };
            reducer.reduce(&key, &mut group, &mut emit);
            // A streaming reducer may stop early; drain the remainder so
            // the next group starts at a clean cursor position.
            group.for_each(drop);
        }
        alloc_bytes += out.alloc_bytes();
        Ok(ReduceTaskResult {
            output: out,
            groups,
            output_records,
            output_bytes,
            max_group_bytes,
            alloc_bytes,
        })
    };

    // Each partition is consumed by exactly one reduce task; hand ownership
    // through per-partition mutex cells so workers can take them without
    // cloning. Results land in per-partition write-once slots.
    type PartitionCell<K, V> = Mutex<Option<Vec<ColumnRun<K, V>>>>;
    let partition_cells: Vec<PartitionCell<KM, VM>> = partition_runs
        .into_iter()
        .map(|p| Mutex::new(Some(p)))
        .collect();
    let reduce_slots: Vec<Mutex<Option<ReduceTaskResult<KO, VO>>>> =
        (0..num_reducers).map(|_| Mutex::new(None)).collect();

    let part_counter = AtomicUsize::new(0);
    // On concurrent failures the one with the smallest partition index
    // wins, matching what a sequential executor would report first.
    let failure: Mutex<Option<(usize, MrError)>> = Mutex::new(None);
    let failed = AtomicBool::new(false);

    cluster
        .pool()
        .broadcast(threads.min(num_reducers), &|_executor| loop {
            if failed.load(Ordering::Relaxed) {
                break;
            }
            let p = part_counter.fetch_add(1, Ordering::Relaxed);
            if p >= num_reducers {
                break;
            }
            // Scheduled reduce-task budget exhaustion surfaces exactly like
            // any other per-partition failure: smallest partition wins.
            if let Some(f) = sched.as_ref().map(|s| &s.reduce[p]) {
                if f.exhausted {
                    let mut slot = failure.lock().expect("failure slot poisoned");
                    if slot.as_ref().is_none_or(|(fp, _)| p < *fp) {
                        *slot = Some((
                            p,
                            MrError::TaskFailed {
                                job: spec.name.clone(),
                                phase: "reduce",
                                task: p,
                                attempts: f.failed_attempts,
                            },
                        ));
                    }
                    failed.store(true, Ordering::Relaxed);
                    break;
                }
            }
            let runs = partition_cells[p]
                .lock()
                .expect("partition cell poisoned")
                .take()
                .expect("partition visited once");
            match reduce_partition(runs, &failed) {
                Ok(result) => {
                    let prev = reduce_slots[p]
                        .lock()
                        .expect("reduce slot poisoned")
                        .replace(result);
                    assert!(prev.is_none(), "partition reduced once");
                }
                Err(Some(err)) => {
                    let mut slot = failure.lock().expect("failure slot poisoned");
                    if slot.as_ref().is_none_or(|(fp, _)| p < *fp) {
                        *slot = Some((p, err));
                    }
                    failed.store(true, Ordering::Relaxed);
                    break;
                }
                Err(None) => break,
            }
        });

    if let Some((_, err)) = failure.into_inner().expect("failure slot poisoned") {
        return Err(err);
    }

    // Assemble output and metrics in partition order — deterministic.
    let mut output = Vec::new();
    for slot in reduce_slots {
        let r = slot
            .into_inner()
            .expect("reduce slot poisoned")
            .expect("every partition reduced");
        metrics.reduce_groups += r.groups;
        metrics.reduce_output_records += r.output_records;
        metrics.reduce_output_bytes += r.output_bytes;
        metrics.max_group_bytes = metrics.max_group_bytes.max(r.max_group_bytes);
        alloc_proxy_bytes += r.alloc_bytes;
        output.extend(r.output.into_pairs());
    }

    if let (Some(s), Some(plan)) = (&sched, &cfg.fault_plan) {
        for f in &s.reduce {
            f.account_reduce(plan, &mut metrics);
        }
        metrics.workers_blacklisted = s.workers_blacklisted;
    }

    cluster.charge_alloc_proxy(alloc_proxy_bytes);
    metrics.wall_time_s = started.elapsed().as_secs_f64();
    metrics.started_s = started_s;
    metrics.finished_s = started_s + metrics.wall_time_s;
    metrics.sim_time_s = CostModel::job_time_s(cfg, &metrics);
    site.commit_metrics(metrics);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastmod_matches_division() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(99);
        let mut divisors: Vec<u64> = (1..=512).collect();
        divisors.extend([
            1_000,
            4_096,
            65_535,
            65_536,
            1 << 32,
            u64::MAX,
            u64::MAX - 1,
        ]);
        divisors.extend((0..64).map(|_| rng.gen_range(1..u64::MAX)));
        for &d in &divisors {
            let p = Partitioner::new(d.try_into().unwrap_or(usize::MAX));
            let d = p.partitions; // after usize clamp on 32-bit targets
            let mut xs = vec![
                0u64,
                1,
                2,
                d.wrapping_sub(1),
                d,
                d.wrapping_add(1),
                u64::MAX,
            ];
            xs.extend((0..256).map(|_| rng.gen::<u64>()));
            for x in xs {
                assert_eq!(p.rem(x), x % d, "x={x} d={d}");
            }
        }
    }

    #[test]
    fn partitioner_agrees_with_partition_of() {
        for partitions in [1usize, 2, 3, 7, 40, 41, 1024] {
            let p = Partitioner::new(partitions);
            for key in 0u64..500 {
                assert_eq!(p.partition_of(&key), partition_of(&key, partitions));
                let tuple_key = (key as u8, key.wrapping_mul(0x9e37_79b9));
                assert_eq!(
                    p.partition_of(&tuple_key),
                    partition_of(&tuple_key, partitions)
                );
            }
        }
    }
}
