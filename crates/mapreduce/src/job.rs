//! The MapReduce job executor.
//!
//! [`run_job`] executes one job with real thread parallelism and full
//! dataflow semantics: map tasks over input splits, an optional map-side
//! combiner, hash partitioning, a sort-based reduce-side group-by, and
//! reduce tasks per partition. Every mapper emission is counted and sized —
//! the "intermediate data" of the paper's cost analysis.

use crate::cluster::{Cluster, CostModel};
use crate::metrics::JobMetrics;
use crate::size::EstimateSize;
use crate::MrError;
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Per-record framing overhead (key length + value length prefixes), bytes.
const FRAMING_BYTES: usize = 8;

/// A map-side combiner: receives one key's values from a single map task
/// and returns the (smaller) combined value list.
pub type Combiner<'a, KM, VM> = &'a (dyn Fn(&KM, Vec<VM>) -> Vec<VM> + Sync);

/// Declarative description of one job.
pub struct JobSpec<'a, KM, VM> {
    /// Job name for metrics.
    pub name: String,
    /// Optional map-side combiner: receives one key's values from a single
    /// map task and returns the (smaller) combined value list.
    pub combiner: Option<Combiner<'a, KM, VM>>,
}

impl<'a, KM, VM> JobSpec<'a, KM, VM> {
    /// A job with no combiner.
    pub fn named(name: impl Into<String>) -> Self {
        JobSpec { name: name.into(), combiner: None }
    }

    /// Attach a combiner.
    pub fn with_combiner(mut self, combiner: Combiner<'a, KM, VM>) -> Self {
        self.combiner = Some(combiner);
        self
    }
}

struct MapTaskResult<KM, VM> {
    buckets: Vec<Vec<(KM, VM)>>,
    input_records: usize,
    input_bytes: usize,
    output_records: usize,
    output_bytes: usize,
    retried: bool,
}

fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % partitions
}

/// Execute one MapReduce job on `cluster`.
///
/// * `input` — the input split, as `(key, value)` records.
/// * `mapper` — called per input record with an `emit(key, value)` sink.
/// * `reducer` — called per intermediate key with all its values (combined
///   across map tasks) and an `emit(key, value)` sink.
///
/// Returns the reduce output. Metrics (including simulated cluster time) are
/// recorded on the `cluster` and also derivable from the returned metrics
/// snapshot.
///
/// ```
/// use haten2_mapreduce::{run_job, Cluster, ClusterConfig, JobSpec};
///
/// let cluster = Cluster::new(ClusterConfig::with_machines(4));
/// let docs = vec![(0u64, "a b a".to_string()), (1, "b c".to_string())];
/// let mut counts = run_job(
///     &cluster,
///     JobSpec::named("word-count"),
///     &docs,
///     |_, text: &String, emit| {
///         for w in text.split_whitespace() {
///             emit(w.to_string(), 1u64);
///         }
///     },
///     |word, ones, emit| emit(word.clone(), ones.iter().sum::<u64>()),
/// )
/// .unwrap();
/// counts.sort();
/// assert_eq!(counts, vec![
///     ("a".to_string(), 2),
///     ("b".to_string(), 2),
///     ("c".to_string(), 1),
/// ]);
/// // The paper's "intermediate data" is the mapper output, counted exactly:
/// assert_eq!(cluster.metrics().jobs[0].map_output_records, 5);
/// ```
pub fn run_job<KI, VI, KM, VM, KO, VO, M, R>(
    cluster: &Cluster,
    spec: JobSpec<'_, KM, VM>,
    input: &[(KI, VI)],
    mapper: M,
    reducer: R,
) -> crate::Result<Vec<(KO, VO)>>
where
    KI: Sync + EstimateSize,
    VI: Sync + EstimateSize,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Send + EstimateSize,
    VO: Send + EstimateSize,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Fn(&KM, Vec<VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    let started = Instant::now();
    let cfg = cluster.config();
    let num_reducers = cfg.num_reducers();
    let num_map_tasks = cfg.machines.max(1);
    let threads = cfg.threads.max(1);

    // ---- Map phase -------------------------------------------------------
    let split_len = input.len().div_ceil(num_map_tasks).max(1);
    let splits: Vec<&[(KI, VI)]> = input.chunks(split_len).collect();
    let actual_tasks = splits.len();

    let task_counter = AtomicUsize::new(0);
    let map_results: Mutex<Vec<MapTaskResult<KM, VM>>> = Mutex::new(Vec::new());

    let run_map_task = |task_id: usize| -> MapTaskResult<KM, VM> {
        let split = splits[task_id];
        let mut buckets: Vec<Vec<(KM, VM)>> = (0..num_reducers).map(|_| Vec::new()).collect();
        let mut output_records = 0usize;
        let mut output_bytes = 0usize;
        let mut input_bytes = 0usize;
        {
            let mut emit = |k: KM, v: VM| {
                output_records += 1;
                output_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                buckets[partition_of(&k, num_reducers)].push((k, v));
            };
            for (k, v) in split {
                input_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                mapper(k, v, &mut emit);
            }
        }
        // Map-side combine: group this task's buckets by key and combine.
        if let Some(combiner) = spec.combiner {
            for bucket in &mut buckets {
                bucket.sort_by(|a, b| a.0.cmp(&b.0));
                let drained = std::mem::take(bucket);
                let mut it = drained.into_iter().peekable();
                while let Some((key, first)) = it.next() {
                    let mut vals = vec![first];
                    while it.peek().is_some_and(|(k, _)| *k == key) {
                        vals.push(it.next().expect("peeked").1);
                    }
                    for v in combiner(&key, vals) {
                        bucket.push((key.clone(), v));
                    }
                }
            }
        }
        MapTaskResult {
            buckets,
            input_records: split.len(),
            input_bytes,
            output_records,
            output_bytes,
            retried: false,
        }
    };

    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(actual_tasks) {
            s.spawn(|_| loop {
                let t = task_counter.fetch_add(1, Ordering::Relaxed);
                if t >= actual_tasks {
                    break;
                }
                // Deterministic failure injection: the chosen tasks "fail"
                // on their first attempt (output discarded) and are retried.
                let mut retried = false;
                if let Some(n) = cfg.fail_every_nth_task {
                    if n > 0 && (t + 1).is_multiple_of(n) {
                        let wasted = run_map_task(t);
                        drop(wasted);
                        retried = true;
                    }
                }
                let mut result = run_map_task(t);
                result.retried = retried;
                map_results.lock().push(result);
            });
        }
    })
    .expect("map worker panicked");

    // ---- Shuffle ---------------------------------------------------------
    let mut metrics = JobMetrics { name: spec.name.clone(), ..Default::default() };
    let mut partitions: Vec<Vec<(KM, VM)>> = (0..num_reducers).map(|_| Vec::new()).collect();
    {
        let results = map_results.into_inner();
        for r in results {
            metrics.map_input_records += r.input_records;
            metrics.map_input_bytes += r.input_bytes;
            metrics.map_output_records += r.output_records;
            metrics.map_output_bytes += r.output_bytes;
            metrics.task_retries += r.retried as usize;
            for (p, bucket) in r.buckets.into_iter().enumerate() {
                for (k, v) in bucket {
                    metrics.shuffle_records += 1;
                    metrics.shuffle_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                    partitions[p].push((k, v));
                }
            }
        }
    }

    if let Some(cap) = cfg.cluster_capacity_bytes {
        if metrics.map_output_bytes > cap {
            return Err(MrError::ClusterCapacityExceeded {
                job: spec.name,
                intermediate_bytes: metrics.map_output_bytes,
                capacity_bytes: cap,
            });
        }
    }

    // ---- Reduce phase ----------------------------------------------------
    struct ReduceTaskResult<KO, VO> {
        output: Vec<(KO, VO)>,
        groups: usize,
        output_records: usize,
        output_bytes: usize,
        max_group_bytes: usize,
    }

    // Each partition is consumed by exactly one reduce task; hand ownership
    // through per-partition mutex cells so workers can take them without
    // cloning.
    type PartitionCell<K, V> = Mutex<Option<Vec<(K, V)>>>;
    let partition_cells: Vec<PartitionCell<KM, VM>> =
        partitions.into_iter().map(|p| Mutex::new(Some(p))).collect();

    let part_counter = AtomicUsize::new(0);
    let reduce_results: Mutex<Vec<ReduceTaskResult<KO, VO>>> = Mutex::new(Vec::new());
    let failure: Mutex<Option<MrError>> = Mutex::new(None);
    let failed = AtomicBool::new(false);

    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(num_reducers) {
            s.spawn(|_| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let p = part_counter.fetch_add(1, Ordering::Relaxed);
                if p >= num_reducers {
                    break;
                }
                let mut records =
                    partition_cells[p].lock().take().expect("partition visited once");
                records.sort_by(|a, b| a.0.cmp(&b.0));

                let mut out: Vec<(KO, VO)> = Vec::new();
                let mut groups = 0usize;
                let mut output_records = 0usize;
                let mut output_bytes = 0usize;
                let mut max_group_bytes = 0usize;

                let mut it = records.into_iter().peekable();
                while let Some((key, first)) = it.next() {
                    let mut group_bytes = key.est_bytes() + first.est_bytes() + FRAMING_BYTES;
                    let mut vals = vec![first];
                    while it.peek().is_some_and(|(k, _)| *k == key) {
                        let (_, v) = it.next().expect("peeked");
                        group_bytes += v.est_bytes() + FRAMING_BYTES;
                        vals.push(v);
                    }
                    if let Some(budget) = cfg.reducer_memory_bytes {
                        if group_bytes > budget {
                            *failure.lock() = Some(MrError::ReducerOom {
                                job: spec.name.clone(),
                                group_bytes,
                                budget_bytes: budget,
                            });
                            failed.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                    max_group_bytes = max_group_bytes.max(group_bytes);
                    groups += 1;
                    let mut emit = |k: KO, v: VO| {
                        output_records += 1;
                        output_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                        out.push((k, v));
                    };
                    reducer(&key, vals, &mut emit);
                }
                reduce_results.lock().push(ReduceTaskResult {
                    output: out,
                    groups,
                    output_records,
                    output_bytes,
                    max_group_bytes,
                });
            });
        }
    })
    .expect("reduce worker panicked");

    if let Some(err) = failure.into_inner() {
        return Err(err);
    }

    let mut output = Vec::new();
    for r in reduce_results.into_inner() {
        metrics.reduce_groups += r.groups;
        metrics.reduce_output_records += r.output_records;
        metrics.reduce_output_bytes += r.output_bytes;
        metrics.max_group_bytes = metrics.max_group_bytes.max(r.max_group_bytes);
        output.extend(r.output);
    }

    metrics.wall_time_s = started.elapsed().as_secs_f64();
    metrics.sim_time_s = CostModel::job_time_s(cfg, &metrics);
    cluster.record(metrics);
    Ok(output)
}
