//! Lineage-based re-derivation of lost DFS datasets.
//!
//! Hadoop survives storage loss by replication; Spark instead records each
//! dataset's *lineage* — the job that produced it — and recomputes lost
//! partitions on demand. This module brings the latter to the engine's
//! pipelines: a [`Lineage`] registry maps dataset names to **recipes**
//! (re-runnable closures that re-execute the producing job), optionally
//! validated against a declarative [`JobGraph`] plan so the registered
//! producer matches the dataset wiring the pipeline published up front.
//!
//! [`crate::pipeline::run_job_dfs_recovering`] consults the registry when
//! an input dataset is missing: the producing job is re-run (recursively
//! re-deriving *its* inputs when those are gone too), the recovery is
//! counted in [`crate::JobMetrics::lineage_recoveries`], and the stage
//! retries. A lost dataset with no recipe surfaces the typed
//! [`crate::MrError::LineageMissing`] instead of a panic.

use crate::plan::JobGraph;
use crate::MrError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Re-derivation recursion bound: a recipe chain deeper than this is
/// assumed cyclic and aborted with [`MrError::LineageMissing`]. Public so
/// the static recoverability pass can prove every plan's re-derivation
/// depth fits under the same bound the runtime enforces.
pub const MAX_RECOVERY_DEPTH: usize = 16;

type RecipeFn = dyn Fn() -> crate::Result<()> + Send + Sync;

#[derive(Clone)]
struct Recipe {
    job: String,
    run: Arc<RecipeFn>,
}

/// Registry of dataset → producing-job recipes for one pipeline run.
///
/// Register a recipe per intermediate dataset as the pipeline is
/// assembled; when a stage finds its input missing, [`Lineage::recover`]
/// re-runs the producer. Registration is validated against the pipeline's
/// [`JobGraph`] when one is attached.
#[derive(Default)]
pub struct Lineage {
    graph: Option<JobGraph>,
    recipes: RwLock<HashMap<String, Recipe>>,
    recoveries: AtomicUsize,
    depth: AtomicUsize,
}

impl Lineage {
    /// Empty registry with no plan attached.
    pub fn new() -> Self {
        Lineage::default()
    }

    /// Registry validated against a pipeline plan: every registration must
    /// name the producing job the graph declares for that dataset.
    pub fn with_graph(graph: JobGraph) -> Self {
        Lineage {
            graph: Some(graph),
            ..Lineage::default()
        }
    }

    /// Register the recipe that re-derives `dataset` by re-running the job
    /// (template) `job`. The closure must be self-contained: re-running
    /// the producing stage end to end (typically a
    /// [`crate::pipeline::run_job_dfs_recovering`] call capturing the
    /// cluster, the DFS, and this registry via `Arc`).
    pub fn register(
        &self,
        dataset: &str,
        job: &str,
        run: impl Fn() -> crate::Result<()> + Send + Sync + 'static,
    ) -> crate::Result<()> {
        if let Some(graph) = &self.graph {
            match graph.producer_of(dataset) {
                Some(planned) if planned == job => {}
                Some(planned) => {
                    return Err(MrError::LineageMismatch {
                        dataset: dataset.to_string(),
                        registered: job.to_string(),
                        planned: planned.to_string(),
                    });
                }
                None => {
                    return Err(MrError::LineageMissing {
                        dataset: dataset.to_string(),
                    });
                }
            }
        }
        self.recipes.write().expect("lineage lock poisoned").insert(
            dataset.to_string(),
            Recipe {
                job: job.to_string(),
                run: Arc::new(run),
            },
        );
        Ok(())
    }

    /// Whether a recipe is registered for `dataset`.
    pub fn knows(&self, dataset: &str) -> bool {
        self.recipes
            .read()
            .expect("lineage lock poisoned")
            .contains_key(dataset)
    }

    /// The producing job the plan declares for `dataset`, when a graph is
    /// attached.
    pub fn planned_producer(&self, dataset: &str) -> Option<&str> {
        self.graph.as_ref().and_then(|g| g.producer_of(dataset))
    }

    /// Re-derive a lost `dataset` by re-running its producing job. Returns
    /// the producer's job name. Recipes may recurse (their own inputs may
    /// be gone too); a chain deeper than the recursion bound fails with
    /// [`MrError::LineageMissing`].
    pub fn recover(&self, dataset: &str) -> crate::Result<String> {
        let recipe = self
            .recipes
            .read()
            .expect("lineage lock poisoned")
            .get(dataset)
            .cloned()
            .ok_or_else(|| MrError::LineageMissing {
                dataset: dataset.to_string(),
            })?;
        if self.depth.fetch_add(1, Ordering::Relaxed) >= MAX_RECOVERY_DEPTH {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return Err(MrError::LineageMissing {
                dataset: dataset.to_string(),
            });
        }
        let result = (recipe.run)();
        self.depth.fetch_sub(1, Ordering::Relaxed);
        result?;
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        Ok(recipe.job)
    }

    /// Total successful re-derivations so far.
    pub fn recoveries(&self) -> usize {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Every dataset with a registered recipe, sorted — the runtime-side
    /// coverage the static [`crate::RecoverySpec`] must agree with.
    pub fn covered_datasets(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .recipes
            .read()
            .expect("lineage lock poisoned")
            .keys()
            .cloned()
            .collect();
        out.sort();
        out
    }

    /// Datasets `graph` jobs read that are neither driver-provided inputs
    /// nor covered by a registered recipe — the lineage gaps a static
    /// certification would reject. Empty means every intermediate read is
    /// re-derivable.
    pub fn uncovered_reads(&self, graph: &JobGraph) -> Vec<String> {
        let recipes = self.recipes.read().expect("lineage lock poisoned");
        graph
            .intermediate_reads()
            .into_iter()
            .filter(|d| !recipes.contains_key(d))
            .collect()
    }
}

impl std::fmt::Debug for Lineage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let datasets: Vec<String> = self
            .recipes
            .read()
            .expect("lineage lock poisoned")
            .keys()
            .cloned()
            .collect();
        f.debug_struct("Lineage")
            .field("graph", &self.graph.as_ref().map(|g| g.name.clone()))
            .field("datasets", &datasets)
            .field("recoveries", &self.recoveries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JobGraph, PlanJob};

    fn graph() -> JobGraph {
        JobGraph::new("pipe", ["logs"])
            .job(PlanJob::new("count").reads(["logs"]).writes(["counts"]))
            .job(PlanJob::new("max").reads(["counts"]).writes(["max"]))
    }

    #[test]
    fn register_validates_against_graph() {
        let lineage = Lineage::with_graph(graph());
        lineage.register("counts", "count", || Ok(())).unwrap();
        let err = lineage
            .register("counts", "wrong-job", || Ok(()))
            .unwrap_err();
        assert!(matches!(err, MrError::LineageMismatch { .. }));
        let err = lineage.register("unknown", "count", || Ok(())).unwrap_err();
        assert!(matches!(err, MrError::LineageMissing { .. }));
    }

    #[test]
    fn recover_runs_recipe_and_counts() {
        let lineage = Lineage::new();
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        lineage
            .register("counts", "count", move || {
                ran2.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .unwrap();
        assert!(lineage.knows("counts"));
        let producer = lineage.recover("counts").unwrap();
        assert_eq!(producer, "count");
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(lineage.recoveries(), 1);
    }

    #[test]
    fn unknown_dataset_is_typed_error() {
        let lineage = Lineage::new();
        let err = lineage.recover("ghost").unwrap_err();
        assert!(matches!(err, MrError::LineageMissing { .. }));
    }

    #[test]
    fn cyclic_recipes_abort() {
        let lineage = Arc::new(Lineage::new());
        let inner = Arc::clone(&lineage);
        lineage
            .register("a", "job-a", move || inner.recover("a").map(|_| ()))
            .unwrap();
        let err = lineage.recover("a").unwrap_err();
        assert!(matches!(err, MrError::LineageMissing { .. }));
    }
}
