//! Record size estimation.
//!
//! The paper's cost analysis (Tables III/IV) is stated in records and bytes
//! of intermediate data. Rather than serializing every record (pure
//! overhead in a simulation), each record type reports an estimated wire
//! size through [`EstimateSize`]. Estimates follow Hadoop's writable
//! encodings: 8 bytes per long/double, length-prefixed byte strings.

/// Estimated serialized size of a record component, in bytes.
pub trait EstimateSize {
    /// Estimated wire size in bytes.
    fn est_bytes(&self) -> usize;
}

macro_rules! fixed_size {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl EstimateSize for $t {
            #[inline]
            fn est_bytes(&self) -> usize { $n }
        })*
    };
}

fixed_size! {
    u8 => 1, i8 => 1,
    u16 => 2, i16 => 2,
    u32 => 4, i32 => 4, f32 => 4,
    u64 => 8, i64 => 8, f64 => 8,
    usize => 8, isize => 8,
    bool => 1,
    () => 0,
}

impl EstimateSize for String {
    #[inline]
    fn est_bytes(&self) -> usize {
        4 + self.len()
    }
}

impl<T: EstimateSize> EstimateSize for Option<T> {
    #[inline]
    fn est_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, EstimateSize::est_bytes)
    }
}

impl<T: EstimateSize> EstimateSize for Vec<T> {
    #[inline]
    fn est_bytes(&self) -> usize {
        4 + self.iter().map(EstimateSize::est_bytes).sum::<usize>()
    }
}

macro_rules! tuple_size {
    ($($name:ident),+) => {
        impl<$($name: EstimateSize),+> EstimateSize for ($($name,)+) {
            #[inline]
            #[allow(non_snake_case)]
            fn est_bytes(&self) -> usize {
                let ($($name,)+) = self;
                0 $(+ $name.est_bytes())+
            }
        }
    };
}

tuple_size!(A);
tuple_size!(A, B);
tuple_size!(A, B, C);
tuple_size!(A, B, C, D);
tuple_size!(A, B, C, D, E);
tuple_size!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(5u64.est_bytes(), 8);
        assert_eq!(1.5f64.est_bytes(), 8);
        assert_eq!(3u32.est_bytes(), 4);
        assert_eq!(true.est_bytes(), 1);
        assert_eq!(().est_bytes(), 0);
    }

    #[test]
    fn tuples_sum_components() {
        assert_eq!((1u64, 2u64, 3.0f64).est_bytes(), 24);
        assert_eq!(((1u64, 2u64), 3.0f64).est_bytes(), 24);
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u64, 2u64].est_bytes(), 4 + 16);
        assert_eq!("abc".to_string().est_bytes(), 7);
        assert_eq!(Some(1u64).est_bytes(), 9);
        assert_eq!(Option::<u64>::None.est_bytes(), 1);
    }
}
