//! Record size estimation.
//!
//! The paper's cost analysis (Tables III/IV) is stated in records and bytes
//! of intermediate data. Rather than serializing every record (pure
//! overhead in a simulation), each record type reports an estimated wire
//! size through [`EstimateSize`]. Estimates follow Hadoop's writable
//! encodings: 8 bytes per long/double, length-prefixed byte strings.
//!
//! Types whose wire size does not depend on the value (primitives, tuples
//! of primitives — the dominant record shapes in this workload) advertise
//! it through [`EstimateSize::FIXED_BYTES`], which lets the engine size a
//! whole batch of records in O(1) via [`slice_est_bytes`] instead of
//! walking every record.

/// Estimated serialized size of a record component, in bytes.
pub trait EstimateSize {
    /// `Some(n)` when every value of this type estimates to exactly `n`
    /// bytes, enabling O(1) batch sizing; `None` when the size is
    /// value-dependent. Implementations must keep this consistent with
    /// [`EstimateSize::est_bytes`].
    const FIXED_BYTES: Option<usize> = None;

    /// Estimated wire size in bytes.
    fn est_bytes(&self) -> usize;
}

/// Sum of `est_bytes` over a slice: O(1) for fixed-size record types,
/// one pass otherwise.
#[inline]
pub fn slice_est_bytes<T: EstimateSize>(items: &[T]) -> usize {
    match T::FIXED_BYTES {
        Some(n) => n * items.len(),
        None => items.iter().map(EstimateSize::est_bytes).sum(),
    }
}

macro_rules! fixed_size {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl EstimateSize for $t {
            const FIXED_BYTES: Option<usize> = Some($n);
            #[inline]
            fn est_bytes(&self) -> usize { $n }
        })*
    };
}

fixed_size! {
    u8 => 1, i8 => 1,
    u16 => 2, i16 => 2,
    u32 => 4, i32 => 4, f32 => 4,
    u64 => 8, i64 => 8, f64 => 8,
    usize => 8, isize => 8,
    bool => 1,
    () => 0,
}

impl EstimateSize for String {
    #[inline]
    fn est_bytes(&self) -> usize {
        4 + self.len()
    }
}

impl<T: EstimateSize> EstimateSize for Option<T> {
    #[inline]
    fn est_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, EstimateSize::est_bytes)
    }
}

impl<T: EstimateSize> EstimateSize for Vec<T> {
    #[inline]
    fn est_bytes(&self) -> usize {
        4 + slice_est_bytes(self)
    }
}

/// `Some(a + b)` when both sides are fixed-size, else `None`.
const fn sum_fixed(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x + y),
        _ => None,
    }
}

macro_rules! tuple_size {
    ($($name:ident),+) => {
        impl<$($name: EstimateSize),+> EstimateSize for ($($name,)+) {
            const FIXED_BYTES: Option<usize> = {
                let mut acc = Some(0);
                $(acc = sum_fixed(acc, $name::FIXED_BYTES);)+
                acc
            };
            #[inline]
            #[allow(non_snake_case)]
            fn est_bytes(&self) -> usize {
                let ($($name,)+) = self;
                0 $(+ $name.est_bytes())+
            }
        }
    };
}

tuple_size!(A);
tuple_size!(A, B);
tuple_size!(A, B, C);
tuple_size!(A, B, C, D);
tuple_size!(A, B, C, D, E);
tuple_size!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(5u64.est_bytes(), 8);
        assert_eq!(1.5f64.est_bytes(), 8);
        assert_eq!(3u32.est_bytes(), 4);
        assert_eq!(true.est_bytes(), 1);
        assert_eq!(().est_bytes(), 0);
    }

    #[test]
    fn tuples_sum_components() {
        assert_eq!((1u64, 2u64, 3.0f64).est_bytes(), 24);
        assert_eq!(((1u64, 2u64), 3.0f64).est_bytes(), 24);
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u64, 2u64].est_bytes(), 4 + 16);
        assert_eq!("abc".to_string().est_bytes(), 7);
        assert_eq!(Some(1u64).est_bytes(), 9);
        assert_eq!(Option::<u64>::None.est_bytes(), 1);
    }

    #[test]
    fn fixed_bytes_matches_est_bytes() {
        // Every type advertising FIXED_BYTES must agree with est_bytes —
        // the engine's batch accounting depends on it.
        assert_eq!(u64::FIXED_BYTES, Some(8));
        assert_eq!(<(u64, f64)>::FIXED_BYTES, Some(16));
        assert_eq!(<((u64, u64), f64)>::FIXED_BYTES, Some(24));
        assert_eq!(<(u64, u64, u64, f64)>::FIXED_BYTES, Some(32));
        assert_eq!((7u64, 1.0f64).est_bytes(), 16);
        assert_eq!(((7u64, 9u64), 1.0f64).est_bytes(), 24);
    }

    #[test]
    fn variable_types_have_no_fixed_size() {
        assert_eq!(String::FIXED_BYTES, None);
        assert_eq!(Vec::<u64>::FIXED_BYTES, None);
        assert_eq!(Option::<u64>::FIXED_BYTES, None);
        assert_eq!(<(u64, String)>::FIXED_BYTES, None);
    }

    #[test]
    fn slice_sizing_matches_per_record_sum() {
        let fixed = vec![(1u64, 2.0f64), (3, 4.0), (5, 6.0)];
        assert_eq!(
            slice_est_bytes(&fixed),
            fixed.iter().map(EstimateSize::est_bytes).sum::<usize>()
        );
        let var = vec!["a".to_string(), "bcd".to_string()];
        assert_eq!(
            slice_est_bytes(&var),
            var.iter().map(EstimateSize::est_bytes).sum::<usize>()
        );
        assert_eq!(slice_est_bytes::<u64>(&[]), 0);
    }
}
