//! DAG-aware inter-job scheduler: run independent jobs of a batch
//! concurrently on the shared worker pool.
//!
//! HaTen2's cost model counts *jobs* because Hadoop's JobTracker admits
//! them one at a time — but the Naive/DNN/DRN variants issue `Q+R`
//! (Tucker) and `2R`/`4R` (PARAFAC) per-column jobs per sweep that are
//! mutually independent. A [`Batch`] lets a pipeline submit those jobs
//! with declared dataset read/write sets; [`Batch::run`] builds the
//! dependency DAG, validates it against the pipeline's static
//! [`JobGraph`], and dispatches any job whose inputs are available onto
//! the cluster's shared [`crate::pool::WorkerPool`], interleaving map and
//! reduce tasks from concurrent jobs. The paper's "number of jobs" column
//! becomes a *critical-path depth* ([`JobGraph::critical_path_jobs`]).
//!
//! **Determinism contract.** Outputs, DFS contents, and every
//! [`JobMetrics`]/[`crate::metrics::RunMetrics`] counter are bit-identical
//! to sequential execution:
//!
//! * jobs *commit* (record metrics, surface errors) strictly in
//!   submission order, regardless of completion order. Commit is
//!   *eager*: a commit cursor advances as soon as every earlier
//!   submission has resolved, instead of waiting for the whole batch —
//!   the order is unchanged, only the latency of reaching the cluster's
//!   metrics log;
//! * each job's fault schedule is keyed by its submission index
//!   (`jobs already recorded + position in batch`), the exact index a
//!   sequential driver would have produced, so [`crate::fault::FaultPlan`]
//!   replay is unaffected by concurrency;
//! * a failed job's dependents never run; jobs *after* the first
//!   (submission-order) failure are discarded uncommitted, so the batch
//!   records exactly the jobs a sequential driver would have recorded
//!   before aborting.
//!
//! [`crate::cluster::SchedulerMode::Sequential`] executes the same batch
//! strictly in submission order — the oracle the equivalence property
//! tests (`tests/equivalence.rs`, `tests/faults.rs`) hold the DAG mode
//! to, alongside the per-job [`crate::reference::run_job_reference`].
//!
//! **Dataset naming.** Reads/writes are plain dataset names, optionally
//! sharded as `base#shard` (e.g. the per-column `t#3`). Two declarations
//! conflict when their bases match and either side is unsharded or both
//! name the same shard — so per-column writers `t#0`, `t#1`, … are
//! mutually independent while a reader of `t` depends on all of them.
//!
//! **Liveness.** Scheduler workers never block: each loops popping ready
//! jobs and exits when the queue is momentarily empty; the worker that
//! completes a job enqueues (and can itself execute) newly-ready
//! dependents. Blocking here would deadlock — a pool worker waiting on a
//! condition variable inside a help-first [`crate::pool::WorkerPool`]
//! broadcast could be *nested inside* another job's map-phase wait. The
//! trade-off is that a worker finding the queue empty retires early, so
//! late-ready jobs run on however many workers are still looping — at
//! least one per dependency chain, which is exactly the width of the
//! registered pipelines' DAGs.
//!
//! **Dispatch order.** Ready jobs are popped
//! longest-processing-time-first by estimated cost
//! ([`Batch::set_cost_hint`], with a bytes-fed-in fallback from finished
//! predecessors), so a known-heavy job — e.g. the hash slice owning a
//! skewed reduce key under the `heavy-key-split` rewrite — starts first
//! instead of straggling behind its lighter siblings. When LPT's estimate
//! is wrong anyway, the per-task speculative re-execution inside
//! [`crate::job::run_job`] remains the straggler fallback. Estimates only
//! reorder execution; the commit order (and with it every output and
//! metric) is untouched.

use crate::cluster::{Cluster, SchedulerMode};
use crate::job::JobSite;
use crate::metrics::{BatchReport, JobMetrics, RunMetrics};
use crate::plan::JobGraph;
use crate::MrError;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A submitted job's future output. Cheap to clone; downstream jobs
/// capture clones and read them through [`JobCtx::get`], the driver takes
/// the final value with [`JobHandle::take`] after [`Batch::run`].
pub struct JobHandle<T> {
    idx: usize,
    name: String,
    slot: Arc<OnceLock<T>>,
}

impl<T> Clone for JobHandle<T> {
    fn clone(&self) -> Self {
        JobHandle {
            idx: self.idx,
            name: self.name.clone(),
            slot: Arc::clone(&self.slot),
        }
    }
}

impl<T> JobHandle<T> {
    /// The job's submission-order output, once [`Batch::run`] returned
    /// successfully. Requires this to be the last live clone of the
    /// handle (clones captured by downstream job closures are dropped
    /// when the batch finishes).
    pub fn take(self) -> crate::Result<T> {
        let name = self.name;
        let slot = Arc::try_unwrap(self.slot).map_err(|_| MrError::PlanViolation {
            job: name.clone(),
            detail: "output handle still shared; take() needs the last clone".to_string(),
        })?;
        slot.into_inner().ok_or(MrError::PlanViolation {
            job: name,
            detail: "output taken before the batch ran the job".to_string(),
        })
    }
}

/// Execution context handed to a submitted job's closure: the
/// [`JobSite`] its `run_job` call runs against, plus typed access to the
/// outputs of its declared dependencies.
pub struct JobCtx<'c> {
    cluster: &'c Cluster,
    graph: Option<&'c JobGraph>,
    job_index: usize,
    name: &'c str,
    ran: &'c AtomicBool,
    metrics: &'c OnceLock<JobMetrics>,
    preds: &'c [usize],
    /// Intra-job task parallelism granted to this job, fixed when the
    /// batch starts: the pool split between the batch's scheduler workers.
    intra_threads: usize,
    /// The batch's dynamic race detector.
    #[cfg(feature = "race-detect")]
    detector: &'c Arc<crate::race::Detector>,
    /// This job's submission index *within the batch* (the detector's job
    /// numbering; `job_index` is the cluster-global one).
    #[cfg(feature = "race-detect")]
    batch_index: usize,
    /// Every batch job's declared write set, for attributing handle reads.
    #[cfg(feature = "race-detect")]
    batch_writes: &'c [Vec<String>],
}

impl JobCtx<'_> {
    /// The output of a dependency, available because every declared
    /// dependency committed before this job was dispatched. Accessing a
    /// handle whose job is *not* a declared dependency (no read/write
    /// overlap) is a [`MrError::PlanViolation`]: the scheduler would be
    /// free to run that job concurrently or later.
    pub fn get<'h, T>(&self, handle: &'h JobHandle<T>) -> crate::Result<&'h T> {
        if !self.preds.contains(&handle.idx) {
            return Err(MrError::PlanViolation {
                job: self.name.to_string(),
                detail: format!(
                    "reading job '{}' read the output of producing job '{}' \
                     without a declared dataset dependency",
                    self.name, handle.name
                ),
            });
        }
        #[cfg(feature = "race-detect")]
        self.note_handle_read(handle.idx);
        handle.slot.get().ok_or_else(|| MrError::PlanViolation {
            job: self.name.to_string(),
            detail: format!("dependency '{}' has no output yet", handle.name),
        })
    }

    /// Like [`JobCtx::get`] but *without* the declared-dependency check:
    /// a deliberate backdoor for the race-detection test harness, which
    /// needs to drive the dynamic detector past the static gate. The read
    /// is still reported to the detector. Debug tooling only — never call
    /// this from a pipeline.
    #[cfg(feature = "race-detect")]
    #[doc(hidden)]
    pub fn get_raced<'h, T>(&self, handle: &'h JobHandle<T>) -> crate::Result<&'h T> {
        self.note_handle_read(handle.idx);
        handle.slot.get().ok_or_else(|| MrError::PlanViolation {
            job: self.name.to_string(),
            detail: format!("dependency '{}' has no output yet", handle.name),
        })
    }

    /// Report reading the producing job's declared outputs to the batch's
    /// race detector.
    #[cfg(feature = "race-detect")]
    fn note_handle_read(&self, producer: usize) {
        for w in &self.batch_writes[producer] {
            self.detector.note_read(self.batch_index, w);
        }
    }
}

impl JobSite for JobCtx<'_> {
    fn cluster(&self) -> &Cluster {
        self.cluster
    }

    fn job_index(&self) -> usize {
        self.job_index
    }

    fn derived_emit_hint(&self, name: &str) -> Option<usize> {
        self.graph.and_then(|g| g.emit_hint(name))
    }

    fn before_run(&self, name: &str) -> crate::Result<()> {
        if name != self.name {
            return Err(MrError::PlanViolation {
                job: name.to_string(),
                detail: format!("submitted as '{}' but ran as '{name}'", self.name),
            });
        }
        if self.ran.swap(true, Ordering::SeqCst) {
            return Err(MrError::PlanViolation {
                job: name.to_string(),
                detail: "submitted job ran more than one MapReduce job".to_string(),
            });
        }
        Ok(())
    }

    fn commit_metrics(&self, metrics: JobMetrics) {
        // Stash for submission-order commit; `before_run` guarantees at
        // most one set per job.
        let _ = self.metrics.set(metrics);
    }

    fn task_parallelism(&self, threads: usize) -> usize {
        // Split the pool between the batch's scheduler workers, decided
        // once up front: with as many DAG workers as threads, each job
        // runs its tasks inline on its worker — zero nested-broadcast
        // queue traffic. Purely a performance decision (results are
        // independent of executor count); sequential batches keep full
        // intra-job parallelism.
        self.intra_threads.min(threads).max(1)
    }
}

type JobFn<'a> = Box<dyn FnOnce(&JobCtx<'_>) -> crate::Result<()> + Send + 'a>;

struct Submitted<'a> {
    name: String,
    reads: Vec<String>,
    writes: Vec<String>,
    /// Relative execution-cost estimate for LPT dispatch
    /// ([`Batch::set_cost_hint`]); `0.0` means unhinted.
    cost_hint: f64,
    run: Mutex<Option<JobFn<'a>>>,
}

/// Outcome of one submitted job, written exactly once by the worker that
/// resolved it.
enum Status {
    Done,
    Failed(MrError),
    Skipped,
}

/// State of the eager submission-order commit: the next submission index
/// to commit, everything committed so far, and whether a non-Done status
/// halted the cursor for good.
struct CommitCursor {
    next: usize,
    committed: RunMetrics,
    halted: bool,
}

/// What [`Batch::run`] returns on success.
#[derive(Debug, Clone)]
pub struct BatchResults {
    report: BatchReport,
}

impl BatchResults {
    /// Concurrency accounting for the batch (also recorded on the
    /// cluster, see [`Cluster::batch_reports`]).
    pub fn report(&self) -> &BatchReport {
        &self.report
    }
}

/// A batch of jobs with declared dataset read/write sets, executed by
/// [`Batch::run`] according to the cluster's
/// [`SchedulerMode`](crate::cluster::SchedulerMode).
///
/// ```
/// use haten2_mapreduce::{run_job, Batch, Cluster, ClusterConfig, JobSpec};
///
/// let cluster = Cluster::new(ClusterConfig::with_machines(2));
/// let input = vec![(0u64, 2.0f64), (1, 3.0)];
/// let mut batch = Batch::new();
/// // Two independent scale jobs (they could run concurrently)…
/// let doubled = batch
///     .submit("double", vec!["x".into()], vec!["d".into()], {
///         let input = &input;
///         move |ctx| {
///             run_job(
///                 ctx,
///                 JobSpec::named("double"),
///                 input,
///                 |k, v: &f64, emit| emit(*k, v * 2.0),
///                 |k, vs, emit| emit(*k, vs.iter().sum::<f64>()),
///             )
///         }
///     })
///     .unwrap();
/// // …and a dependent sum reading the first job's output.
/// let total = batch.submit("sum", vec!["d".into()], vec!["s".into()], {
///     let doubled = doubled.clone();
///     move |ctx| {
///         let d: &Vec<(u64, f64)> = ctx.get(&doubled)?;
///         run_job(
///             ctx,
///             JobSpec::named("sum"),
///             d,
///             |_, v: &f64, emit| emit(0u64, *v),
///             |k, vs, emit| emit(*k, vs.iter().sum::<f64>()),
///         )
///     }
/// }).unwrap();
/// let results = batch.run(&cluster).unwrap();
/// assert_eq!(results.report().jobs, 2);
/// let total: Vec<(u64, f64)> = total.take().unwrap();
/// assert_eq!(total, vec![(0, 10.0)]);
/// assert_eq!(cluster.metrics().jobs[0].name, "double"); // submission order
/// ```
pub struct Batch<'a> {
    graph: Option<&'a JobGraph>,
    jobs: Vec<Submitted<'a>>,
}

impl Default for Batch<'_> {
    fn default() -> Self {
        Batch::new()
    }
}

impl<'a> Batch<'a> {
    /// An unvalidated batch (for pipelines without a registered
    /// [`JobGraph`], e.g. the generic n-way driver).
    pub fn new() -> Self {
        Batch {
            graph: None,
            jobs: Vec::new(),
        }
    }

    /// A batch validated against `graph` at [`Batch::run`]: every
    /// submitted job must instantiate one of the graph's templates, with
    /// declared reads/writes matching the template's (shard suffixes
    /// `#…` stripped). The graph also supplies derived
    /// `map_emit_hint`s ([`JobGraph::emit_hint`]).
    pub fn with_graph(graph: &'a JobGraph) -> Self {
        Batch {
            graph: Some(graph),
            jobs: Vec::new(),
        }
    }

    /// Number of submitted jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Submit one job: its concrete name (checked against the `run_job`
    /// spec it must issue exactly once), the datasets it reads and
    /// writes (`base` or `base#shard`), and the closure that runs it
    /// against the provided [`JobCtx`]. Submission order is the commit
    /// order — and must match what a sequential driver would run, since
    /// it keys the fault schedule.
    ///
    /// Two jobs of one batch declaring a write to the *same exact* shard
    /// are rejected here with [`MrError::DuplicateWrite`]: the scheduler
    /// would otherwise serialize them into a silent last-writer-wins WAW
    /// edge, and the static race certification assumes every shard has a
    /// single writer per batch. (`t#0` vs `t#1` is fine; `t#0` vs an
    /// unsharded `t` is an ordinary WAW dependency, not a duplicate.)
    pub fn submit<T, F>(
        &mut self,
        name: impl Into<String>,
        reads: Vec<String>,
        writes: Vec<String>,
        f: F,
    ) -> crate::Result<JobHandle<T>>
    where
        T: Send + Sync + 'static,
        F: FnOnce(&JobCtx<'_>) -> crate::Result<T> + Send + 'a,
    {
        let name = name.into();
        for w in &writes {
            if let Some(prior) = self.jobs.iter().find(|p| p.writes.iter().any(|pw| pw == w)) {
                return Err(MrError::DuplicateWrite {
                    job: name,
                    prior_job: prior.name.clone(),
                    dataset: w.clone(),
                });
            }
        }
        let idx = self.jobs.len();
        let slot: Arc<OnceLock<T>> = Arc::new(OnceLock::new());
        let out = Arc::clone(&slot);
        self.jobs.push(Submitted {
            name: name.clone(),
            reads,
            writes,
            cost_hint: 0.0,
            run: Mutex::new(Some(Box::new(move |ctx| {
                let value = f(ctx)?;
                let _ = out.set(value);
                Ok(())
            }))),
        });
        Ok(JobHandle { idx, name, slot })
    }

    /// Attach a dispatch cost hint to a submitted job: an estimate of its
    /// relative execution cost, in any unit consistent within the batch
    /// (the skew-aware pipelines use the [`crate::rewrite::KeyFreqSketch`]
    /// per-slice record counts). The DAG scheduler pops ready jobs
    /// largest-estimate-first — longest-processing-time-first list
    /// scheduling — so a heavy hash slice starts before its lighter
    /// siblings instead of straggling at the tail. Unhinted jobs fall back
    /// to a bytes-fed-in proxy from already-finished predecessors. Hints
    /// reorder *execution* only; commit order stays submission order, so
    /// outputs and metrics remain bit-identical to Sequential mode.
    pub fn set_cost_hint<T>(&mut self, handle: &JobHandle<T>, cost: f64) {
        self.jobs[handle.idx].cost_hint = cost;
    }

    /// Declared-dataset dependency edges: for each job, the submission
    /// indices of the earlier jobs it must wait for (read-after-write,
    /// write-after-write, and write-after-read overlaps).
    fn dependencies(&self) -> Vec<Vec<usize>> {
        let n = self.jobs.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, j_preds) in preds.iter_mut().enumerate() {
            for i in 0..j {
                let a = &self.jobs[i];
                let b = &self.jobs[j];
                let raw = a
                    .writes
                    .iter()
                    .any(|w| b.reads.iter().any(|r| datasets_overlap(w, r)));
                let waw = a
                    .writes
                    .iter()
                    .any(|w| b.writes.iter().any(|w2| datasets_overlap(w, w2)));
                let war = a
                    .reads
                    .iter()
                    .any(|r| b.writes.iter().any(|w| datasets_overlap(r, w)));
                if raw || waw || war {
                    j_preds.push(i);
                }
            }
        }
        preds
    }

    /// Check every submitted job against the batch's [`JobGraph`].
    fn validate(&self) -> crate::Result<()> {
        let Some(graph) = self.graph else {
            return Ok(());
        };
        for job in &self.jobs {
            let Some(t) = graph.template_for(&job.name) else {
                return Err(MrError::PlanViolation {
                    job: job.name.clone(),
                    detail: format!("no template in plan graph '{}' matches", graph.name),
                });
            };
            let declared_reads = base_set(&job.reads);
            let declared_writes = base_set(&job.writes);
            if declared_reads != base_set(&t.reads) {
                return Err(MrError::PlanViolation {
                    job: job.name.clone(),
                    detail: format!(
                        "declared reads {declared_reads:?} but template '{}' reads {:?}",
                        t.name, t.reads
                    ),
                });
            }
            if declared_writes != base_set(&t.writes) {
                return Err(MrError::PlanViolation {
                    job: job.name.clone(),
                    detail: format!(
                        "declared writes {declared_writes:?} but template '{}' writes {:?}",
                        t.name, t.writes
                    ),
                });
            }
        }
        Ok(())
    }

    /// Execute the batch on `cluster` per its configured
    /// [`SchedulerMode`](crate::cluster::SchedulerMode). On success every
    /// job's metrics are recorded in submission order and a
    /// [`BatchReport`] is pushed; on failure the error of the
    /// (submission-order) first failed job is returned, with exactly the
    /// jobs before it recorded — bit-identical to a sequential driver.
    pub fn run(self, cluster: &Cluster) -> crate::Result<BatchResults> {
        self.validate()?;
        let n = self.jobs.len();
        if n == 0 {
            return Ok(BatchResults {
                report: BatchReport::default(),
            });
        }
        let preds = self.dependencies();
        let base = cluster.jobs_run();
        let ran: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let metrics: Vec<OnceLock<JobMetrics>> = (0..n).map(|_| OnceLock::new()).collect();
        let graph = self.graph;
        let jobs = &self.jobs;
        // Intra-job parallelism is fixed per batch: a sequential batch
        // gives each job the whole pool (one job in flight at a time); a
        // DAG batch splits the pool evenly between its scheduler workers,
        // so a full-width batch runs every job's tasks inline with no
        // nested broadcasts at all.
        let threads = cluster.config().threads.max(1);
        let intra_threads = match cluster.config().scheduler {
            SchedulerMode::Sequential => threads,
            SchedulerMode::Dag => (threads / threads.min(n)).max(1),
        };

        // Dynamic race detection: every job registers its transitive
        // declared-dependency ancestors, then accesses are reported as
        // they happen — declared reads at job start, handle reads at
        // `JobCtx::get`, direct DFS traffic through the ambient thread
        // scope, declared writes at (submission-order) commit.
        #[cfg(feature = "race-detect")]
        let detector = Arc::new(crate::race::Detector::new());
        #[cfg(feature = "race-detect")]
        for (j, job) in jobs.iter().enumerate() {
            detector.register_job(j, &job.name, &preds[j]);
        }
        #[cfg(feature = "race-detect")]
        let write_sets: Vec<Vec<String>> = jobs.iter().map(|j| j.writes.clone()).collect();

        let ctx_for = |j: usize| JobCtx {
            cluster,
            graph,
            job_index: base + j,
            name: &jobs[j].name,
            ran: &ran[j],
            metrics: &metrics[j],
            preds: &preds[j],
            intra_threads,
            #[cfg(feature = "race-detect")]
            detector: &detector,
            #[cfg(feature = "race-detect")]
            batch_index: j,
            #[cfg(feature = "race-detect")]
            batch_writes: &write_sets,
        };
        // Run the job's closure and turn "returned Ok without running its
        // declared job" into the violation it is.
        let execute = |j: usize| -> Status {
            let f = jobs[j]
                .run
                .lock()
                .expect("job closure lock poisoned")
                .take()
                .expect("job dispatched once");
            #[cfg(feature = "race-detect")]
            let _race_scope = crate::race::JobScope::enter(Arc::clone(&detector), j);
            #[cfg(feature = "race-detect")]
            for r in &jobs[j].reads {
                detector.note_read(j, r);
            }
            match f(&ctx_for(j)) {
                Ok(()) if metrics[j].get().is_some() => Status::Done,
                Ok(()) => Status::Failed(MrError::PlanViolation {
                    job: jobs[j].name.clone(),
                    detail: "submitted job finished without running its MapReduce job".to_string(),
                }),
                Err(e) => Status::Failed(e),
            }
        };

        let statuses: Vec<OnceLock<Status>> = (0..n).map(|_| OnceLock::new()).collect();

        // ---- Eager submission-order commit -------------------------------
        // A commit cursor advances whenever the prefix of resolved
        // statuses grows: job j commits (metrics recorded on the cluster)
        // as soon as submissions 0..j are all Done — not when the whole
        // batch drains. The cursor and the cluster's metrics log are
        // updated under one lock, so records land strictly in submission
        // order even when workers race to advance. The first non-Done
        // status halts the cursor permanently: nothing after a failure
        // ever commits.
        let commit = Mutex::new(CommitCursor {
            next: 0,
            committed: RunMetrics::default(),
            halted: false,
        });
        let advance_commit = || {
            let mut cur = commit.lock().expect("commit cursor poisoned");
            while !cur.halted && cur.next < n {
                match statuses[cur.next].get() {
                    Some(Status::Done) => {
                        let m = metrics[cur.next]
                            .get()
                            .expect("done job stashed metrics")
                            .clone();
                        cluster.record(m.clone());
                        #[cfg(feature = "race-detect")]
                        {
                            for w in &jobs[cur.next].writes {
                                detector.note_write(cur.next, w);
                            }
                            detector.commit(cur.next);
                        }
                        cur.committed.push(m);
                        cur.next += 1;
                    }
                    Some(Status::Failed(_)) | Some(Status::Skipped) => cur.halted = true,
                    None => break,
                }
            }
        };

        let worker_busy_s = match cluster.config().scheduler {
            SchedulerMode::Sequential => {
                // Strict submission order, abort at the first failure —
                // exactly the pre-scheduler drivers' behaviour. Jobs after
                // the failure never run. One logical worker: the caller.
                let mut busy = 0.0f64;
                for (j, slot) in statuses.iter().enumerate() {
                    let started = std::time::Instant::now();
                    let status = execute(j);
                    busy += started.elapsed().as_secs_f64();
                    let stop = !matches!(status, Status::Done);
                    let _ = slot.set(status);
                    advance_commit();
                    if stop {
                        break;
                    }
                }
                vec![busy]
            }
            SchedulerMode::Dag => self.run_dag(
                cluster,
                &preds,
                &metrics,
                &statuses,
                &execute,
                &advance_commit,
            ),
        };

        // Surface flagged races on the cluster regardless of batch outcome
        // — a failing batch can still race, and the chaos harness wants
        // both signals.
        #[cfg(feature = "race-detect")]
        cluster.record_races(detector.reports());

        // ---- Surface the submission-order outcome ------------------------
        // Dependency edges only point backwards, so a skipped job always
        // follows its failed ancestor: the first uncommitted status is a
        // failure, and everything before it committed eagerly above.
        let cur = commit.into_inner().expect("commit cursor poisoned");
        if cur.next < n {
            match statuses[cur.next].get() {
                Some(Status::Failed(e)) => return Err(e.clone()),
                _ => unreachable!(
                    "job {} uncommitted but not failed; dependency edges only point backwards",
                    cur.next
                ),
            }
        }
        let report = batch_report(
            &cur.committed,
            &preds,
            cluster.config().threads.max(1),
            worker_busy_s,
        );
        cluster.record_batch(report.clone());
        Ok(BatchResults { report })
    }

    /// Ready-queue execution on the shared pool. Workers never block (see
    /// the module docs' liveness argument): the worker completing a job
    /// enqueues its newly-ready dependents and keeps looping, so every
    /// chain retains an executor even after idle workers retire.
    ///
    /// **Dispatch order** is longest-processing-time-first: among ready
    /// jobs, the one with the highest estimated cost runs next — the
    /// caller's [`Batch::set_cost_hint`] if set, else a proxy summing the
    /// bytes its already-finished predecessors fed it (their stashed
    /// [`JobMetrics`] are written before dependents wake, so the proxy is
    /// always available for dependency-released jobs). Ties fall back to
    /// smallest submission index, so an unhinted single-wave batch keeps
    /// plain FIFO order. LPT only reorders *execution*; commit order (and
    /// therefore every output and metric) is unchanged.
    ///
    /// Returns per-worker busy seconds (time spent inside `execute`),
    /// indexed by pool broadcast slot.
    fn run_dag(
        &self,
        cluster: &Cluster,
        preds: &[Vec<usize>],
        metrics: &[OnceLock<JobMetrics>],
        statuses: &[OnceLock<Status>],
        execute: &(dyn Fn(usize) -> Status + Sync),
        commit: &(dyn Fn() + Sync),
    ) -> Vec<f64> {
        let n = self.jobs.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p].push(j);
            }
        }
        let remaining: Vec<AtomicUsize> = preds.iter().map(|p| AtomicUsize::new(p.len())).collect();
        let poisoned: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let ready: Mutex<Vec<usize>> =
            Mutex::new((0..n).filter(|&j| preds[j].is_empty()).collect::<Vec<_>>());
        let est_cost = |j: usize| -> f64 {
            let fed: f64 = preds[j]
                .iter()
                .filter_map(|&p| metrics[p].get())
                .map(|m| (m.shuffle_bytes + m.reduce_output_bytes) as f64)
                .sum();
            self.jobs[j].cost_hint.max(fed)
        };
        // Cap scheduler workers at the host's real core count: configured
        // `threads` beyond that only adds context switching and queue
        // contention (a simulated 8-machine cluster is still one host).
        // Worker count never affects results — on a single-core host the
        // whole DAG drains inline on the caller with zero pool traffic.
        let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = cluster.config().threads.max(1).min(n).min(host);
        let busy: Vec<Mutex<f64>> = (0..workers).map(|_| Mutex::new(0.0f64)).collect();
        cluster.pool().broadcast(workers, &|executor| loop {
            let next = lpt_pick(&mut ready.lock().expect("ready queue poisoned"), &est_cost);
            let Some(j) = next else { break };
            let status = if poisoned[j].load(Ordering::SeqCst) {
                Status::Skipped
            } else {
                let started = std::time::Instant::now();
                let status = execute(j);
                *busy[executor].lock().expect("busy counter poisoned") +=
                    started.elapsed().as_secs_f64();
                status
            };
            let ok = matches!(status, Status::Done);
            let _ = statuses[j].set(status);
            // Advance the commit cursor before waking dependents: a
            // dependent reading its predecessor's output through
            // `JobCtx::get` may rely on that job's metrics already being
            // on the cluster log (exactly as under sequential execution).
            commit();
            for &s in &succs[j] {
                if !ok {
                    poisoned[s].store(true, Ordering::SeqCst);
                }
                if remaining[s].fetch_sub(1, Ordering::SeqCst) == 1 {
                    ready.lock().expect("ready queue poisoned").push(s);
                }
            }
        });
        busy.into_iter()
            .map(|b| b.into_inner().expect("busy counter poisoned"))
            .collect()
    }
}

/// Remove and return the ready job with the highest estimated cost
/// (longest-processing-time-first); ties break toward the smallest
/// submission index, so an unhinted batch degrades to FIFO.
fn lpt_pick(queue: &mut Vec<usize>, est: &dyn Fn(usize) -> f64) -> Option<usize> {
    let best = queue
        .iter()
        .enumerate()
        .map(|(pos, &j)| (pos, j, est(j)))
        .max_by(|a, b| a.2.total_cmp(&b.2).then_with(|| b.1.cmp(&a.1)))?;
    Some(queue.remove(best.0))
}

/// Shard-aware dataset overlap: same base, and either side unsharded or
/// the same shard. Public because the static race-certification pass in
/// `haten2-analyze` (and the dynamic detector's conflict test) must agree
/// with the scheduler's dependency inference on what conflicts.
pub fn datasets_overlap(a: &str, b: &str) -> bool {
    let (base_a, shard_a) = split_shard(a);
    let (base_b, shard_b) = split_shard(b);
    base_a == base_b
        && match (shard_a, shard_b) {
            (Some(x), Some(y)) => x == y,
            _ => true,
        }
}

fn split_shard(name: &str) -> (&str, Option<&str>) {
    match name.split_once('#') {
        Some((base, shard)) => (base, Some(shard)),
        None => (name, None),
    }
}

/// Shard-stripped, deduplicated, sorted dataset names.
fn base_set(names: &[String]) -> Vec<String> {
    let mut out: Vec<String> = names.iter().map(|n| split_shard(n).0.to_string()).collect();
    out.sort();
    out.dedup();
    out
}

/// Concurrency accounting over the committed jobs of one batch.
fn batch_report(
    committed: &RunMetrics,
    preds: &[Vec<usize>],
    slots: usize,
    worker_busy_s: Vec<f64>,
) -> BatchReport {
    let n = committed.jobs.len();
    // Longest dependency chain, in jobs and in host seconds.
    let mut depth = vec![0usize; n];
    let mut path_s = vec![0.0f64; n];
    for j in 0..n {
        let mut best_depth = 0;
        let mut best_s = 0.0f64;
        for &p in &preds[j] {
            best_depth = best_depth.max(depth[p]);
            best_s = best_s.max(path_s[p]);
        }
        depth[j] = best_depth + 1;
        path_s[j] = best_s + committed.jobs[j].wall_time_s;
    }
    BatchReport {
        jobs: n,
        critical_path_len: depth.iter().copied().max().unwrap_or(0),
        critical_path_s: path_s.iter().copied().fold(0.0, f64::max),
        wall_s: committed.wall_s(),
        busy_s: committed.busy_s(),
        peak_concurrency: committed.peak_concurrency(),
        sim_sequential_s: committed.jobs.iter().map(|j| j.sim_time_s).sum(),
        sim_makespan_s: sim_makespan(committed, preds, slots),
        worker_busy_s,
        heaviest_group_bytes: committed
            .jobs
            .iter()
            .map(|j| j.max_group_bytes)
            .max()
            .unwrap_or(0),
    }
}

/// Simulated makespan of the batch on `slots` job slots: jobs are
/// list-scheduled in submission order without backfilling — each starts
/// at the later of its dependencies' simulated finishes and the earliest
/// slot becoming free, and occupies that slot for its `sim_time_s`.
/// Submission order is topological (dependency edges only point
/// backwards), so a single pass suffices. Purely a function of committed
/// metrics and the dependency DAG: bit-identical across scheduler modes.
fn sim_makespan(committed: &RunMetrics, preds: &[Vec<usize>], slots: usize) -> f64 {
    let n = committed.jobs.len();
    let mut finish = vec![0.0f64; n];
    let mut slot_free = vec![0.0f64; slots.max(1)];
    for j in 0..n {
        let ready = preds[j].iter().map(|&p| finish[p]).fold(0.0, f64::max);
        let (slot, free) = slot_free
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0, 0.0));
        let start = ready.max(free);
        finish[j] = start + committed.jobs[j].sim_time_s;
        slot_free[slot] = finish[j];
    }
    finish.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::job::{run_job, JobSpec};
    use crate::plan::{PlanJob, SymExpr};

    fn cluster(mode: SchedulerMode) -> Cluster {
        let mut cfg = ClusterConfig::with_machines(2);
        cfg.scheduler = mode;
        cfg.threads = 4;
        Cluster::new(cfg)
    }

    fn scale_job(
        ctx: &JobCtx<'_>,
        name: &str,
        input: &[(u64, f64)],
        factor: f64,
    ) -> crate::Result<Vec<(u64, f64)>> {
        run_job(
            ctx,
            JobSpec::named(name),
            input,
            move |k, v: &f64, emit| emit(*k, v * factor),
            |k, vs, emit| emit(*k, vs.iter().sum::<f64>()),
        )
    }

    fn submit_chain<'a>(
        batch: &mut Batch<'a>,
        input: &'a [(u64, f64)],
        col: usize,
    ) -> JobHandle<Vec<(u64, f64)>> {
        let first = batch
            .submit(
                format!("scale{col}"),
                vec!["x".into()],
                vec![format!("t#{col}")],
                move |ctx| scale_job(ctx, &format!("scale{col}"), input, 2.0),
            )
            .unwrap();
        let chained = first.clone();
        batch
            .submit(
                format!("rescale{col}"),
                vec![format!("t#{col}")],
                vec![format!("y#{col}")],
                move |ctx| {
                    let t = ctx.get(&chained)?;
                    scale_job(ctx, &format!("rescale{col}"), t, 10.0)
                },
            )
            .unwrap()
    }

    #[test]
    fn dag_and_sequential_are_bit_identical() {
        let input: Vec<(u64, f64)> = (0..64).map(|i| (i, i as f64)).collect();
        type ModeOutcome = (Vec<Vec<(u64, f64)>>, RunMetrics);
        let mut all: Vec<ModeOutcome> = Vec::new();
        let mut sims: Vec<(f64, f64)> = Vec::new();
        for mode in [SchedulerMode::Sequential, SchedulerMode::Dag] {
            let c = cluster(mode);
            let mut batch = Batch::new();
            let handles: Vec<_> = (0..3)
                .map(|col| submit_chain(&mut batch, &input, col))
                .collect();
            let results = batch.run(&c).unwrap();
            assert_eq!(results.report().jobs, 6);
            assert_eq!(results.report().critical_path_len, 2);
            // The simulated schedule is a model quantity: positive, never
            // worse than one-job-at-a-time, and identical across modes.
            assert!(results.report().sim_makespan_s > 0.0);
            assert!(results.report().sim_makespan_s <= results.report().sim_sequential_s + 1e-12);
            sims.push((
                results.report().sim_sequential_s,
                results.report().sim_makespan_s,
            ));
            let outs: Vec<Vec<(u64, f64)>> =
                handles.into_iter().map(|h| h.take().unwrap()).collect();
            let mut m = c.metrics();
            for j in &mut m.jobs {
                j.wall_time_s = 0.0;
                j.started_s = 0.0;
                j.finished_s = 0.0;
                j.sim_time_s = 0.0;
            }
            all.push((outs, m));
        }
        assert_eq!(all[0].0, all[1].0, "outputs differ across modes");
        assert_eq!(all[0].1, all[1].1, "metrics differ across modes");
        assert_eq!(sims[0], sims[1], "simulated schedule differs across modes");
        // Commit order is submission order in both modes.
        let names: Vec<&str> = all[1].1.jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(
            names,
            ["scale0", "rescale0", "scale1", "rescale1", "scale2", "rescale2"]
        );
    }

    #[test]
    fn undeclared_dependency_access_is_a_plan_violation() {
        let input = vec![(0u64, 1.0f64)];
        let c = cluster(SchedulerMode::Sequential);
        let mut batch = Batch::new();
        let a = batch
            .submit("a", vec!["x".into()], vec!["t".into()], {
                let input = &input;
                move |ctx| scale_job(ctx, "a", input, 2.0)
            })
            .unwrap();
        // "b" reads dataset "u", not "t": accessing a's output is illegal
        // even though sequential execution happens to have it available.
        let stolen = a.clone();
        let b = batch
            .submit("b", vec!["u".into()], vec!["v".into()], move |ctx| {
                let t = ctx.get(&stolen)?;
                scale_job(ctx, "b", t, 1.0)
            })
            .unwrap();
        let err = batch.run(&c).unwrap_err();
        assert!(
            matches!(&err, MrError::PlanViolation { job, detail }
                if job == "b" && detail.contains("'b'") && detail.contains("'a'")),
            "{err}"
        );
        drop(b);
        // Job "a" committed before the failure surfaced.
        assert_eq!(c.jobs_run(), 1);
    }

    #[test]
    fn name_mismatch_and_double_run_are_plan_violations() {
        let input = vec![(0u64, 1.0f64)];
        let c = cluster(SchedulerMode::Dag);
        let mut batch = Batch::new();
        let _ = batch
            .submit("declared", vec!["x".into()], vec!["t".into()], {
                let input = &input;
                move |ctx| scale_job(ctx, "other", input, 2.0)
            })
            .unwrap();
        let err = batch.run(&c).unwrap_err();
        assert!(matches!(err, MrError::PlanViolation { .. }), "{err}");

        let mut batch = Batch::new();
        let _ = batch
            .submit("twice", vec!["x".into()], vec!["t".into()], {
                let input = &input;
                move |ctx| {
                    scale_job(ctx, "twice", input, 2.0)?;
                    scale_job(ctx, "twice", input, 2.0)
                }
            })
            .unwrap();
        let err = batch.run(&c).unwrap_err();
        assert!(matches!(err, MrError::PlanViolation { .. }), "{err}");

        let mut batch = Batch::new();
        let _: JobHandle<()> = batch
            .submit("lazy", vec!["x".into()], vec!["t".into()], |_| Ok(()))
            .unwrap();
        let err = batch.run(&c).unwrap_err();
        assert!(
            matches!(&err, MrError::PlanViolation { detail, .. }
                if detail.contains("without running")),
            "{err}"
        );
    }

    #[test]
    fn failure_skips_dependents_and_commits_prefix() {
        let input = vec![(0u64, 1.0f64)];
        for mode in [SchedulerMode::Sequential, SchedulerMode::Dag] {
            let c = cluster(mode);
            let mut batch = Batch::new();
            let _ = batch
                .submit("ok0", vec!["x".into()], vec!["a".into()], {
                    let input = &input;
                    move |ctx| scale_job(ctx, "ok0", input, 2.0)
                })
                .unwrap();
            let _: JobHandle<Vec<(u64, f64)>> = batch
                .submit("boom", vec!["x".into()], vec!["b".into()], move |_| {
                    Err(MrError::DatasetMissing {
                        job: "boom".to_string(),
                        dataset: "x".to_string(),
                    })
                })
                .unwrap();
            let _: JobHandle<()> = batch
                .submit("after", vec!["b".into()], vec!["c".into()], {
                    move |_| panic!("dependent of a failed job must never run")
                })
                .unwrap();
            let err = batch.run(&c).unwrap_err();
            assert!(matches!(err, MrError::DatasetMissing { .. }), "{err}");
            assert_eq!(c.jobs_run(), 1, "mode {mode:?}: prefix commit");
            assert!(c.batch_reports().is_empty(), "no report for failed batch");
        }
    }

    #[test]
    fn graph_validation_rejects_wrong_wiring() {
        let graph = JobGraph::new("demo", ["x"])
            .job(
                PlanJob::new("stage-a{}")
                    .repeat(SymExpr::rank_q())
                    .reads(["x"])
                    .writes(["t"])
                    .emits(SymExpr::nnz(), SymExpr::nnz()),
            )
            .job(
                PlanJob::new("stage-b")
                    .reads(["t"])
                    .writes(["y"])
                    .emits(SymExpr::nnz(), SymExpr::nnz()),
            );
        let input = vec![(0u64, 1.0f64)];
        let c = cluster(SchedulerMode::Dag);

        // Unknown name.
        let mut batch = Batch::with_graph(&graph);
        let _ = batch
            .submit("mystery", vec!["x".into()], vec!["t".into()], {
                let input = &input;
                move |ctx| scale_job(ctx, "mystery", input, 2.0)
            })
            .unwrap();
        let err = batch.run(&c).unwrap_err();
        assert!(
            matches!(&err, MrError::PlanViolation { detail, .. } if detail.contains("template")),
            "{err}"
        );

        // Wrong reads.
        let mut batch = Batch::with_graph(&graph);
        let _ = batch
            .submit("stage-b", vec!["x".into()], vec!["y".into()], {
                let input = &input;
                move |ctx| scale_job(ctx, "stage-b", input, 2.0)
            })
            .unwrap();
        let err = batch.run(&c).unwrap_err();
        assert!(
            matches!(&err, MrError::PlanViolation { detail, .. } if detail.contains("reads")),
            "{err}"
        );
        // Validation precedes execution: nothing ran or committed.
        assert_eq!(c.jobs_run(), 0);

        // Correct wiring passes, sharded writes included.
        let mut batch = Batch::with_graph(&graph);
        let handles: Vec<_> = (0..2)
            .map(|q| {
                batch
                    .submit(
                        format!("stage-a{q}"),
                        vec!["x".into()],
                        vec![format!("t#{q}")],
                        {
                            let input = &input;
                            move |ctx| scale_job(ctx, &format!("stage-a{q}"), input, 2.0)
                        },
                    )
                    .unwrap()
            })
            .collect();
        let merged = handles.clone();
        let _ = batch
            .submit("stage-b", vec!["t".into()], vec!["y".into()], move |ctx| {
                let mut t: Vec<(u64, f64)> = Vec::new();
                for h in &merged {
                    t.extend(ctx.get(h)?.iter().copied());
                }
                scale_job(ctx, "stage-b", &t, 1.0)
            })
            .unwrap();
        let results = batch.run(&c).unwrap();
        assert_eq!(results.report().jobs, 3);
        assert_eq!(results.report().critical_path_len, 2);
        assert!(results.report().peak_concurrency >= 1);
        assert_eq!(c.batch_reports().len(), 1);
        drop(handles);
    }

    #[test]
    fn derived_emit_hint_fills_in_from_graph() {
        // stage-a emits 2 records per input record; the scheduler derives
        // the hint from the graph so the driver does not hand-maintain it.
        let graph = JobGraph::new("demo", ["x"]).job(
            PlanJob::new("stage-a")
                .reads(["x"])
                .writes(["t"])
                .emits(SymExpr::c(2) * SymExpr::nnz(), SymExpr::nnz()),
        );
        assert_eq!(graph.emit_hint("stage-a"), Some(2));
        let input = vec![(0u64, 1.0f64), (1, 2.0)];
        let c = cluster(SchedulerMode::Dag);
        let mut batch = Batch::with_graph(&graph);
        let h = batch
            .submit("stage-a", vec!["x".into()], vec!["t".into()], {
                let input = &input;
                move |ctx| {
                    run_job(
                        ctx,
                        JobSpec::named("stage-a"),
                        input,
                        |k, v: &f64, emit| {
                            emit(*k, *v);
                            emit(*k + 100, *v);
                        },
                        |k, vs, emit| emit(*k, vs.iter().sum::<f64>()),
                    )
                }
            })
            .unwrap();
        batch.run(&c).unwrap();
        assert_eq!(h.take().unwrap().len(), 4);
    }

    #[test]
    fn lpt_runs_costliest_ready_job_first_but_commits_in_submission_order() {
        // One DAG worker makes the dispatch order observable; three
        // independent jobs with hints 1 < 5 < 3 must execute 5, 3, 1.
        let input = vec![(0u64, 1.0f64)];
        let mut cfg = ClusterConfig::with_machines(2);
        cfg.scheduler = SchedulerMode::Dag;
        cfg.threads = 1;
        let c = Cluster::new(cfg);
        let order: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let mut batch = Batch::new();
        let hints = [("light", 1.0), ("heavy", 5.0), ("middle", 3.0)];
        for (name, hint) in hints {
            let h = batch
                .submit(name, vec!["x".into()], vec![format!("t-{name}")], {
                    let input = &input;
                    let order = &order;
                    move |ctx| {
                        order.lock().unwrap().push(name);
                        scale_job(ctx, name, input, 2.0)
                    }
                })
                .unwrap();
            batch.set_cost_hint(&h, hint);
        }
        let results = batch.run(&c).unwrap();
        assert_eq!(*order.lock().unwrap(), ["heavy", "middle", "light"]);
        // Commit order is still submission order: LPT is invisible in the
        // metrics log.
        let names: Vec<String> = c.metrics().jobs.iter().map(|j| j.name.clone()).collect();
        assert_eq!(names, ["light", "heavy", "middle"]);
        assert_eq!(results.report().worker_busy_s.len(), 1);
        assert!(results.report().worker_busy_s[0] > 0.0);
    }

    #[test]
    fn unhinted_dag_falls_back_to_fifo_on_one_worker() {
        let input = vec![(0u64, 1.0f64)];
        let mut cfg = ClusterConfig::with_machines(2);
        cfg.scheduler = SchedulerMode::Dag;
        cfg.threads = 1;
        let c = Cluster::new(cfg);
        let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let mut batch = Batch::new();
        for j in 0..4usize {
            let _ = batch
                .submit(
                    format!("job{j}"),
                    vec!["x".into()],
                    vec![format!("t#{j}")],
                    {
                        let input = &input;
                        let order = &order;
                        move |ctx| {
                            order.lock().unwrap().push(j);
                            scale_job(ctx, &format!("job{j}"), input, 2.0)
                        }
                    },
                )
                .unwrap();
        }
        batch.run(&c).unwrap();
        assert_eq!(*order.lock().unwrap(), [0, 1, 2, 3]);
    }

    #[test]
    fn report_carries_worker_busy_and_heaviest_group() {
        let input: Vec<(u64, f64)> = (0..32).map(|i| (i % 4, i as f64)).collect();
        for mode in [SchedulerMode::Sequential, SchedulerMode::Dag] {
            let c = cluster(mode);
            let mut batch = Batch::new();
            let _ = batch
                .submit("grp", vec!["x".into()], vec!["t".into()], {
                    let input = &input;
                    move |ctx| scale_job(ctx, "grp", input, 2.0)
                })
                .unwrap();
            let results = batch.run(&c).unwrap();
            let report = results.report();
            assert!(!report.worker_busy_s.is_empty(), "mode {mode:?}");
            assert!(
                report.worker_busy_s.iter().sum::<f64>() > 0.0,
                "mode {mode:?}"
            );
            let max_group = c.metrics().jobs.iter().map(|j| j.max_group_bytes).max();
            assert_eq!(
                report.heaviest_group_bytes,
                max_group.unwrap(),
                "mode {mode:?}"
            );
            assert!(report.heaviest_group_bytes > 0, "mode {mode:?}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let c = cluster(SchedulerMode::Dag);
        let results = Batch::new().run(&c).unwrap();
        assert_eq!(results.report().jobs, 0);
        assert_eq!(c.jobs_run(), 0);
    }

    #[test]
    fn overlap_rules() {
        assert!(datasets_overlap("t", "t"));
        assert!(datasets_overlap("t", "t#3"));
        assert!(datasets_overlap("t#3", "t"));
        assert!(datasets_overlap("t#3", "t#3"));
        assert!(!datasets_overlap("t#3", "t#4"));
        assert!(!datasets_overlap("t", "u"));
        assert!(!datasets_overlap("t#1", "u#1"));
    }

    #[test]
    fn take_before_run_or_while_shared_is_an_error() {
        let mut batch: Batch<'_> = Batch::new();
        let h: JobHandle<Vec<(u64, f64)>> = batch
            .submit("a", vec!["x".into()], vec!["t".into()], |_| Ok(Vec::new()))
            .unwrap();
        let kept = h.clone();
        assert!(matches!(h.take(), Err(MrError::PlanViolation { .. })));
        drop(batch);
        assert!(matches!(kept.take(), Err(MrError::PlanViolation { .. })));
    }

    #[test]
    fn duplicate_exact_shard_write_is_rejected_at_submission() {
        let mut batch: Batch<'_> = Batch::new();
        let _w0: JobHandle<()> = batch
            .submit("w0", vec!["x".into()], vec!["t#0".into()], |_| Ok(()))
            .unwrap();
        let err =
            match batch.submit::<(), _>("w1", vec!["x".into()], vec!["t#0".into()], |_| Ok(())) {
                Err(e) => e,
                Ok(_) => panic!("duplicate exact-shard write must be rejected"),
            };
        assert!(
            matches!(&err, MrError::DuplicateWrite { job, prior_job, dataset }
                if job == "w1" && prior_job == "w0" && dataset == "t#0"),
            "{err}"
        );
        // A different shard of the same base is a legitimate sibling…
        let _w2: JobHandle<()> = batch
            .submit("w2", vec!["x".into()], vec!["t#1".into()], |_| Ok(()))
            .unwrap();
        // …and an unsharded write of the base is an ordinary WAW
        // dependency, serialized by `dependencies()`, not a duplicate.
        let _w3: JobHandle<()> = batch
            .submit("w3", vec!["t".into()], vec!["t".into()], |_| Ok(()))
            .unwrap();
    }
}
