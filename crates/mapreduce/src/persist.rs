//! Typed record serialization for the durable DFS backend.
//!
//! The block store speaks bytes; the engine speaks typed record vectors.
//! [`Persist`] bridges them: a stable little-endian wire encoding per
//! record type plus a *type tag* — a human-readable name recorded in the
//! store's manifest and checked on every read, so a dataset written before
//! a process restart can never be silently decoded as the wrong type
//! (the durable analogue of the in-memory `Any::downcast` guard).
//!
//! Encodings follow the same Hadoop-writable conventions as
//! [`crate::size::EstimateSize`]: fixed-width little-endian for numeric
//! scalars, `u32` length prefixes for strings and vectors, one presence
//! byte for options. A `get::<T>` call site always knows `T`, so decoding
//! needs no registry — the manifest's tag is compared against
//! `T::type_tag()` and the bytes are replayed through `T::read_record`.

/// A record type that can round-trip through the durable block store.
pub trait Persist: Sized {
    /// Stable, human-readable name of the wire encoding (e.g.
    /// `"((u64,u64,u64,u64),f64)"`). Recorded in the manifest at write
    /// time; a mismatch on read is treated exactly like a wrong-type
    /// downcast in memory mode.
    fn type_tag() -> String;

    /// Append this record's wire encoding to `out`.
    fn write_record(&self, out: &mut Vec<u8>);

    /// Decode one record starting at `*pos`, advancing `*pos` past it.
    /// `None` on truncated or malformed input.
    fn read_record(bytes: &[u8], pos: &mut usize) -> Option<Self>;
}

/// Encode a record slice into one contiguous byte payload.
#[must_use]
pub fn encode_records<T: Persist>(records: &[T]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        r.write_record(&mut out);
    }
    out
}

/// Decode a payload produced by [`encode_records`]. Fails on truncation,
/// malformed records, or trailing bytes.
pub fn decode_records<T: Persist>(bytes: &[u8]) -> Result<Vec<T>, String> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let before = pos;
        match T::read_record(bytes, &mut pos) {
            Some(r) => out.push(r),
            None => {
                return Err(format!(
                    "malformed {} record at byte {before}",
                    T::type_tag()
                ))
            }
        }
        if pos == before {
            // Zero-width records ((), nested units) carry no bytes; a
            // payload for them must be empty or we would loop forever.
            return Err(format!(
                "zero-width record type {} with non-empty payload",
                T::type_tag()
            ));
        }
    }
    Ok(out)
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let out = bytes.get(*pos..pos.checked_add(n)?)?;
    *pos += n;
    Some(out)
}

macro_rules! persist_numeric {
    ($($t:ty),* $(,)?) => {
        $(impl Persist for $t {
            fn type_tag() -> String {
                stringify!($t).to_string()
            }
            fn write_record(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_record(bytes: &[u8], pos: &mut usize) -> Option<Self> {
                let raw = take(bytes, pos, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(raw.try_into().ok()?))
            }
        })*
    };
}

persist_numeric!(u8, i8, u16, i16, u32, i32, f32, u64, i64, f64);

// usize/isize travel as 8-byte values so payloads are portable across
// host widths (the store may be reopened by a differently built binary).
impl Persist for usize {
    fn type_tag() -> String {
        "usize".to_string()
    }
    fn write_record(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
    fn read_record(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let raw = take(bytes, pos, 8)?;
        usize::try_from(u64::from_le_bytes(raw.try_into().ok()?)).ok()
    }
}

impl Persist for isize {
    fn type_tag() -> String {
        "isize".to_string()
    }
    fn write_record(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as i64).to_le_bytes());
    }
    fn read_record(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let raw = take(bytes, pos, 8)?;
        isize::try_from(i64::from_le_bytes(raw.try_into().ok()?)).ok()
    }
}

impl Persist for bool {
    fn type_tag() -> String {
        "bool".to_string()
    }
    fn write_record(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn read_record(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        match take(bytes, pos, 1)?[0] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Persist for () {
    fn type_tag() -> String {
        "()".to_string()
    }
    fn write_record(&self, _out: &mut Vec<u8>) {}
    fn read_record(_bytes: &[u8], _pos: &mut usize) -> Option<Self> {
        Some(())
    }
}

impl Persist for String {
    fn type_tag() -> String {
        "string".to_string()
    }
    fn write_record(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&u32::try_from(self.len()).unwrap_or(u32::MAX).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn read_record(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let len = u32::read_record(bytes, pos)? as usize;
        let raw = take(bytes, pos, len)?;
        String::from_utf8(raw.to_vec()).ok()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn type_tag() -> String {
        format!("option<{}>", T::type_tag())
    }
    fn write_record(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.write_record(out);
            }
        }
    }
    fn read_record(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        match take(bytes, pos, 1)?[0] {
            0 => Some(None),
            1 => Some(Some(T::read_record(bytes, pos)?)),
            _ => None,
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn type_tag() -> String {
        format!("vec<{}>", T::type_tag())
    }
    fn write_record(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&u32::try_from(self.len()).unwrap_or(u32::MAX).to_le_bytes());
        for v in self {
            v.write_record(out);
        }
    }
    fn read_record(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let len = u32::read_record(bytes, pos)? as usize;
        // Guard against a corrupt length claiming more records than bytes
        // remain (each non-unit record is at least one byte wide).
        if len > bytes.len().saturating_sub(*pos) && std::mem::size_of::<T>() > 0 {
            return None;
        }
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::read_record(bytes, pos)?);
        }
        Some(out)
    }
}

macro_rules! persist_tuple {
    ($($name:ident),+) => {
        impl<$($name: Persist),+> Persist for ($($name,)+) {
            fn type_tag() -> String {
                let parts = [$($name::type_tag()),+];
                format!("({})", parts.join(","))
            }
            #[allow(non_snake_case)]
            fn write_record(&self, out: &mut Vec<u8>) {
                let ($($name,)+) = self;
                $($name.write_record(out);)+
            }
            #[allow(non_snake_case)]
            fn read_record(bytes: &[u8], pos: &mut usize) -> Option<Self> {
                $(let $name = $name::read_record(bytes, pos)?;)+
                Some(($($name,)+))
            }
        }
    };
}

persist_tuple!(A);
persist_tuple!(A, B);
persist_tuple!(A, B, C);
persist_tuple!(A, B, C, D);
persist_tuple!(A, B, C, D, E);
persist_tuple!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug + Clone>(records: Vec<T>) {
        let bytes = encode_records(&records);
        assert_eq!(decode_records::<T>(&bytes).unwrap(), records);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(vec![0u8, 1, 255]);
        roundtrip(vec![-5i64, 0, i64::MAX]);
        roundtrip(vec![1.5f64, -0.0, f64::INFINITY]);
        roundtrip(vec![3usize, 0, 1 << 40]);
        roundtrip(vec![true, false]);
        roundtrip::<()>(vec![]);
    }

    #[test]
    fn tensor_record_shape_roundtrips() {
        // The canonical HaTen2 record: ((i,j,k,q), value).
        roundtrip(vec![
            ((1u64, 2u64, 3u64, 0u64), 1.5f64),
            ((9, 8, 7, 6), -2.25),
        ]);
        roundtrip(vec![(0u64, (1u64, 2.0f64)), (1, (3, 4.0))]);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec!["".to_string(), "héllo".to_string()]);
        roundtrip(vec![Some(1u64), None, Some(2)]);
        roundtrip(vec![vec![1u64, 2], vec![], vec![3]]);
    }

    #[test]
    fn bit_exact_floats() {
        // NaN payloads and signed zeros survive byte-exactly.
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let bytes = encode_records(&[nan, -0.0f64]);
        let back = decode_records::<f64>(&bytes).unwrap();
        assert_eq!(back[0].to_bits(), nan.to_bits());
        assert_eq!(back[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn type_tags_compose() {
        assert_eq!(
            <((u64, u64, u64, u64), f64)>::type_tag(),
            "((u64,u64,u64,u64),f64)"
        );
        assert_eq!(<Option<(u32, bool)>>::type_tag(), "option<(u32,bool)>");
        assert_eq!(<Vec<f64>>::type_tag(), "vec<f64>");
    }

    #[test]
    fn truncation_and_trailing_bytes_fail() {
        let bytes = encode_records(&[(1u64, 2.0f64)]);
        assert!(decode_records::<(u64, f64)>(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0xff);
        assert!(decode_records::<(u64, f64)>(&extra).is_err());
    }

    #[test]
    fn zero_width_records_reject_nonempty_payloads() {
        assert!(decode_records::<()>(&[]).unwrap().is_empty());
        assert!(decode_records::<()>(&[0u8]).is_err());
    }

    #[test]
    fn corrupt_vec_length_fails_cleanly() {
        let mut bytes = encode_records(&[vec![1u64, 2]]);
        // Claim 2^31 elements.
        bytes[0..4].copy_from_slice(&(1u32 << 31).to_le_bytes());
        assert!(decode_records::<Vec<u64>>(&bytes).is_err());
    }
}
