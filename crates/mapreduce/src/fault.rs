//! Deterministic fault injection: seeded schedules of task failures,
//! worker crashes, stragglers, and DFS read errors.
//!
//! A [`FaultPlan`] is a *pure function* from (job, task, attempt) to fault
//! decisions, driven by the vendored ChaCha `StdRng`. Both executors — the
//! pooled engine ([`crate::job::run_job`]) and the sequential oracle
//! ([`crate::reference::run_job_reference`]) — expand the plan into the
//! same [`JobFaultSchedule`] *before* running any task, so recovery
//! behaviour and its metrics are bit-identical regardless of real thread
//! scheduling.
//!
//! The fault model mirrors Hadoop's (§ DESIGN.md "Fault model"):
//!
//! * **Task failures** — a map/reduce task attempt dies; the engine re-runs
//!   it (bounded by [`RetryPolicy::max_attempts`]) after a simulated-time
//!   backoff. Exhausting the budget fails the job with a typed
//!   [`crate::MrError::TaskFailed`] naming the task.
//! * **Worker crashes** — a simulated worker (tasks are assigned to
//!   workers round-robin, `(task + attempt) % machines`) fails every
//!   attempt placed on it. After [`FaultPlan::blacklist_after`] failures
//!   the worker is blacklisted and no longer receives attempts.
//! * **Stragglers** — a map task runs `factor ×` slower than its nominal
//!   time. With speculation enabled a backup attempt launches once the
//!   task is one nominal duration late and wins iff the original would
//!   finish after `2 ×` nominal — Hadoop's speculative execution.
//! * **Transient DFS read errors** — a pipeline read fails and is retried
//!   with backoff ([`FaultPlan::dfs_read_fails`]).
//! * **Dataset loss** — a DFS dataset disappears before a read
//!   ([`FaultPlan::dataset_lost`]), exercising lineage re-derivation.
//!
//! All retry delays come from the single shared helper
//! [`RetryPolicy::backoff_s`]; `cargo xtask lint` (rule `shared-backoff`)
//! rejects ad-hoc backoff arithmetic elsewhere.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A speculative backup attempt launches when a straggling task is one
/// nominal duration late, so it completes at `2 ×` nominal time; the
/// original wins only when its slowdown factor is below this.
pub const SPECULATIVE_FINISH_FACTOR: f64 = 2.0;

/// Bounded-retry policy with exponential simulated-time backoff.
///
/// The **shared backoff helper** for every retry site in the workspace:
/// engine task retries, DFS read retries, and lineage re-derivation all
/// charge delays through [`RetryPolicy::backoff_s`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per task (first attempt included). A task whose
    /// schedule fails `max_attempts` times exhausts the budget and fails
    /// the job.
    pub max_attempts: usize,
    /// Simulated seconds charged before the first retry.
    pub backoff_base_s: f64,
    /// Multiplier applied per subsequent retry (exponential backoff).
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Simulated backoff delay before re-running a task whose attempt
    /// `failed_attempt` (0-based count of failures so far) just failed:
    /// `base · factor^failed_attempt`.
    pub fn backoff_s(&self, failed_attempt: usize) -> f64 {
        self.backoff_base_s * self.backoff_factor.powi(failed_attempt as i32)
    }
}

/// Seeded, deterministic fault schedule for a whole run.
///
/// Every decision is a pure function of `(seed, job name, job index, task,
/// attempt)` — independent of which real thread executes what — so the
/// pooled engine and the sequential reference executor recover
/// identically, metric-for-metric.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the ChaCha-derived decision stream.
    pub seed: u64,
    /// Probability a map task suffers one injected failure.
    pub map_fail_p: f64,
    /// Probability a reduce task suffers one injected failure.
    pub reduce_fail_p: f64,
    /// Probability a simulated worker is crashed for a given job.
    pub worker_crash_p: f64,
    /// Probability a map task straggles.
    pub straggle_p: f64,
    /// Straggler slowdown factors are drawn uniformly from
    /// `[2, straggle_factor_max]` (values below 2 are clamped to 2).
    pub straggle_factor_max: f64,
    /// Launch speculative backup attempts for stragglers.
    pub speculation: bool,
    /// Probability one DFS read attempt fails transiently.
    pub dfs_transient_p: f64,
    /// Probability a DFS dataset is lost (deleted) right before a
    /// lineage-aware pipeline stage reads it.
    pub dataset_loss_p: f64,
    /// Legacy deterministic knob: every `n`-th map task fails exactly once
    /// (the engine's original `fail_every_nth_task` behaviour).
    pub fail_every_nth: Option<usize>,
    /// Make the job with this submission index (see [`FaultPlan::schedule`])
    /// exhaust its retry budget immediately — a deterministic mid-pipeline
    /// "crash" for checkpoint/restart tests.
    pub kill_at_job: Option<usize>,
    /// Retry budget and backoff shared by every recovery site.
    pub retry: RetryPolicy,
    /// Blacklist a crashed worker after this many failures attributed to
    /// it within one job; `0` disables blacklisting.
    pub blacklist_after: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            map_fail_p: 0.0,
            reduce_fail_p: 0.0,
            worker_crash_p: 0.0,
            straggle_p: 0.0,
            straggle_factor_max: 4.0,
            speculation: true,
            dfs_transient_p: 0.0,
            dataset_loss_p: 0.0,
            fail_every_nth: None,
            kill_at_job: None,
            retry: RetryPolicy::default(),
            blacklist_after: 2,
        }
    }
}

/// Faults scheduled for one task.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskFaults {
    /// Attempts that fail before one succeeds (each is retried after a
    /// [`RetryPolicy::backoff_s`] delay).
    pub failed_attempts: usize,
    /// The retry budget is exhausted: the job fails with
    /// [`crate::MrError::TaskFailed`].
    pub exhausted: bool,
    /// Straggler slowdown factor (map tasks only).
    pub straggle_factor: Option<f64>,
}

/// The full fault schedule for one job, expanded up front so both
/// executors replay it identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobFaultSchedule {
    /// Per-map-task faults.
    pub map: Vec<TaskFaults>,
    /// Per-reduce-task (partition) faults.
    pub reduce: Vec<TaskFaults>,
    /// Workers blacklisted during this job.
    pub workers_blacklisted: usize,
}

impl JobFaultSchedule {
    /// Index of the first map task whose budget is exhausted, if any.
    pub fn first_exhausted_map(&self) -> Option<usize> {
        self.map.iter().position(|f| f.exhausted)
    }
}

impl TaskFaults {
    /// Charge one map task's faults into `metrics`: retry count, backoff
    /// delay, and straggler delay (net of a speculative win). Shared by
    /// the pooled engine and the sequential reference executor so their
    /// accounting is bit-identical. `nominal_task_s` is the task's
    /// fault-free duration (`input bytes / map throughput`).
    pub(crate) fn account_map(
        &self,
        plan: &FaultPlan,
        nominal_task_s: f64,
        metrics: &mut crate::metrics::JobMetrics,
    ) {
        metrics.task_retries += self.failed_attempts;
        for a in 0..self.failed_attempts {
            metrics.recovery_sim_time_s += plan.retry.backoff_s(a);
        }
        if let Some(factor) = self.straggle_factor {
            let effective = if plan.speculation {
                metrics.speculative_launched += 1;
                if factor > SPECULATIVE_FINISH_FACTOR {
                    metrics.speculative_wins += 1;
                }
                factor.min(SPECULATIVE_FINISH_FACTOR)
            } else {
                factor
            };
            metrics.recovery_sim_time_s += (effective - 1.0) * nominal_task_s;
        }
    }

    /// Charge one reduce task's faults into `metrics`. Reduce retries are
    /// accounting-only: the attempt dies before emitting, so re-running
    /// the reducer would change no output — only time is charged.
    pub(crate) fn account_reduce(
        &self,
        plan: &FaultPlan,
        metrics: &mut crate::metrics::JobMetrics,
    ) {
        metrics.reduce_task_retries += self.failed_attempts;
        for a in 0..self.failed_attempts {
            metrics.recovery_sim_time_s += plan.retry.backoff_s(a);
        }
    }
}

/// FNV-1a over a byte string (stable, dependency-free).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: decorrelates the packed decision coordinates.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Decision kinds, used as salts so the same coordinates never reuse a
/// random stream.
mod salt {
    pub const WORKER: u64 = 1;
    pub const MAP_FAIL: u64 = 2;
    pub const REDUCE_FAIL: u64 = 3;
    pub const STRAGGLE: u64 = 4;
    pub const STRAGGLE_FACTOR: u64 = 5;
    pub const DFS_READ: u64 = 6;
    pub const DATASET_LOSS: u64 = 7;
}

impl FaultPlan {
    /// A plan injecting nothing (useful for measuring the fault-free
    /// overhead of the recovery machinery itself).
    pub fn noop() -> Self {
        FaultPlan::default()
    }

    /// Compatibility constructor for the engine's original knob: every
    /// `n`-th map task fails exactly once and is retried.
    pub fn fail_every_nth(n: usize) -> Self {
        FaultPlan {
            fail_every_nth: Some(n),
            ..FaultPlan::default()
        }
    }

    /// A randomized schedule with moderate fault rates that, under the
    /// default [`RetryPolicy`], does not exhaust retry budgets — the
    /// chaos harness's bread and butter.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            map_fail_p: 0.15,
            reduce_fail_p: 0.10,
            worker_crash_p: 0.05,
            straggle_p: 0.10,
            straggle_factor_max: 6.0,
            dfs_transient_p: 0.10,
            retry: RetryPolicy {
                max_attempts: 8,
                ..RetryPolicy::default()
            },
            ..FaultPlan::default()
        }
    }

    /// A plan whose only effect is to crash the job with submission index
    /// `job_index` (a deterministic mid-pipeline failure).
    pub fn kill_at_job(job_index: usize) -> Self {
        FaultPlan {
            kill_at_job: Some(job_index),
            ..FaultPlan::default()
        }
    }

    /// True when the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.map_fail_p == 0.0
            && self.reduce_fail_p == 0.0
            && self.worker_crash_p == 0.0
            && self.straggle_p == 0.0
            && self.dfs_transient_p == 0.0
            && self.dataset_loss_p == 0.0
            && self.fail_every_nth.is_none_or(|n| n == 0)
            && self.kill_at_job.is_none()
    }

    /// One uniform draw in `[0, 1)` for the decision at coordinates
    /// `(salt, key, a, b)`. Order-independent: each decision seeds its own
    /// ChaCha stream, so engine and reference agree no matter who asks
    /// first.
    fn draw(&self, salt_kind: u64, key: u64, a: u64, b: u64) -> f64 {
        let packed = mix(self.seed ^ mix(key ^ mix(salt_kind ^ mix(a ^ mix(b)))));
        StdRng::seed_from_u64(packed).gen::<f64>()
    }

    /// Whether DFS read attempt `attempt` of `dataset` by `job` fails
    /// transiently.
    pub fn dfs_read_fails(&self, job: &str, dataset: &str, attempt: usize) -> bool {
        self.dfs_transient_p > 0.0
            && self.draw(
                salt::DFS_READ,
                fnv1a(job.as_bytes()),
                fnv1a(dataset.as_bytes()),
                attempt as u64,
            ) < self.dfs_transient_p
    }

    /// Whether `dataset` is lost (deleted from the DFS) right before `job`
    /// reads it. At most once per (job, dataset) pair — the re-derived
    /// copy survives.
    pub fn dataset_lost(&self, job: &str, dataset: &str) -> bool {
        self.dataset_loss_p > 0.0
            && self.draw(
                salt::DATASET_LOSS,
                fnv1a(job.as_bytes()),
                fnv1a(dataset.as_bytes()),
                0,
            ) < self.dataset_loss_p
    }

    /// Expand the plan into the complete fault schedule for one job.
    ///
    /// `job_index` is the cluster-wide submission index
    /// ([`crate::Cluster::jobs_run`] at submission time); it
    /// differentiates repeated runs of the same job name and anchors
    /// [`FaultPlan::kill_at_job`].
    ///
    /// The expansion is a single sequential pass (map tasks then reduce
    /// tasks in index order) so that the evolving worker blacklist is
    /// well-defined; executors replay the returned schedule instead of
    /// making their own time-dependent decisions.
    pub fn schedule(
        &self,
        job: &str,
        job_index: usize,
        map_tasks: usize,
        reduce_tasks: usize,
        machines: usize,
    ) -> JobFaultSchedule {
        let machines = machines.max(1);
        // A no-op plan schedules nothing for every job; skip the worker
        // walk and per-task draws so "having the subsystem" costs two
        // zeroed `Vec`s per job, keeping fault-free overhead negligible.
        if self.is_noop() {
            return JobFaultSchedule {
                map: vec![TaskFaults::default(); map_tasks],
                reduce: vec![TaskFaults::default(); reduce_tasks],
                workers_blacklisted: 0,
            };
        }
        let job_key = fnv1a(job.as_bytes()) ^ mix(job_index as u64);
        let max_attempts = self.retry.max_attempts.max(1);

        if self.kill_at_job == Some(job_index) {
            // Deterministic crash: the first map task burns the whole
            // budget.
            let mut map = vec![TaskFaults::default(); map_tasks.max(1)];
            map[0] = TaskFaults {
                failed_attempts: max_attempts,
                exhausted: true,
                straggle_factor: None,
            };
            return JobFaultSchedule {
                map,
                reduce: vec![TaskFaults::default(); reduce_tasks],
                workers_blacklisted: 0,
            };
        }

        let mut crashed = vec![false; machines];
        if self.worker_crash_p > 0.0 {
            for (w, c) in crashed.iter_mut().enumerate() {
                *c = self.draw(salt::WORKER, job_key, w as u64, 0) < self.worker_crash_p;
            }
        }
        let mut fail_count = vec![0usize; machines];
        let mut blacklisted = vec![false; machines];
        let mut workers_blacklisted = 0usize;

        // Walk a task's attempts across the simulated workers, counting
        // failures until a healthy attempt or an exhausted budget.
        let mut attempts_for = |task: usize, intrinsic: bool| -> (usize, bool) {
            let mut failed = 0usize;
            let mut attempt = 0usize;
            loop {
                if failed >= max_attempts {
                    return (failed, true);
                }
                let worker = (task + attempt) % machines;
                let worker_fails = crashed[worker] && !blacklisted[worker];
                let this_fails = (attempt == 0 && intrinsic) || worker_fails;
                if !this_fails {
                    return (failed, false);
                }
                failed += 1;
                if worker_fails {
                    fail_count[worker] += 1;
                    if self.blacklist_after > 0 && fail_count[worker] >= self.blacklist_after {
                        blacklisted[worker] = true;
                        workers_blacklisted += 1;
                    }
                }
                attempt += 1;
            }
        };

        let mut map = Vec::with_capacity(map_tasks);
        for t in 0..map_tasks {
            let intrinsic = match self.fail_every_nth {
                Some(n) => n > 0 && (t + 1).is_multiple_of(n),
                None => {
                    self.map_fail_p > 0.0
                        && self.draw(salt::MAP_FAIL, job_key, t as u64, 0) < self.map_fail_p
                }
            };
            let (failed_attempts, exhausted) = attempts_for(t, intrinsic);
            let straggle_factor = if self.straggle_p > 0.0
                && self.draw(salt::STRAGGLE, job_key, t as u64, 0) < self.straggle_p
            {
                let span = (self.straggle_factor_max - 2.0).max(0.0);
                Some(2.0 + self.draw(salt::STRAGGLE_FACTOR, job_key, t as u64, 0) * span)
            } else {
                None
            };
            map.push(TaskFaults {
                failed_attempts,
                exhausted,
                straggle_factor,
            });
        }

        let mut reduce = Vec::with_capacity(reduce_tasks);
        for p in 0..reduce_tasks {
            let intrinsic = self.reduce_fail_p > 0.0
                && self.draw(salt::REDUCE_FAIL, job_key, p as u64, 0) < self.reduce_fail_p;
            let (failed_attempts, exhausted) = attempts_for(p, intrinsic);
            reduce.push(TaskFaults {
                failed_attempts,
                exhausted,
                straggle_factor: None,
            });
        }

        JobFaultSchedule {
            map,
            reduce,
            workers_blacklisted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_s(0), 1.0);
        assert_eq!(r.backoff_s(1), 2.0);
        assert_eq!(r.backoff_s(2), 4.0);
    }

    #[test]
    fn noop_plan_schedules_nothing() {
        let plan = FaultPlan::noop();
        assert!(plan.is_noop());
        let s = plan.schedule("job", 0, 16, 8, 4);
        assert!(s.map.iter().all(|f| *f == TaskFaults::default()));
        assert!(s.reduce.iter().all(|f| *f == TaskFaults::default()));
        assert_eq!(s.workers_blacklisted, 0);
    }

    #[test]
    fn fail_every_nth_matches_legacy_semantics() {
        let plan = FaultPlan::fail_every_nth(3);
        let s = plan.schedule("legacy", 0, 9, 2, 4);
        for (t, f) in s.map.iter().enumerate() {
            let expect = usize::from((t + 1) % 3 == 0);
            assert_eq!(f.failed_attempts, expect, "task {t}");
            assert!(!f.exhausted);
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = FaultPlan::seeded(42);
        let a = plan.schedule("j", 3, 20, 10, 8);
        let b = plan.schedule("j", 3, 20, 10, 8);
        assert_eq!(a, b);
        // Different job index => (almost surely) different schedule.
        let c = plan.schedule("j", 4, 20, 10, 8);
        assert!(a != c || a.map.iter().all(|f| f.failed_attempts == 0));
    }

    #[test]
    fn seeded_plans_eventually_inject() {
        let plan = FaultPlan::seeded(7);
        let mut any = false;
        for idx in 0..20 {
            let s = plan.schedule("busy", idx, 16, 8, 8);
            any |= s
                .map
                .iter()
                .any(|f| f.failed_attempts > 0 || f.straggle_factor.is_some());
        }
        assert!(any, "a moderate plan must inject something in 20 jobs");
    }

    #[test]
    fn kill_at_job_exhausts_only_that_job() {
        let plan = FaultPlan::kill_at_job(5);
        assert!(plan
            .schedule("a", 4, 4, 2, 2)
            .first_exhausted_map()
            .is_none());
        let s = plan.schedule("a", 5, 4, 2, 2);
        assert_eq!(s.first_exhausted_map(), Some(0));
        assert!(s.map[0].failed_attempts >= plan.retry.max_attempts);
    }

    #[test]
    fn crashed_workers_get_blacklisted() {
        let plan = FaultPlan {
            worker_crash_p: 1.0, // every worker crashed
            blacklist_after: 1,
            retry: RetryPolicy {
                max_attempts: 10,
                ..RetryPolicy::default()
            },
            ..FaultPlan::default()
        };
        let s = plan.schedule("doom", 0, 6, 0, 3);
        // All three workers fail once, get blacklisted, and later tasks run
        // clean.
        assert_eq!(s.workers_blacklisted, 3);
        assert!(s.map.iter().all(|f| !f.exhausted));
        let total_failures: usize = s.map.iter().map(|f| f.failed_attempts).sum();
        assert_eq!(total_failures, 3);
    }

    #[test]
    fn all_workers_down_without_blacklist_exhausts() {
        let plan = FaultPlan {
            worker_crash_p: 1.0,
            blacklist_after: 0, // never blacklist
            ..FaultPlan::default()
        };
        let s = plan.schedule("doom", 0, 2, 0, 2);
        assert!(s.map[0].exhausted);
        assert_eq!(s.map[0].failed_attempts, plan.retry.max_attempts);
    }

    #[test]
    fn straggle_factors_in_range() {
        let plan = FaultPlan {
            straggle_p: 1.0,
            straggle_factor_max: 5.0,
            ..FaultPlan::default()
        };
        let s = plan.schedule("slow", 0, 32, 0, 4);
        for f in &s.map {
            let factor = f.straggle_factor.expect("all tasks straggle");
            assert!((2.0..=5.0).contains(&factor), "factor {factor}");
        }
    }

    #[test]
    fn dfs_decisions_depend_on_attempt() {
        let plan = FaultPlan {
            dfs_transient_p: 0.5,
            ..FaultPlan::default()
        };
        // With p = 0.5 over 64 attempts, both outcomes must occur.
        let outcomes: Vec<bool> = (0..64).map(|a| plan.dfs_read_fails("j", "d", a)).collect();
        assert!(outcomes.iter().any(|&b| b));
        assert!(outcomes.iter().any(|&b| !b));
        // And are reproducible.
        assert_eq!(
            plan.dfs_read_fails("j", "d", 3),
            plan.dfs_read_fails("j", "d", 3)
        );
    }
}
