//! A persistent worker-thread pool.
//!
//! The seed engine spawned two batches of scoped threads for *every* job
//! (one for the map phase, one for the reduce phase). HaTen2 runs
//! thousands of small jobs per decomposition, so thread creation itself
//! became a measurable fixed cost per job — exactly the real-Hadoop
//! pathology the cost model charges `per_job_overhead_s` for, except paid
//! in host time. [`WorkerPool`] amortizes it: threads are spawned once,
//! lazily, on the first job a [`crate::Cluster`] runs, and parked on a
//! condition variable between phases.
//!
//! The pool exposes one primitive, [`WorkerPool::broadcast`]: run a
//! closure once per executor, concurrently, and return when all
//! invocations finish. The calling thread always acts as one of the
//! executors, so a pool of `N` workers serves `N + 1` executors, and a
//! pool of zero workers degrades to plain inline execution with no
//! synchronization at all — the fast path on single-core hosts.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().expect("pool queue poisoned").pop_front()
    }
}

/// Countdown latch: `broadcast` waits on it until every dispatched
/// executor has finished (successfully or by panic).
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut n = self.remaining.lock().expect("latch poisoned");
        *n -= 1;
        if *n == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("latch poisoned") == 0
    }

    fn wait(&self) {
        let mut n = self.remaining.lock().expect("latch poisoned");
        while *n > 0 {
            n = self.done.wait(n).expect("latch poisoned");
        }
    }
}

/// A fixed set of parked worker threads executing [`WorkerPool::broadcast`]
/// calls. Created once per [`crate::Cluster`] and reused by every job.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawn `workers` parked threads. Zero workers is valid and makes
    /// every [`WorkerPool::broadcast`] run inline on the caller.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mr-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// Number of pool threads (excluding the caller, which participates in
    /// every broadcast).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(executor_index)` once per executor, concurrently, and return
    /// when all invocations have finished. The first `min(executors - 1,
    /// workers)` executors are dispatched to pool workers; the calling
    /// thread runs the rest (sequentially, if more than one). While
    /// waiting, the caller helps drain the queue, so a broadcast issued
    /// from *inside* a pool worker (nested jobs) cannot deadlock. If any
    /// invocation panics, the panic is re-raised on the caller after all
    /// executors finish.
    ///
    /// `f` may borrow caller-local state: no invocation of `f` outlives
    /// this call.
    // This function contains the workspace's only unsafe block (the
    // lifetime transmute below); the crate root otherwise denies
    // `unsafe_code`. Its invariant is exercised by
    // `tests/pool_stress.rs`, which hammers pool reuse, nesting,
    // borrowed state, and panics at maximum thread counts under this
    // exact entry point.
    #[allow(unsafe_code)]
    pub fn broadcast(&self, executors: usize, f: &(dyn Fn(usize) + Sync)) {
        let n = executors.max(1);
        let dispatched = (n - 1).min(self.workers);
        if dispatched == 0 {
            // Inline path: every executor runs sequentially on the caller.
            // Correct for any `f` that partitions work via a shared counter
            // (each invocation drains whatever work remains).
            for i in 0..n {
                f(i);
            }
            return;
        }

        // SAFETY: the transmute only erases the lifetime of `f`'s borrow
        // (`&'a dyn Fn(usize) + Sync` → `&'static`); pointee type, layout
        // and the `Sync` bound are unchanged. The erased reference is
        // sound because every dispatched use of `f_static` is over before
        // this function returns, which the following invariants guarantee:
        //
        // 1. Exactly `dispatched` closures capturing `f_static` are ever
        //    created, each counting `latch` (initialized to `dispatched`)
        //    down exactly once — *after* its call into `f_static` returns
        //    or panics (the `catch_unwind` cannot be skipped).
        // 2. This function does not return, and the caller's own panic is
        //    not resumed, before `latch.is_done()`: the help-first loop
        //    below runs to completion even when the caller's executor
        //    panicked (its payload is stashed and re-raised only after
        //    the latch drains).
        // 3. The queued closures are owned by this pool's queue and only
        //    ever executed, never leaked to another thread's storage: a
        //    worker (or the helping caller) pops a job and runs it to
        //    completion on its own stack, so no copy of `f_static`
        //    survives a job's `latch.count_down()`.
        //
        // Hence the apparent `'static` never outlives the real borrow of
        // `f`. `tests/pool_stress.rs` exercises this invariant under pool
        // reuse, nesting, borrowed stack state, panics, and maximum
        // thread counts.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let latch = Arc::new(Latch::new(dispatched));
        let first_panic: Arc<Mutex<Option<PanicPayload>>> = Arc::new(Mutex::new(None));

        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            for i in 0..dispatched {
                let latch = Arc::clone(&latch);
                let first_panic = Arc::clone(&first_panic);
                queue.push_back(Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| f_static(i)));
                    if let Err(payload) = result {
                        first_panic
                            .lock()
                            .expect("panic slot poisoned")
                            .get_or_insert(payload);
                    }
                    latch.count_down();
                }));
            }
        }
        // Waking every parked worker for a single queued job makes the
        // extra workers contend on the queue lock just to find it empty —
        // measurable on small broadcasts (a DAG scheduler dispatching one
        // ready job at a time). One job needs one worker.
        if dispatched == 1 {
            self.shared.available.notify_one();
        } else {
            self.shared.available.notify_all();
        }

        // The caller runs every executor not dispatched to the pool (all of
        // them beyond the first `dispatched` when the pool is smaller than
        // the broadcast). Catch its panic so unwinding cannot tear down the
        // borrowed state while workers still use it.
        let caller_result = catch_unwind(AssertUnwindSafe(|| {
            for i in dispatched..n {
                f(i);
            }
        }));

        // Help-first wait: drain queued jobs (ours or a concurrent
        // broadcast's) instead of blocking while work is available.
        while !latch.is_done() {
            match self.shared.try_pop() {
                Some(job) => job(),
                None => latch.wait(),
            }
        }

        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        let worker_panic = first_panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("pool queue poisoned");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            // A worker can only panic if a job's panic escaped catch_unwind,
            // which broadcast prevents; ignore the result to keep Drop quiet.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn broadcast_runs_every_executor() {
        for workers in [0, 1, 3] {
            let pool = WorkerPool::new(workers);
            let hits = AtomicUsize::new(0);
            pool.broadcast(4, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 4, "workers={workers}");
        }
    }

    #[test]
    fn broadcast_borrows_local_state() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..100).collect();
        let total = AtomicUsize::new(0);
        let next = AtomicUsize::new(0);
        pool.broadcast(3, &|_| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= data.len() {
                break;
            }
            total.fetch_add(data[i] as usize, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn pool_is_reusable_across_broadcasts() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let hits = AtomicUsize::new(0);
            pool.broadcast(3, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 3, "round={round}");
        }
    }

    #[test]
    fn nested_broadcast_does_not_deadlock() {
        let pool = WorkerPool::new(1);
        let inner_hits = AtomicUsize::new(0);
        pool.broadcast(2, &|_| {
            pool.broadcast(2, &|_| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(3, &|i| {
                if i == 0 {
                    panic!("boom from worker");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives the panic and stays usable.
        let hits = AtomicUsize::new(0);
        pool.broadcast(3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn caller_panic_waits_for_workers() {
        let pool = WorkerPool::new(2);
        let data = [1u64, 2, 3];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(3, &|i| {
                if i == 2 {
                    // The caller's executor panics while workers still
                    // read `data`; broadcast must not unwind past `data`
                    // until they finish.
                    panic!("boom from caller");
                }
                assert_eq!(data.iter().sum::<u64>(), 6);
            });
        }));
        assert!(result.is_err());
    }
}
