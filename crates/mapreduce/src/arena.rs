//! Columnar (SoA) record buffers for the engine's hot data path.
//!
//! The seed engine pushed owned `(K, V)` tuples into per-partition
//! `Vec<(K, V)>` buckets, sorted those tuples (moving `size_of::<(K, V)>()`
//! bytes per swap), and re-materialized every reduce group as an owned
//! `Vec<V>`. This module replaces all three with columnar storage:
//!
//! * [`ColumnBuffer`] — keys and values in two contiguous arenas. Map
//!   emit appends to both columns; nothing else in the engine pushes
//!   per-record tuples (enforced by the `no-per-record-alloc` lint).
//! * Sorting computes a `u32` index permutation over the key column
//!   ([`sort_permutation`]) and applies it to both columns in place with
//!   cycle-following swaps ([`apply_permutation`]) — the comparison loop
//!   never moves a value, and the move loop is O(n) swaps.
//! * [`ColumnRun`] — a sealed, immutable sorted run. The shuffle moves
//!   these wholesale; reducers open them as [`RunCursor`]s and stream
//!   each key group through [`GroupValues`] without materializing it.
//!
//! Byte accounting is column-wise: `slice_est_bytes(keys) +
//! slice_est_bytes(vals)` equals the seed's tuple-wise sum exactly
//! (tuple estimates are component sums, see [`crate::size`]), so metrics
//! stay bit-identical to the reference executor.

use crate::job::Combiner;
use crate::size::{slice_est_bytes, EstimateSize};
use crate::RECORD_FRAMING_BYTES as FRAMING_BYTES;

/// A growable pair of key/value columns — the SoA replacement for
/// `Vec<(K, V)>` in map emit, shuffle, and reduce-output paths.
pub(crate) struct ColumnBuffer<K, V> {
    keys: Vec<K>,
    vals: Vec<V>,
}

impl<K, V> ColumnBuffer<K, V> {
    /// Empty buffer with both columns pre-sized to `cap`.
    pub(crate) fn with_capacity(cap: usize) -> Self {
        ColumnBuffer {
            keys: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Empty buffer with no reservation.
    pub(crate) fn new() -> Self {
        ColumnBuffer::with_capacity(0)
    }
}

impl<K, V> Default for ColumnBuffer<K, V> {
    fn default() -> Self {
        ColumnBuffer::new()
    }
}

impl<K, V> ColumnBuffer<K, V> {
    /// Append one record. The only per-record append in the hot path.
    #[inline]
    pub(crate) fn push(&mut self, key: K, val: V) {
        self.keys.push(key);
        self.vals.push(val);
    }

    /// Records stored.
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the buffer holds no records.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Arena high-water proxy: bytes currently reserved by both columns.
    /// Capacity (not length) so reallocation growth is visible.
    pub(crate) fn alloc_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<K>()
            + self.vals.capacity() * std::mem::size_of::<V>()
    }

    /// Consume into `(key, value)` pairs, in order. Used only at the API
    /// boundary where callers expect row-major output.
    pub(crate) fn into_pairs(self) -> impl Iterator<Item = (K, V)> {
        self.keys.into_iter().zip(self.vals)
    }
}

impl<K: EstimateSize, V: EstimateSize> ColumnBuffer<K, V> {
    /// Estimated wire bytes of the buffered records, framing included.
    /// Column-wise but numerically identical to the seed's tuple-wise sum.
    pub(crate) fn est_bytes(&self) -> usize {
        slice_est_bytes(&self.keys) + slice_est_bytes(&self.vals) + self.len() * FRAMING_BYTES
    }
}

impl<K: Ord, V> ColumnBuffer<K, V> {
    /// Stable sort by key: a `u32` permutation sorted over the key column,
    /// then applied to both columns in place. Emission order within equal
    /// keys is preserved. (Measured against both a `(key, index)`-pair
    /// unstable sort and a distinct-key counting sort, the indirect
    /// permutation sort wins on this workload's bucket shapes — the cost
    /// is memory traffic, not comparisons.)
    pub(crate) fn sort_stable(&mut self) {
        // Already-sorted detection first: a stable sort of sorted input is
        // the identity, and hash-partitioned buckets routinely hold a
        // single distinct key (low-cardinality jobs), so this O(n) scan
        // saves two scratch allocations plus the sort on the hottest
        // small-job path.
        if self.keys.is_sorted() {
            return;
        }
        let mut perm = sort_permutation(&self.keys);
        apply_permutation(&mut perm, &mut self.keys, &mut self.vals);
    }
}

impl<K: Clone + Ord, V> ColumnBuffer<K, V> {
    /// Apply a map-side combiner to each key group of the (sorted) buffer.
    /// Same contract as the seed's `combine_bucket`: values reach the
    /// combiner in emission order; output stays key-sorted.
    pub(crate) fn combine(&mut self, combiner: Combiner<'_, K, V>) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        let mut vals_it = old_vals.into_iter();
        let mut start = 0usize;
        while start < old_keys.len() {
            let mut end = start + 1;
            while end < old_keys.len() && old_keys[end] == old_keys[start] {
                end += 1;
            }
            let group: Vec<V> = vals_it.by_ref().take(end - start).collect();
            for v in combiner(&old_keys[start], group) {
                self.push(old_keys[start].clone(), v);
            }
            start = end;
        }
    }
}

impl<K: EstimateSize, V: EstimateSize> ColumnBuffer<K, V> {
    /// Seal into an immutable sorted run carrying precomputed wire bytes.
    pub(crate) fn seal(self, bytes: usize) -> ColumnRun<K, V> {
        ColumnRun {
            keys: self.keys,
            vals: self.vals,
            bytes,
        }
    }
}

/// One map task's sealed output for one partition: columnar records sorted
/// by key, plus their aggregate wire size. The shuffle moves these
/// wholesale — two `Vec` moves per (task × partition), never per record.
pub(crate) struct ColumnRun<K, V> {
    keys: Vec<K>,
    vals: Vec<V>,
    bytes: usize,
}

impl<K, V> ColumnRun<K, V> {
    /// Records in the run.
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Precomputed wire bytes (framing included).
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    /// Open the run for the reduce-side streaming merge.
    pub(crate) fn into_cursor(self) -> RunCursor<K, V> {
        RunCursor::from_columns(self.keys, self.vals)
    }
}

/// Stable sort permutation over `keys`: `perm[rank]` is the index of the
/// record holding that rank. `u32` indices halve the bytes moved per sort
/// compared to shuffling 16–24-byte record tuples.
pub(crate) fn sort_permutation<K: Ord>(keys: &[K]) -> Vec<u32> {
    debug_assert!(keys.len() <= u32::MAX as usize);
    let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
    // Stable, so emission order survives within equal keys.
    perm.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
    perm
}

/// Permute both columns in place so that position `rank` receives the
/// record at `perm[rank]`, using O(n) cycle-following swaps and no
/// per-record allocation. Consumes `perm` as scratch.
pub(crate) fn apply_permutation<K, V>(perm: &mut [u32], keys: &mut [K], vals: &mut [V]) {
    debug_assert_eq!(perm.len(), keys.len());
    debug_assert_eq!(perm.len(), vals.len());
    // The swap walk below applies the *inverse* of the array it is given,
    // so first invert `perm` in place-of-scratch: inv[source] = rank.
    let mut inv = vec![0u32; perm.len()];
    for (rank, &source) in perm.iter().enumerate() {
        inv[source as usize] = rank as u32;
    }
    for i in 0..inv.len() {
        while inv[i] as usize != i {
            let j = inv[i] as usize;
            keys.swap(i, j);
            vals.swap(i, j);
            inv.swap(i, j);
        }
    }
}

/// A read cursor over one sorted [`ColumnRun`]: keys stay addressable as a
/// slice (for group prefix counting) while values stream out by move.
pub(crate) struct RunCursor<K, V> {
    keys: Vec<K>,
    pos: usize,
    vals: std::vec::IntoIter<V>,
}

impl<K, V> RunCursor<K, V> {
    pub(crate) fn from_columns(keys: Vec<K>, vals: Vec<V>) -> Self {
        debug_assert_eq!(keys.len(), vals.len());
        RunCursor {
            keys,
            pos: 0,
            vals: vals.into_iter(),
        }
    }

    /// The key at the cursor, if any records remain.
    #[inline]
    pub(crate) fn peek_key(&self) -> Option<&K> {
        self.keys.get(self.pos)
    }

    /// Keys at and after the cursor — the unconsumed suffix.
    #[inline]
    pub(crate) fn pending_keys(&self) -> &[K] {
        &self.keys[self.pos..]
    }

    /// Values at and after the cursor, parallel to [`RunCursor::pending_keys`].
    #[inline]
    pub(crate) fn pending_vals(&self) -> &[V] {
        self.vals.as_slice()
    }

    /// Advance past the current record, yielding its value by move.
    #[inline]
    fn next_val(&mut self) -> V {
        self.pos += 1;
        self.vals.next().expect("cursor columns in lockstep")
    }
}

/// Streaming iterator over one key group's values during the reduce-side
/// k-way merge. Yields values in run (= map task) order — the exact order
/// the seed engine materialized into its per-group `Vec` — **without ever
/// holding the whole group**: each `next()` moves one value out of its
/// run cursor. The merge sizes each group before streaming it, so the
/// iterator is driven by those per-run prefix counts rather than
/// re-comparing keys on every value. [`crate::job::run_job_streaming`]
/// reducers consume this directly; the classic `Vec`-based
/// [`crate::job::run_job`] collects it once, at the engine boundary.
pub struct GroupValues<'a, K, V> {
    cursors: &'a mut [RunCursor<K, V>],
    key: &'a K,
    /// `counts[i]` = how many of this group's values run `i` holds.
    counts: &'a [u32],
    run: usize,
    /// Values left to yield from `cursors[run]` before moving on.
    left: u32,
    remaining: usize,
}

impl<'a, K: Ord, V> GroupValues<'a, K, V> {
    pub(crate) fn new(
        cursors: &'a mut [RunCursor<K, V>],
        key: &'a K,
        counts: &'a [u32],
        remaining: usize,
    ) -> Self {
        debug_assert_eq!(
            counts.iter().map(|&c| c as usize).sum::<usize>(),
            remaining,
            "group counts must sum to the group size"
        );
        GroupValues {
            cursors,
            key,
            counts,
            run: 0,
            left: counts.first().copied().unwrap_or(0),
            remaining,
        }
    }

    /// The group's key.
    pub fn key(&self) -> &K {
        self.key
    }

    /// Values not yet yielded.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// Whether the group is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl<K: Ord, V> Iterator for GroupValues<'_, K, V> {
    type Item = V;

    #[inline]
    fn next(&mut self) -> Option<V> {
        if self.remaining == 0 {
            return None;
        }
        while self.left == 0 {
            self.run += 1;
            self.left = self.counts[self.run];
        }
        self.left -= 1;
        self.remaining -= 1;
        Some(self.cursors[self.run].next_val())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<K: Ord, V> ExactSizeIterator for GroupValues<'_, K, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_sort_matches_tuple_sort_and_is_stable() {
        // Duplicate keys with distinguishable values: stability visible.
        let mut buf: ColumnBuffer<u64, (u64, u64)> = ColumnBuffer::new();
        let records = [(3u64, 0u64), (1, 1), (3, 2), (2, 3), (1, 4), (3, 5)];
        for (k, i) in records {
            buf.push(k, (k, i));
        }
        buf.sort_stable();
        let sorted: Vec<_> = buf.into_pairs().collect();
        let mut expect: Vec<(u64, (u64, u64))> =
            records.iter().map(|&(k, i)| (k, (k, i))).collect();
        expect.sort_by_key(|a| a.0);
        assert_eq!(sorted, expect);
    }

    #[test]
    fn apply_permutation_handles_rotations_and_identity() {
        for perm_spec in [
            vec![0u32, 1, 2, 3],
            vec![3, 2, 1, 0],
            vec![1, 2, 3, 0],
            vec![3, 0, 1, 2],
            vec![2, 0, 3, 1],
        ] {
            let mut keys = vec![10u64, 11, 12, 13];
            let mut vals = vec!["a", "b", "c", "d"];
            let mut perm = perm_spec.clone();
            apply_permutation(&mut perm, &mut keys, &mut vals);
            let expect_keys: Vec<u64> = perm_spec.iter().map(|&p| 10 + p as u64).collect();
            let expect_vals: Vec<&str> = perm_spec
                .iter()
                .map(|&p| ["a", "b", "c", "d"][p as usize])
                .collect();
            assert_eq!(keys, expect_keys, "perm {perm_spec:?}");
            assert_eq!(vals, expect_vals, "perm {perm_spec:?}");
        }
    }

    #[test]
    fn est_bytes_matches_tuple_accounting() {
        let mut buf: ColumnBuffer<u64, f64> = ColumnBuffer::new();
        let tuples = vec![(1u64, 2.0f64), (3, 4.0), (5, 6.0)];
        for &(k, v) in &tuples {
            buf.push(k, v);
        }
        let tuple_bytes = slice_est_bytes(&tuples) + tuples.len() * FRAMING_BYTES;
        assert_eq!(buf.est_bytes(), tuple_bytes);

        // Variable-size values take the per-record path on both sides.
        let mut var: ColumnBuffer<u64, String> = ColumnBuffer::new();
        let var_tuples = vec![(1u64, "ab".to_string()), (2, "cdef".to_string())];
        for (k, v) in &var_tuples {
            var.push(*k, v.clone());
        }
        let var_bytes = slice_est_bytes(&var_tuples) + var_tuples.len() * FRAMING_BYTES;
        assert_eq!(var.est_bytes(), var_bytes);
    }

    #[test]
    fn combine_matches_seed_semantics() {
        // Sum-combiner over sorted duplicates; key cloned per output row.
        let mut buf: ColumnBuffer<u64, u64> = ColumnBuffer::new();
        for (k, v) in [(1u64, 1u64), (1, 2), (2, 5), (3, 1), (3, 1), (3, 1)] {
            buf.push(k, v);
        }
        let combiner: Combiner<'_, u64, u64> = &|_, vals| vec![vals.iter().sum::<u64>()];
        buf.combine(combiner);
        let out: Vec<_> = buf.into_pairs().collect();
        assert_eq!(out, vec![(1, 3), (2, 5), (3, 3)]);
    }

    #[test]
    fn group_values_streams_in_run_order() {
        let runs = [
            (vec![1u64, 1, 2], vec![10u64, 11, 20]),
            (vec![1u64, 3], vec![12u64, 30]),
            (vec![2u64], vec![21u64]),
        ];
        let mut cursors: Vec<RunCursor<u64, u64>> = runs
            .into_iter()
            .map(|(k, v)| RunCursor::from_columns(k, v))
            .collect();

        let key = 1u64;
        let mut group = GroupValues::new(&mut cursors, &key, &[2, 1, 0], 3);
        assert_eq!(group.len(), 3);
        assert_eq!(group.by_ref().collect::<Vec<_>>(), vec![10, 11, 12]);
        assert!(group.is_empty());

        let key = 2u64;
        let group = GroupValues::new(&mut cursors, &key, &[1, 0, 1], 2);
        assert_eq!(group.collect::<Vec<_>>(), vec![20, 21]);

        let key = 3u64;
        let group = GroupValues::new(&mut cursors, &key, &[0, 1, 0], 1);
        assert_eq!(group.collect::<Vec<_>>(), vec![30]);
        assert!(cursors.iter().all(|c| c.peek_key().is_none()));
    }

    #[test]
    fn alloc_bytes_tracks_capacity() {
        let buf: ColumnBuffer<u64, f64> = ColumnBuffer::with_capacity(16);
        assert_eq!(buf.alloc_bytes(), 16 * 8 + 16 * 8);
        let empty: ColumnBuffer<u64, f64> = ColumnBuffer::new();
        assert_eq!(empty.alloc_bytes(), 0);
    }
}
