//! A debug-feature dynamic race detector for scheduled batches.
//!
//! Compiled only under the `race-detect` cargo feature. The scheduler
//! registers every job of a batch with its *declared-dependency ancestor
//! set* (the transitive closure of `deps()`), then reports each dataset
//! access as it happens: declared reads at job start, handle reads at
//! `JobCtx::get`, declared writes at commit. The detector keeps a
//! per-dataset last-writer/readers table stamped with commit epochs and
//! flags any access whose job is *unordered* with a conflicting prior
//! access — exactly the condition the static `races` pass certifies can
//! never happen, which is what makes the static ⊆ dynamic cross-validation
//! in the chaos harness meaningful.
//!
//! Ordering is judged against declared dependencies, not wall clock, so a
//! race is flagged deterministically on every run regardless of how the
//! DAG interleaves — including under `SchedulerMode::Sequential`, where the
//! racy schedule happens not to interleave at all.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// One flagged access pair: two jobs touched `dataset` conflictingly with
/// no declared-dependency path between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Dataset both jobs touched.
    pub dataset: String,
    /// Job whose access was recorded first.
    pub first_job: String,
    /// Job whose later access was unordered with the first.
    pub second_job: String,
    /// `"write/write"` or `"read/write"`.
    pub kind: &'static str,
    /// Commit epoch of the detector when the race was observed.
    pub epoch: u64,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} race on '{}' between '{}' and '{}' (epoch {})",
            self.kind, self.dataset, self.first_job, self.second_job, self.epoch
        )
    }
}

#[derive(Debug, Default)]
struct DatasetState {
    /// Last committed writer (job index) and nothing else: commits happen
    /// in submission order, so one writer slot suffices.
    last_writer: Option<usize>,
    /// Jobs that read the dataset since (and including) the last write.
    readers: Vec<usize>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Per registered job: name and ancestor set (transitive closure of
    /// declared dependencies, fixed at registration).
    jobs: Vec<(String, HashSet<usize>)>,
    /// Per-dataset access table.
    datasets: HashMap<String, DatasetState>,
    /// Commit epoch — advanced once per job commit.
    epoch: u64,
    /// Flagged races, deduplicated by (dataset, pair, kind).
    reports: Vec<RaceReport>,
}

impl Inner {
    /// Is job `a` ordered before (or equal to) job `b` by declared deps?
    fn ordered(&self, a: usize, b: usize) -> bool {
        a == b || self.jobs[b].1.contains(&a) || self.jobs[a].1.contains(&b)
    }

    fn flag(&mut self, dataset: &str, first: usize, second: usize, kind: &'static str) {
        let report = RaceReport {
            dataset: dataset.to_string(),
            first_job: self.jobs[first].0.clone(),
            second_job: self.jobs[second].0.clone(),
            kind,
            epoch: self.epoch,
        };
        if !self.reports.iter().any(|r| {
            r.dataset == report.dataset
                && r.first_job == report.first_job
                && r.second_job == report.second_job
                && r.kind == kind
        }) {
            self.reports.push(report);
        }
    }
}

/// The per-batch detector. All methods take `&self`; the table lives
/// behind one mutex because accesses are rare (per dataset, not per
/// record).
#[derive(Debug, Default)]
pub struct Detector {
    inner: Mutex<Inner>,
}

impl Detector {
    /// Fresh detector for one batch run.
    pub fn new() -> Detector {
        Detector::default()
    }

    /// Register job `index` (submission order) with its direct declared
    /// predecessors; ancestor sets are closed transitively because
    /// predecessors are always registered first.
    pub fn register_job(&self, index: usize, name: &str, preds: &[usize]) {
        let mut g = self.inner.lock().expect("race detector poisoned");
        debug_assert_eq!(g.jobs.len(), index);
        let mut ancestors: HashSet<usize> = preds.iter().copied().collect();
        for &p in preds {
            if let Some((_, pa)) = g.jobs.get(p) {
                ancestors.extend(pa.iter().copied());
            }
        }
        g.jobs.push((name.to_string(), ancestors));
    }

    /// Record a read of `dataset` by job `index`, flagging it when the
    /// last committed writer of any *overlapping* dataset (shard-aware,
    /// [`crate::sched::datasets_overlap`]) is unordered with the reader.
    pub fn note_read(&self, index: usize, dataset: &str) {
        let mut g = self.inner.lock().expect("race detector poisoned");
        let writers: Vec<usize> = g
            .datasets
            .iter()
            .filter(|(name, _)| crate::sched::datasets_overlap(name, dataset))
            .filter_map(|(_, s)| s.last_writer)
            .collect();
        for w in writers {
            if !g.ordered(w, index) {
                g.flag(dataset, w, index, "read/write");
            }
        }
        let state = g.datasets.entry(dataset.to_string()).or_default();
        if !state.readers.contains(&index) {
            state.readers.push(index);
        }
    }

    /// Record a committed write of `dataset` by job `index`, flagging it
    /// against an unordered prior writer or any unordered prior reader of
    /// an overlapping dataset.
    pub fn note_write(&self, index: usize, dataset: &str) {
        let mut g = self.inner.lock().expect("race detector poisoned");
        let mut writers: Vec<usize> = Vec::new();
        let mut readers: Vec<usize> = Vec::new();
        for (name, s) in &g.datasets {
            if crate::sched::datasets_overlap(name, dataset) {
                writers.extend(s.last_writer);
                readers.extend(s.readers.iter().copied());
            }
        }
        for w in writers {
            if !g.ordered(w, index) {
                g.flag(dataset, w, index, "write/write");
            }
        }
        for r in readers {
            if !g.ordered(r, index) {
                g.flag(dataset, r, index, "read/write");
            }
        }
        let state = g.datasets.entry(dataset.to_string()).or_default();
        state.last_writer = Some(index);
        state.readers.clear();
    }

    /// Advance the commit epoch — called once per job commit, in
    /// submission order.
    pub fn commit(&self, _index: usize) {
        self.inner.lock().expect("race detector poisoned").epoch += 1;
    }

    /// Races flagged so far.
    pub fn reports(&self) -> Vec<RaceReport> {
        self.inner
            .lock()
            .expect("race detector poisoned")
            .reports
            .clone()
    }
}

thread_local! {
    /// The job currently executing on this thread, if the scheduler wired
    /// a detector around it. [`Dfs`](crate::Dfs) access hooks report
    /// through this ambient scope, so direct `dfs.get`/`dfs.put` calls
    /// from inside a job closure are tracked without threading a token
    /// through every pipeline helper.
    static CURRENT: RefCell<Option<(Arc<Detector>, usize)>> = const { RefCell::new(None) };
}

/// RAII scope marking the current thread as executing job `index` under
/// `detector`; [`Dfs`](crate::Dfs) accesses on this thread are attributed
/// to that job until the scope drops.
#[derive(Debug)]
pub struct JobScope {
    prev: Option<(Arc<Detector>, usize)>,
}

impl JobScope {
    /// Enter the scope.
    pub fn enter(detector: Arc<Detector>, index: usize) -> JobScope {
        let prev = CURRENT.with(|c| c.replace(Some((detector, index))));
        JobScope { prev }
    }
}

impl Drop for JobScope {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

/// Report a DFS read of `dataset` by whatever job owns this thread.
pub fn ambient_read(dataset: &str) {
    CURRENT.with(|c| {
        if let Some((det, job)) = c.borrow().as_ref() {
            det.note_read(*job, dataset);
        }
    });
}

/// Report a DFS write (or delete) of `dataset` by whatever job owns this
/// thread.
pub fn ambient_write(dataset: &str) {
    CURRENT.with(|c| {
        if let Some((det, job)) = c.borrow().as_ref() {
            det.note_write(*job, dataset);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_accesses_are_clean() {
        let d = Detector::new();
        d.register_job(0, "a", &[]);
        d.register_job(1, "b", &[0]);
        d.register_job(2, "c", &[1]);
        d.note_write(0, "t");
        d.commit(0);
        d.note_read(1, "t");
        d.note_write(1, "y");
        d.commit(1);
        d.note_read(2, "y");
        d.commit(2);
        assert!(d.reports().is_empty(), "{:?}", d.reports());
    }

    #[test]
    fn unordered_write_write_is_flagged() {
        let d = Detector::new();
        d.register_job(0, "a", &[]);
        d.register_job(1, "b", &[]);
        d.note_write(0, "t");
        d.commit(0);
        d.note_write(1, "t");
        d.commit(1);
        let reports = d.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, "write/write");
        assert_eq!(reports[0].dataset, "t");
        assert_eq!(
            (
                reports[0].first_job.as_str(),
                reports[0].second_job.as_str()
            ),
            ("a", "b")
        );
    }

    #[test]
    fn unordered_read_of_committed_write_is_flagged() {
        let d = Detector::new();
        d.register_job(0, "w", &[]);
        d.register_job(1, "r", &[]);
        d.note_write(0, "t");
        d.commit(0);
        d.note_read(1, "t");
        let reports = d.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, "read/write");
    }

    #[test]
    fn transitive_ancestors_order_accesses() {
        let d = Detector::new();
        d.register_job(0, "a", &[]);
        d.register_job(1, "b", &[0]);
        d.register_job(2, "c", &[1]);
        d.note_write(0, "t");
        d.commit(0);
        // c never names a directly, but a ∈ ancestors(c) transitively.
        d.note_read(2, "t");
        assert!(d.reports().is_empty());
    }

    #[test]
    fn ambient_scope_attributes_thread_accesses() {
        let d = Arc::new(Detector::new());
        d.register_job(0, "a", &[]);
        d.register_job(1, "b", &[]);
        {
            let _s = JobScope::enter(Arc::clone(&d), 0);
            ambient_write("t");
        }
        {
            let _s = JobScope::enter(Arc::clone(&d), 1);
            ambient_write("t");
        }
        // Outside any scope: silently ignored.
        ambient_read("t");
        let reports = d.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, "write/write");
    }

    #[test]
    fn shard_overlap_is_conflict_aware() {
        let d = Detector::new();
        d.register_job(0, "w0", &[]);
        d.register_job(1, "w1", &[]);
        d.register_job(2, "r", &[]);
        d.note_write(0, "t#0");
        d.commit(0);
        // A different shard of the same base never conflicts…
        d.note_write(1, "t#1");
        d.commit(1);
        assert!(d.reports().is_empty(), "{:?}", d.reports());
        // …but an unsharded read of the base conflicts with both writers.
        d.note_read(2, "t");
        assert_eq!(d.reports().len(), 2, "{:?}", d.reports());
    }

    #[test]
    fn unordered_reader_then_writer_is_flagged() {
        let d = Detector::new();
        d.register_job(0, "r", &[]);
        d.register_job(1, "w", &[]);
        d.note_read(0, "t");
        d.note_write(1, "t");
        let reports = d.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, "read/write");
        assert_eq!(reports[0].first_job, "r");
    }
}
