//! DFS-chained job pipelines.
//!
//! Hadoop jobs communicate through HDFS: each job reads named datasets and
//! writes named datasets, and the number of times the big input is re-read
//! is a first-order cost (HaTen2-DRI's point in §III-B4). [`run_job_dfs`]
//! runs one job against the metered [`Dfs`], so multi-job algorithms
//! expressed as pipelines get their disk traffic accounted automatically.

use crate::dfs::Dfs;
use crate::job::{run_job, JobSpec};
use crate::size::EstimateSize;
use crate::{Cluster, MrError};
use std::hash::Hash;

/// Run one job whose input is the DFS dataset `input` and whose output is
/// written to the DFS dataset `output`. Returns the number of output
/// records.
///
/// Fails with [`MrError::DatasetMissing`] when `input` does not exist or
/// holds records of a different type.
pub fn run_job_dfs<KI, VI, KM, VM, KO, VO, M, R>(
    cluster: &Cluster,
    dfs: &Dfs,
    spec: JobSpec<'_, KM, VM>,
    input: &str,
    output: &str,
    mapper: M,
    reducer: R,
) -> crate::Result<usize>
where
    KI: Clone + Send + Sync + EstimateSize + 'static,
    VI: Clone + Send + Sync + EstimateSize + 'static,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Clone + Send + Sync + EstimateSize + 'static,
    VO: Clone + Send + Sync + EstimateSize + 'static,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Fn(&KM, Vec<VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    let job_name = spec.name.clone();
    let records = dfs
        .get::<(KI, VI)>(input)
        .ok_or_else(|| MrError::DatasetMissing {
            job: job_name,
            dataset: input.to_string(),
        })?;
    let out = run_job(cluster, spec, &records, mapper, reducer)?;
    let n = out.len();
    dfs.put(output, out);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterConfig;

    #[test]
    fn two_stage_pipeline_with_metered_reads() {
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        let dfs = Dfs::new();
        dfs.put("logs", vec![(0u64, 3u64), (1, 3), (2, 5), (3, 5), (4, 5)]);

        // Stage 1: count values.
        let n = run_job_dfs(
            &cluster,
            &dfs,
            JobSpec::named("count"),
            "logs",
            "counts",
            |_: &u64, v: &u64, emit| emit(*v, 1u64),
            |k, vals, emit| emit(*k, vals.len() as u64),
        )
        .unwrap();
        assert_eq!(n, 2);

        // Stage 2: find the max count (single key).
        run_job_dfs(
            &cluster,
            &dfs,
            JobSpec::named("max"),
            "counts",
            "max",
            |_: &u64, c: &u64, emit| emit(0u8, *c),
            |_, vals, emit| emit(0u8, vals.into_iter().max().unwrap_or(0)),
        )
        .unwrap();

        let result = dfs.get::<(u8, u64)>("max").unwrap();
        assert_eq!(result[0], (0, 3));

        // Metering: "logs" read once, "counts" written then read once.
        assert_eq!(dfs.reads_of("logs"), Some(1));
        assert_eq!(dfs.reads_of("counts"), Some(1));
        assert_eq!(cluster.metrics().total_jobs(), 2);
    }

    #[test]
    fn missing_dataset_fails_cleanly() {
        let cluster = Cluster::with_defaults();
        let dfs = Dfs::new();
        let err = run_job_dfs(
            &cluster,
            &dfs,
            JobSpec::named("orphan"),
            "nope",
            "out",
            |k: &u64, v: &u64, emit| emit(*k, *v),
            |k, vals, emit| emit(*k, vals.len() as u64),
        )
        .unwrap_err();
        assert!(matches!(err, MrError::DatasetMissing { .. }));
    }

    #[test]
    fn type_mismatch_is_missing() {
        let cluster = Cluster::with_defaults();
        let dfs = Dfs::new();
        dfs.put("x", vec![1u64, 2, 3]); // not (K, V) pairs
        let err = run_job_dfs(
            &cluster,
            &dfs,
            JobSpec::named("typed"),
            "x",
            "out",
            |k: &u64, v: &u64, emit| emit(*k, *v),
            |k, vals, emit| emit(*k, vals.len() as u64),
        )
        .unwrap_err();
        assert!(matches!(err, MrError::DatasetMissing { .. }));
    }
}
