//! DFS-chained job pipelines, with fault-tolerant input reads.
//!
//! Hadoop jobs communicate through HDFS: each job reads named datasets and
//! writes named datasets, and the number of times the big input is re-read
//! is a first-order cost (HaTen2-DRI's point in §III-B4). [`run_job_dfs`]
//! runs one job against the metered [`Dfs`], so multi-job algorithms
//! expressed as pipelines get their disk traffic accounted automatically.
//!
//! Two layers of input-read fault tolerance mirror Hadoop's:
//!
//! * **Transient read errors** — when the cluster carries a
//!   [`crate::FaultPlan`], each DFS read may fail transiently per the
//!   plan's `dfs_transient_p`; the runner retries with the shared
//!   [`crate::RetryPolicy`] backoff (simulated time), surfacing
//!   [`MrError::DfsReadFailed`] only when the budget is exhausted.
//! * **Dataset loss** — [`run_job_dfs_recovering`] additionally consults a
//!   [`Lineage`] registry when the input dataset is *gone* (or scheduled
//!   lost by the plan's `dataset_loss_p`): the producing job is re-run and
//!   the read retried, counting the recovery in
//!   [`crate::JobMetrics::lineage_recoveries`].

use crate::dfs::{Block, Dfs};
use crate::fault::FaultPlan;
use crate::job::{run_job, JobSpec};
use crate::lineage::Lineage;
use crate::persist::Persist;
use crate::size::EstimateSize;
use crate::{Cluster, MrError};
use std::hash::Hash;

/// Outcome of fetching a job's input dataset through the fault layer.
struct FetchOutcome<T> {
    /// Zero-copy view of the stored dataset: the job borrows the DFS's
    /// own storage for the duration of the run (map tasks split it by
    /// range), so a fetch never clones records no matter how many jobs
    /// read the same input.
    records: Block<T>,
    /// Transient read failures endured (each cost one backoff interval).
    transient_retries: usize,
    /// Simulated seconds spent backing off between read attempts.
    backoff_s: f64,
    /// Lineage re-derivations performed because the dataset was missing.
    recoveries: usize,
}

/// Read `input` for `job_name`, riding out transient faults and — when a
/// lineage registry is supplied — re-deriving the dataset if it is missing.
fn fetch_input<T: Persist + Send + Sync + 'static>(
    dfs: &Dfs,
    plan: Option<&FaultPlan>,
    lineage: Option<&Lineage>,
    job_name: &str,
    input: &str,
) -> crate::Result<FetchOutcome<T>> {
    let mut transient_retries = 0usize;
    let mut backoff_s = 0.0f64;
    let mut recoveries = 0usize;
    // One lineage recovery per missing observation; a second consecutive
    // miss means the recipe did not restore the dataset — give up.
    let mut recovered_already = false;
    let mut attempt = 0usize;
    loop {
        // Scheduled transient read error for this attempt?
        if let Some(p) = plan {
            if p.dfs_read_fails(job_name, input, attempt) {
                transient_retries += 1;
                backoff_s += p.retry.backoff_s(attempt);
                attempt += 1;
                if attempt >= p.retry.max_attempts {
                    return Err(MrError::DfsReadFailed {
                        job: job_name.to_string(),
                        dataset: input.to_string(),
                        attempts: attempt,
                    });
                }
                continue;
            }
        }
        match dfs.get_required::<T>(job_name, input) {
            Ok(records) => {
                return Ok(FetchOutcome {
                    records: Block::whole(records),
                    transient_retries,
                    backoff_s,
                    recoveries,
                })
            }
            Err(err) => {
                let Some(lineage) = lineage else {
                    return Err(err);
                };
                if recovered_already {
                    return Err(err);
                }
                lineage.recover(input)?;
                recovered_already = true;
                recoveries += 1;
            }
        }
    }
}

/// Shared stage runner behind [`run_job_dfs`] and
/// [`run_job_dfs_recovering`].
#[allow(clippy::too_many_arguments)]
fn run_stage<KI, VI, KM, VM, KO, VO, M, R>(
    cluster: &Cluster,
    dfs: &Dfs,
    lineage: Option<&Lineage>,
    spec: JobSpec<'_, KM, VM>,
    input: &str,
    output: &str,
    mapper: M,
    reducer: R,
) -> crate::Result<usize>
where
    KI: Clone + Send + Sync + EstimateSize + Persist + 'static,
    VI: Clone + Send + Sync + EstimateSize + Persist + 'static,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Clone + Send + Sync + EstimateSize + Persist + 'static,
    VO: Clone + Send + Sync + EstimateSize + Persist + 'static,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Fn(&KM, Vec<VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    let job_name = spec.name.clone();
    let plan = cluster.config().fault_plan.as_ref();

    // Scheduled dataset loss: the DFS "loses" the input before this job
    // reads it, forcing the lineage path to re-derive it.
    if let Some(p) = plan {
        if lineage.is_some() && p.dataset_lost(&job_name, input) && dfs.contains(input) {
            dfs.delete(input)?;
        }
    }

    let fetched = fetch_input::<(KI, VI)>(dfs, plan, lineage, &job_name, input)?;
    let out = run_job(cluster, spec, fetched.records.slice(), mapper, reducer)?;
    let n = out.len();
    dfs.put(output, out)?;

    if fetched.transient_retries > 0 || fetched.recoveries > 0 {
        cluster.annotate_last(|m| {
            m.dfs_read_retries += fetched.transient_retries;
            m.lineage_recoveries += fetched.recoveries;
            m.recovery_sim_time_s += fetched.backoff_s;
            m.sim_time_s += fetched.backoff_s;
        });
    }
    Ok(n)
}

/// Run one job whose input is the DFS dataset `input` and whose output is
/// written to the DFS dataset `output`. Returns the number of output
/// records.
///
/// Fails with [`MrError::DatasetMissing`] when `input` does not exist or
/// holds records of a different type, and with [`MrError::DfsReadFailed`]
/// when a fault plan's transient read errors outlast the retry budget.
pub fn run_job_dfs<KI, VI, KM, VM, KO, VO, M, R>(
    cluster: &Cluster,
    dfs: &Dfs,
    spec: JobSpec<'_, KM, VM>,
    input: &str,
    output: &str,
    mapper: M,
    reducer: R,
) -> crate::Result<usize>
where
    KI: Clone + Send + Sync + EstimateSize + Persist + 'static,
    VI: Clone + Send + Sync + EstimateSize + Persist + 'static,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Clone + Send + Sync + EstimateSize + Persist + 'static,
    VO: Clone + Send + Sync + EstimateSize + Persist + 'static,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Fn(&KM, Vec<VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    run_stage(cluster, dfs, None, spec, input, output, mapper, reducer)
}

/// Like [`run_job_dfs`], but a missing input dataset is re-derived through
/// the `lineage` registry (one recovery per read) instead of failing, and
/// the fault plan's scheduled dataset losses are injected. Each recovery is
/// recorded in the job's [`crate::JobMetrics::lineage_recoveries`].
#[allow(clippy::too_many_arguments)]
pub fn run_job_dfs_recovering<KI, VI, KM, VM, KO, VO, M, R>(
    cluster: &Cluster,
    dfs: &Dfs,
    lineage: &Lineage,
    spec: JobSpec<'_, KM, VM>,
    input: &str,
    output: &str,
    mapper: M,
    reducer: R,
) -> crate::Result<usize>
where
    KI: Clone + Send + Sync + EstimateSize + Persist + 'static,
    VI: Clone + Send + Sync + EstimateSize + Persist + 'static,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Clone + Send + Sync + EstimateSize + Persist + 'static,
    VO: Clone + Send + Sync + EstimateSize + Persist + 'static,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Fn(&KM, Vec<VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    run_stage(
        cluster,
        dfs,
        Some(lineage),
        spec,
        input,
        output,
        mapper,
        reducer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, FaultPlan};
    use std::sync::Arc;

    #[test]
    fn two_stage_pipeline_with_metered_reads() {
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        let dfs = Dfs::new();
        dfs.put("logs", vec![(0u64, 3u64), (1, 3), (2, 5), (3, 5), (4, 5)])
            .unwrap();

        // Stage 1: count values.
        let n = run_job_dfs(
            &cluster,
            &dfs,
            JobSpec::named("count"),
            "logs",
            "counts",
            |_: &u64, v: &u64, emit| emit(*v, 1u64),
            |k, vals, emit| emit(*k, vals.len() as u64),
        )
        .unwrap();
        assert_eq!(n, 2);

        // Stage 2: find the max count (single key).
        run_job_dfs(
            &cluster,
            &dfs,
            JobSpec::named("max"),
            "counts",
            "max",
            |_: &u64, c: &u64, emit| emit(0u8, *c),
            |_, vals, emit| emit(0u8, vals.into_iter().max().unwrap_or(0)),
        )
        .unwrap();

        let result = dfs.get::<(u8, u64)>("max").unwrap();
        assert_eq!(result[0], (0, 3));

        // Metering: "logs" read once, "counts" written then read once.
        assert_eq!(dfs.reads_of("logs"), Some(1));
        assert_eq!(dfs.reads_of("counts"), Some(1));
        assert_eq!(cluster.metrics().total_jobs(), 2);
    }

    #[test]
    fn missing_dataset_fails_cleanly() {
        let cluster = Cluster::with_defaults();
        let dfs = Dfs::new();
        let err = run_job_dfs(
            &cluster,
            &dfs,
            JobSpec::named("orphan"),
            "nope",
            "out",
            |k: &u64, v: &u64, emit| emit(*k, *v),
            |k, vals, emit| emit(*k, vals.len() as u64),
        )
        .unwrap_err();
        assert!(matches!(err, MrError::DatasetMissing { .. }));
    }

    #[test]
    fn type_mismatch_is_missing() {
        let cluster = Cluster::with_defaults();
        let dfs = Dfs::new();
        dfs.put("x", vec![1u64, 2, 3]).unwrap(); // not (K, V) pairs
        let err = run_job_dfs(
            &cluster,
            &dfs,
            JobSpec::named("typed"),
            "x",
            "out",
            |k: &u64, v: &u64, emit| emit(*k, *v),
            |k, vals, emit| emit(*k, vals.len() as u64),
        )
        .unwrap_err();
        assert!(matches!(err, MrError::DatasetMissing { .. }));
    }

    #[test]
    fn transient_read_faults_are_retried_and_metered() {
        // A plan with near-certain transient read errors but a big retry
        // budget: the read eventually succeeds (decisions are deterministic
        // for a fixed seed), and retries + backoff show up in the metrics.
        let mut plan = FaultPlan::noop();
        plan.dfs_transient_p = 0.9;
        plan.retry.max_attempts = 50;
        let cluster = Cluster::new(ClusterConfig {
            fault_plan: Some(plan),
            ..ClusterConfig::with_machines(2)
        });
        let dfs = Dfs::new();
        dfs.put("logs", vec![(0u64, 1u64), (1, 2)]).unwrap();
        run_job_dfs(
            &cluster,
            &dfs,
            JobSpec::named("count"),
            "logs",
            "counts",
            |k: &u64, v: &u64, emit| emit(*k, *v),
            |k, vals, emit| emit(*k, vals.len() as u64),
        )
        .unwrap();
        let m = cluster.metrics();
        assert!(m.total_dfs_read_retries() > 0);
        assert!(m.total_recovery_sim_time_s() > 0.0);
    }

    #[test]
    fn exhausted_read_budget_is_typed() {
        let mut plan = FaultPlan::noop();
        plan.dfs_transient_p = 1.0;
        plan.retry.max_attempts = 2;
        // With p = 1.0 every attempt fails, so the budget must run out.
        let cluster = Cluster::new(ClusterConfig {
            fault_plan: Some(plan),
            ..ClusterConfig::with_machines(2)
        });
        let dfs = Dfs::new();
        dfs.put("logs", vec![(0u64, 1u64)]).unwrap();
        let err = run_job_dfs(
            &cluster,
            &dfs,
            JobSpec::named("count"),
            "logs",
            "counts",
            |k: &u64, v: &u64, emit| emit(*k, *v),
            |k, vals, emit| emit(*k, vals.len() as u64),
        )
        .unwrap_err();
        assert!(
            matches!(err, MrError::DfsReadFailed { attempts, .. } if attempts == 2),
            "got {err:?}"
        );
    }

    #[test]
    fn lost_dataset_recovers_through_lineage() {
        let cluster = Arc::new(Cluster::new(ClusterConfig::with_machines(2)));
        let dfs = Arc::new(Dfs::new());
        dfs.put("logs", vec![(0u64, 3u64), (1, 3), (2, 5)]).unwrap();

        let lineage = Lineage::new();
        let (c2, d2) = (Arc::clone(&cluster), Arc::clone(&dfs));
        lineage
            .register("counts", "count", move || {
                run_job_dfs(
                    &c2,
                    &d2,
                    JobSpec::named("count"),
                    "logs",
                    "counts",
                    |_: &u64, v: &u64, emit| emit(*v, 1u64),
                    |k, vals, emit| emit(*k, vals.len() as u64),
                )
                .map(|_| ())
            })
            .unwrap();

        // Stage 2's input never materialized (simulated loss before the
        // consumer runs): the recovering runner re-derives it.
        assert!(!dfs.contains("counts"));
        run_job_dfs_recovering(
            &cluster,
            &dfs,
            &lineage,
            JobSpec::named("max"),
            "counts",
            "max",
            |_: &u64, c: &u64, emit| emit(0u8, *c),
            |_, vals, emit| emit(0u8, vals.into_iter().max().unwrap_or(0)),
        )
        .unwrap();

        let result = dfs.get::<(u8, u64)>("max").unwrap();
        assert_eq!(result[0], (0, 2));
        assert_eq!(lineage.recoveries(), 1);
        assert_eq!(cluster.metrics().total_lineage_recoveries(), 1);
    }

    #[test]
    fn unrecoverable_loss_is_typed() {
        let cluster = Cluster::with_defaults();
        let dfs = Dfs::new();
        let lineage = Lineage::new();
        let err = run_job_dfs_recovering(
            &cluster,
            &dfs,
            &lineage,
            JobSpec::named("max"),
            "counts",
            "max",
            |k: &u64, v: &u64, emit| emit(*k, *v),
            |k, vals, emit| emit(*k, vals.len() as u64),
        )
        .unwrap_err();
        assert!(matches!(err, MrError::LineageMissing { .. }));
    }
}
