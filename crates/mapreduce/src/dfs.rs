//! In-memory distributed-file-system stand-in with I/O metering.
//!
//! HaTen2 stores the input tensor and the factor matrices on HDFS between
//! jobs; the key property the evaluation exercises is *how many times each
//! dataset is read* (HaTen2-DRI reads the tensor once per ALS step instead
//! of twice). `Dfs` stores named, type-erased datasets and counts reads and
//! writes so that saving is observable.

use crate::size::EstimateSize;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::RwLock;

/// Per-dataset bookkeeping.
struct Stored {
    data: Arc<dyn Any + Send + Sync>,
    bytes: usize,
    reads: AtomicUsize,
}

/// A zero-copy view of a contiguous range of an immutable DFS dataset.
///
/// The underlying `Vec` is shared (`Arc`), never cloned: narrowing a
/// block, handing it to a map task, or keeping it across a concurrent
/// [`Dfs::put`] replacing the dataset all cost one reference count, not a
/// copy. This is the engine-side analogue of an HDFS block handle — a
/// reader holds (file, offset, length), not bytes.
///
/// ```
/// use haten2_mapreduce::{Block, Dfs};
///
/// let dfs = Dfs::new();
/// dfs.put("t", vec![10u64, 20, 30, 40]);
/// let block: Block<u64> = dfs.get_block("t").unwrap();
/// assert_eq!(block.slice(), &[10, 20, 30, 40]);
/// let tail = block.narrow(2..4);
/// assert_eq!(tail.slice(), &[30, 40]);
/// ```
pub struct Block<T> {
    data: Arc<Vec<T>>,
    range: std::ops::Range<usize>,
}

// Manual impl: cloning a block must not require `T: Clone` — it only
// bumps the `Arc`.
impl<T> Clone for Block<T> {
    fn clone(&self) -> Self {
        Block {
            data: Arc::clone(&self.data),
            range: self.range.clone(),
        }
    }
}

impl<T> Block<T> {
    /// A block covering all of `data`.
    pub fn whole(data: Arc<Vec<T>>) -> Self {
        let range = 0..data.len();
        Block { data, range }
    }

    /// The records this block covers.
    pub fn slice(&self) -> &[T] {
        &self.data[self.range.clone()]
    }

    /// Number of records in the block.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// A sub-block, `range` relative to this block's start. Shares the
    /// same underlying storage; panics if `range` exceeds this block.
    pub fn narrow(&self, range: std::ops::Range<usize>) -> Block<T> {
        assert!(
            range.end <= self.len(),
            "narrow {range:?} exceeds block of {} records",
            self.len()
        );
        Block {
            data: Arc::clone(&self.data),
            range: self.range.start + range.start..self.range.start + range.end,
        }
    }

    /// The shared storage, if this block covers it fully and is its last
    /// handle — the move-out path for a caller that wants the `Vec` back
    /// without a copy.
    pub fn try_unwrap(self) -> Result<Vec<T>, Block<T>> {
        if self.range != (0..self.data.len()) {
            return Err(self);
        }
        let range = self.range;
        Arc::try_unwrap(self.data).map_err(|data| Block { data, range })
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Block<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Block")
            .field("range", &self.range)
            .field("of", &self.data.len())
            .finish()
    }
}

/// A named, metered, in-memory dataset store.
///
/// ```
/// use haten2_mapreduce::Dfs;
///
/// let dfs = Dfs::new();
/// dfs.put("tensor", vec![(0u64, 1.5f64), (1, -2.0)]);
/// let back = dfs.get::<(u64, f64)>("tensor").unwrap();
/// assert_eq!(back.len(), 2);
/// // Reads are metered — the §III-B4 disk-access accounting.
/// assert_eq!(dfs.reads_of("tensor"), Some(1));
/// ```
#[derive(Default)]
pub struct Dfs {
    datasets: RwLock<HashMap<String, Stored>>,
    bytes_written: AtomicUsize,
    bytes_read: AtomicUsize,
}

impl Dfs {
    /// Empty store.
    pub fn new() -> Self {
        Dfs::default()
    }

    /// Store a dataset under `name`, replacing any previous contents.
    /// Returns the estimated size in bytes.
    ///
    /// Replace-while-read is well-defined: concurrent readers keep the
    /// `Arc` snapshot they fetched (the old contents stay alive until the
    /// last reader drops them), their bytes were metered at snapshot time
    /// against the old size, and the dataset's cumulative read count
    /// carries over to the replacement — a `put` can never erase §III-B4
    /// disk-access history.
    pub fn put<T>(&self, name: &str, records: Vec<T>) -> usize
    where
        T: EstimateSize + Send + Sync + 'static,
    {
        #[cfg(feature = "race-detect")]
        crate::race::ambient_write(name);
        let bytes: usize = records.iter().map(EstimateSize::est_bytes).sum();
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        let mut guard = self.datasets.write().expect("dfs lock poisoned");
        let prior_reads = guard
            .get(name)
            .map_or(0, |s| s.reads.load(Ordering::Relaxed));
        guard.insert(
            name.to_string(),
            Stored {
                data: Arc::new(records),
                bytes,
                reads: AtomicUsize::new(prior_reads),
            },
        );
        bytes
    }

    /// Store a dataset that is already shared, without copying it: the
    /// `Arc` itself becomes the stored contents. Metered exactly like
    /// [`Dfs::put`] (the write is charged at full estimated size — the
    /// simulated DFS still "writes" the data even though the host
    /// doesn't move a byte).
    pub fn put_shared<T>(&self, name: &str, records: Arc<Vec<T>>) -> usize
    where
        T: EstimateSize + Send + Sync + 'static,
    {
        #[cfg(feature = "race-detect")]
        crate::race::ambient_write(name);
        let bytes: usize = records.iter().map(EstimateSize::est_bytes).sum();
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        let mut guard = self.datasets.write().expect("dfs lock poisoned");
        let prior_reads = guard
            .get(name)
            .map_or(0, |s| s.reads.load(Ordering::Relaxed));
        guard.insert(
            name.to_string(),
            Stored {
                data: records,
                bytes,
                reads: AtomicUsize::new(prior_reads),
            },
        );
        bytes
    }

    /// One metered snapshot of a dataset, taken in a single map lookup
    /// under the store lock. The read is counted and its bytes metered
    /// only if the stored type matches `T` — a wrong-type probe is not a
    /// disk access. All read paths ([`Dfs::get`], [`Dfs::get_block`],
    /// [`Dfs::get_required`]) funnel through here so a concurrent
    /// [`Dfs::put`] replacing the dataset can neither tear the returned
    /// snapshot nor mis-size the byte accounting, no matter the entry
    /// point.
    fn snapshot<T>(&self, name: &str) -> Option<Arc<Vec<T>>>
    where
        T: Send + Sync + 'static,
    {
        #[cfg(feature = "race-detect")]
        crate::race::ambient_read(name);
        let (typed, snapshot_bytes) = {
            let guard = self.datasets.read().expect("dfs lock poisoned");
            let stored = guard.get(name)?;
            let typed = Arc::clone(&stored.data).downcast::<Vec<T>>().ok()?;
            stored.reads.fetch_add(1, Ordering::Relaxed);
            (typed, stored.bytes)
        };
        self.bytes_read.fetch_add(snapshot_bytes, Ordering::Relaxed);
        Some(typed)
    }

    /// Fetch a dataset by name. Returns `None` when missing or when the
    /// stored type differs from `T`. Each call counts as one full read of
    /// the dataset, metered at snapshot time (see [`Dfs::snapshot`]).
    pub fn get<T>(&self, name: &str) -> Option<Arc<Vec<T>>>
    where
        T: Send + Sync + 'static,
    {
        self.snapshot(name)
    }

    /// Fetch a dataset as a zero-copy [`Block`] covering all of it.
    /// Metering is identical to [`Dfs::get`]: one full read of the
    /// dataset, regardless of how the caller later narrows the block.
    pub fn get_block<T>(&self, name: &str) -> Option<Block<T>>
    where
        T: Send + Sync + 'static,
    {
        self.snapshot(name).map(Block::whole)
    }

    /// Fetch a dataset that must exist, with the typed error instead of
    /// `None`: [`crate::MrError::DatasetMissing`] names the reading job and
    /// the dataset, so recovery layers (retry, lineage) can react instead
    /// of panicking on an `unwrap`. A single metered lookup — there is no
    /// separate existence probe whose answer could go stale before the
    /// fetch.
    pub fn get_required<T>(&self, job: &str, name: &str) -> crate::Result<Arc<Vec<T>>>
    where
        T: Send + Sync + 'static,
    {
        self.snapshot(name)
            .ok_or_else(|| crate::MrError::DatasetMissing {
                job: job.to_string(),
                dataset: name.to_string(),
            })
    }

    /// Remove a dataset; returns true when it existed.
    pub fn delete(&self, name: &str) -> bool {
        #[cfg(feature = "race-detect")]
        crate::race::ambient_write(name);
        self.datasets
            .write()
            .expect("dfs lock poisoned")
            .remove(name)
            .is_some()
    }

    /// Whether a dataset exists.
    pub fn contains(&self, name: &str) -> bool {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .contains_key(name)
    }

    /// Names of all stored datasets (unordered).
    pub fn list(&self) -> Vec<String> {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Estimated stored size of a dataset in bytes.
    pub fn size_of(&self, name: &str) -> Option<usize> {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .get(name)
            .map(|s| s.bytes)
    }

    /// Number of times a dataset has been read.
    pub fn reads_of(&self, name: &str) -> Option<usize> {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .get(name)
            .map(|s| s.reads.load(Ordering::Relaxed))
    }

    /// Total bytes written since creation.
    pub fn total_bytes_written(&self) -> usize {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read since creation.
    pub fn total_bytes_read(&self) -> usize {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Dfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dfs")
            .field("datasets", &self.list())
            .field("bytes_written", &self.total_bytes_written())
            .field("bytes_read", &self.total_bytes_read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let dfs = Dfs::new();
        dfs.put("t", vec![(1u64, 2.0f64), (3, 4.0)]);
        let back = dfs.get::<(u64, f64)>("t").unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], (1, 2.0));
    }

    #[test]
    fn wrong_type_returns_none() {
        let dfs = Dfs::new();
        dfs.put("t", vec![1u64]);
        assert!(dfs.get::<f64>("t").is_none());
        assert!(dfs.get::<u64>("missing").is_none());
    }

    #[test]
    fn read_metering() {
        let dfs = Dfs::new();
        let bytes = dfs.put("t", vec![1u64, 2, 3]);
        assert_eq!(bytes, 24);
        assert_eq!(dfs.reads_of("t"), Some(0));
        dfs.get::<u64>("t").unwrap();
        dfs.get::<u64>("t").unwrap();
        assert_eq!(dfs.reads_of("t"), Some(2));
        assert_eq!(dfs.total_bytes_read(), 48);
        assert_eq!(dfs.total_bytes_written(), 24);
    }

    #[test]
    fn delete_and_list() {
        let dfs = Dfs::new();
        dfs.put("a", vec![1u64]);
        dfs.put("b", vec![2u64]);
        assert_eq!(dfs.list().len(), 2);
        assert!(dfs.delete("a"));
        assert!(!dfs.delete("a"));
        assert!(!dfs.contains("a"));
        assert!(dfs.contains("b"));
    }

    #[test]
    fn put_replaces() {
        let dfs = Dfs::new();
        dfs.put("t", vec![1u64]);
        dfs.put("t", vec![1u64, 2]);
        assert_eq!(dfs.get::<u64>("t").unwrap().len(), 2);
        assert_eq!(dfs.size_of("t"), Some(16));
    }

    #[test]
    fn replace_while_read_is_well_defined() {
        // Regression: a reader's snapshot survives replacement unchanged,
        // its bytes are metered against the snapshot (not the
        // replacement), and the cumulative read count carries over.
        let dfs = Dfs::new();
        dfs.put("t", vec![1u64, 2, 3]); // 24 bytes
        let snapshot = dfs.get::<u64>("t").unwrap();
        assert_eq!(dfs.total_bytes_read(), 24);
        assert_eq!(dfs.reads_of("t"), Some(1));

        // Replace mid-flight with a dataset of a different size.
        dfs.put("t", vec![9u64]); // 8 bytes
        assert_eq!(*snapshot, vec![1u64, 2, 3], "reader keeps its snapshot");
        assert_eq!(
            dfs.reads_of("t"),
            Some(1),
            "read history survives replacement"
        );
        // The pre-replacement read stays metered at the old size; a fresh
        // read meters the new size.
        dfs.get::<u64>("t").unwrap();
        assert_eq!(dfs.total_bytes_read(), 24 + 8);
        assert_eq!(dfs.reads_of("t"), Some(2));
    }

    #[test]
    fn concurrent_replace_and_read_accounting_is_consistent() {
        // Hammer get/put on one dataset: every metered read must account
        // either the old or the new size exactly — never a torn value.
        let dfs = std::sync::Arc::new(Dfs::new());
        dfs.put("t", vec![0u64; 4]); // 32 bytes
        let readers = 4;
        let rounds = 200;
        std::thread::scope(|s| {
            for _ in 0..readers {
                let dfs = std::sync::Arc::clone(&dfs);
                s.spawn(move || {
                    for _ in 0..rounds {
                        let snap = dfs.get::<u64>("t").unwrap();
                        assert!(snap.len() == 4 || snap.len() == 1);
                    }
                });
            }
            let writer = std::sync::Arc::clone(&dfs);
            s.spawn(move || {
                for i in 0..rounds {
                    if i % 2 == 0 {
                        writer.put("t", vec![0u64; 1]); // 8 bytes
                    } else {
                        writer.put("t", vec![0u64; 4]); // 32 bytes
                    }
                }
            });
        });
        // Total bytes read decomposes exactly into 8- and 32-byte reads.
        let total = dfs.total_bytes_read();
        let reads = dfs.reads_of("t").unwrap();
        assert_eq!(reads, readers * rounds);
        // total = 8a + 32b with a + b = reads  ⇒  solvable in nonneg ints.
        let min = 8 * reads;
        let max = 32 * reads;
        assert!(total >= min && total <= max && (total - min).is_multiple_of(24));
    }

    #[test]
    fn get_required_put_race_window_is_closed() {
        // Regression: `get_required` once risked a contains-then-fetch
        // shape, where a concurrent delete/put between the two lookups
        // could surface a stale answer (exists-but-missing, or a metered
        // read of the wrong generation). It now snapshots in a single
        // lookup, so under a put/delete storm every call either returns a
        // coherent generation or the typed DatasetMissing error — never a
        // panic or torn accounting.
        let dfs = std::sync::Arc::new(Dfs::new());
        let rounds = 400;
        std::thread::scope(|s| {
            for _ in 0..3 {
                let dfs = std::sync::Arc::clone(&dfs);
                s.spawn(move || {
                    for _ in 0..rounds {
                        match dfs.get_required::<u64>("job", "t") {
                            Ok(snap) => assert!(snap.len() == 2 || snap.len() == 5),
                            Err(crate::MrError::DatasetMissing { job, dataset }) => {
                                assert_eq!(job, "job");
                                assert_eq!(dataset, "t");
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                });
            }
            let writer = std::sync::Arc::clone(&dfs);
            s.spawn(move || {
                for i in 0..rounds {
                    match i % 3 {
                        0 => {
                            writer.put("t", vec![0u64; 2]);
                        }
                        1 => {
                            writer.delete("t");
                        }
                        _ => {
                            writer.put("t", vec![0u64; 5]);
                        }
                    }
                }
            });
        });
        // Every successful read metered either the 16- or the 40-byte
        // generation: total decomposes as 16a + 40b.
        let total = dfs.total_bytes_read();
        assert!(total.is_multiple_of(8), "torn byte accounting: {total}");
    }

    #[test]
    fn block_views_share_storage() {
        let dfs = Dfs::new();
        dfs.put("t", vec![10u64, 20, 30, 40]);
        let block = dfs.get_block::<u64>("t").unwrap();
        assert_eq!(block.len(), 4);
        assert!(!block.is_empty());
        assert_eq!(block.slice(), &[10, 20, 30, 40]);
        // One metered read regardless of later narrowing.
        assert_eq!(dfs.reads_of("t"), Some(1));
        assert_eq!(dfs.total_bytes_read(), 32);

        let mid = block.narrow(1..3);
        assert_eq!(mid.slice(), &[20, 30]);
        let tail = mid.narrow(1..2);
        assert_eq!(tail.slice(), &[30]);
        // Clones and narrows are refcount bumps on the same storage.
        let again = block.clone();
        assert_eq!(again.slice().as_ptr(), block.slice().as_ptr());
        assert_eq!(dfs.reads_of("t"), Some(1));

        // A narrowed block can't be unwrapped; the last whole one can.
        assert!(tail.try_unwrap().is_err());
        dfs.delete("t");
        drop((mid, again));
        assert_eq!(block.try_unwrap().unwrap(), vec![10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "narrow")]
    fn block_narrow_out_of_range_panics() {
        let block = Block::whole(Arc::new(vec![1u64, 2]));
        let _ = block.narrow(1..3);
    }

    #[test]
    fn put_shared_stores_without_copying() {
        let dfs = Dfs::new();
        let records = Arc::new(vec![1u64, 2, 3]);
        let ptr = records.as_ptr();
        let bytes = dfs.put_shared("t", Arc::clone(&records));
        assert_eq!(bytes, 24);
        assert_eq!(dfs.total_bytes_written(), 24);
        let back = dfs.get::<u64>("t").unwrap();
        assert_eq!(back.as_ptr(), ptr, "stored Arc is the caller's, not a copy");
        // Read history carries across a shared replacement, like put.
        dfs.put_shared("t", Arc::new(vec![9u64]));
        assert_eq!(dfs.reads_of("t"), Some(1));
    }
}
