//! Distributed-file-system stand-in with I/O metering and an optional
//! durable, out-of-core backend.
//!
//! HaTen2 stores the input tensor and the factor matrices on HDFS between
//! jobs; the key property the evaluation exercises is *how many times each
//! dataset is read* (HaTen2-DRI reads the tensor once per ALS step instead
//! of twice). `Dfs` stores named, type-erased datasets and counts reads and
//! writes so that saving is observable.
//!
//! Two backends share this surface:
//!
//! * **Memory** ([`DfsBackend::Memory`]) — the historical pure in-memory
//!   map. Fast, nothing survives the process.
//! * **Durable** ([`DfsBackend::Durable`]) — every `put` is written
//!   through to a `haten2-blockstore` [`BlockStore`] (append-only
//!   segments + checksummed manifest) *and* cached in memory. When the
//!   resident cache exceeds the configured memory budget, least-recently
//!   used datasets are **spilled**: their in-memory copy is dropped and
//!   later reads reload them from the store through the page cache. A
//!   restarted process reopens the same directory and finds every
//!   committed dataset again — the property the chaos harness's
//!   kill-and-reexec scenario asserts.
//!
//! Both backends enforce the same aggregate capacity: a `put` that would
//! push live bytes past `capacity_bytes` fails with the typed
//! [`crate::MrError::SpillCapacityExceeded`] on either backend, so budget
//! property tests can hold the two to identical behaviour.

use crate::persist::{decode_records, encode_records, Persist};
use crate::size::{slice_est_bytes, EstimateSize};
use haten2_blockstore::{BlockStore, Codec, StoreOptions};
use std::any::Any;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::RwLock;

/// Which storage backend a [`Dfs`] (and therefore a cluster) runs on.
#[derive(Debug, Clone, Default)]
pub enum DfsBackend {
    /// Pure in-memory datasets (the historical behaviour).
    #[default]
    Memory,
    /// Write-through durable storage with spill-to-disk under a memory
    /// budget; state survives process restarts.
    Durable(DurableConfig),
}

/// Configuration for the durable backend.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Directory holding the block store (segments + manifest).
    pub dir: PathBuf,
    /// Preferred per-block codec (falls back to raw per block when the
    /// encoding does not shrink).
    pub codec: Codec,
    /// Resident-cache budget in estimated bytes: when the sum of
    /// in-memory dataset copies exceeds this, LRU datasets are spilled
    /// (their resident copy dropped; the durable copy remains the source
    /// of truth). `None` keeps everything resident.
    pub memory_budget_bytes: Option<usize>,
    /// Segment rotation threshold for the underlying store.
    pub segment_rotate_bytes: u64,
}

impl DurableConfig {
    /// Durable backend rooted at `dir` with default codec and rotation,
    /// no memory budget (everything stays resident until configured
    /// otherwise).
    pub fn new(dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            dir: dir.into(),
            codec: Codec::ZeroRle,
            memory_budget_bytes: None,
            segment_rotate_bytes: haten2_blockstore::store::DEFAULT_SEGMENT_ROTATE_BYTES,
        }
    }

    /// Set the resident-cache budget.
    #[must_use]
    pub fn memory_budget(mut self, bytes: usize) -> DurableConfig {
        self.memory_budget_bytes = Some(bytes);
        self
    }

    /// Set the preferred codec.
    #[must_use]
    pub fn codec(mut self, codec: Codec) -> DurableConfig {
        self.codec = codec;
        self
    }
}

/// Spill/reload counters for the durable backend (all zero in memory
/// mode).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Resident copies dropped under memory pressure.
    pub spill_events: usize,
    /// Estimated bytes those drops released.
    pub spilled_bytes: usize,
    /// Reads served by reloading a spilled dataset from the store.
    pub reload_events: usize,
    /// Estimated bytes reloaded from the store.
    pub reloaded_bytes: usize,
    /// On-disk bytes shadowed by overwrites/deletes and not reclaimed
    /// (the store appends; nothing garbage-collects). Surfaced from
    /// [`haten2_blockstore::StoreStats::dead_stored_bytes`] so the spill
    /// benchmark can report a dead-byte ratio — observability only.
    pub dead_stored_bytes: u64,
}

/// Where a dataset's records currently live.
enum Payload {
    /// In memory (and, on the durable backend, also on disk).
    Resident(Arc<dyn Any + Send + Sync>),
    /// Durable backend only: the resident copy was dropped under memory
    /// pressure; the block store holds the bytes.
    Spilled,
}

/// Per-dataset bookkeeping.
struct Stored {
    payload: Payload,
    bytes: usize,
    reads: AtomicUsize,
    /// Logical access clock for LRU spill victim selection.
    last_access: AtomicU64,
}

/// A zero-copy view of a contiguous range of an immutable DFS dataset.
///
/// The underlying `Vec` is shared (`Arc`), never cloned: narrowing a
/// block, handing it to a map task, or keeping it across a concurrent
/// [`Dfs::put`] replacing the dataset all cost one reference count, not a
/// copy. This is the engine-side analogue of an HDFS block handle — a
/// reader holds (file, offset, length), not bytes. On the durable backend
/// the `Vec` behind a reloaded block is materialized from page-cache-backed
/// segment reads, so the handle semantics are identical across backends.
///
/// ```
/// use haten2_mapreduce::{Block, Dfs};
///
/// let dfs = Dfs::new();
/// dfs.put("t", vec![10u64, 20, 30, 40]).unwrap();
/// let block: Block<u64> = dfs.get_block("t").unwrap();
/// assert_eq!(block.slice(), &[10, 20, 30, 40]);
/// let tail = block.narrow(2..4);
/// assert_eq!(tail.slice(), &[30, 40]);
/// ```
pub struct Block<T> {
    data: Arc<Vec<T>>,
    range: std::ops::Range<usize>,
}

// Manual impl: cloning a block must not require `T: Clone` — it only
// bumps the `Arc`.
impl<T> Clone for Block<T> {
    fn clone(&self) -> Self {
        Block {
            data: Arc::clone(&self.data),
            range: self.range.clone(),
        }
    }
}

impl<T> Block<T> {
    /// A block covering all of `data`.
    pub fn whole(data: Arc<Vec<T>>) -> Self {
        let range = 0..data.len();
        Block { data, range }
    }

    /// The records this block covers.
    pub fn slice(&self) -> &[T] {
        &self.data[self.range.clone()]
    }

    /// Number of records in the block.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// A sub-block, `range` relative to this block's start. Shares the
    /// same underlying storage; panics if `range` exceeds this block.
    pub fn narrow(&self, range: std::ops::Range<usize>) -> Block<T> {
        assert!(
            range.end <= self.len(),
            "narrow {range:?} exceeds block of {} records",
            self.len()
        );
        Block {
            data: Arc::clone(&self.data),
            range: self.range.start + range.start..self.range.start + range.end,
        }
    }

    /// The shared storage, if this block covers it fully and is its last
    /// handle — the move-out path for a caller that wants the `Vec` back
    /// without a copy.
    pub fn try_unwrap(self) -> Result<Vec<T>, Block<T>> {
        if self.range != (0..self.data.len()) {
            return Err(self);
        }
        let range = self.range;
        Arc::try_unwrap(self.data).map_err(|data| Block { data, range })
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Block<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Block")
            .field("range", &self.range)
            .field("of", &self.data.len())
            .finish()
    }
}

/// Durable-backend state: the block store plus spill bookkeeping.
struct DurableState {
    store: BlockStore,
    memory_budget_bytes: Option<usize>,
    spill_events: AtomicUsize,
    spilled_bytes: AtomicUsize,
    reload_events: AtomicUsize,
    reloaded_bytes: AtomicUsize,
}

/// A named, metered dataset store over a [`DfsBackend`].
///
/// ```
/// use haten2_mapreduce::Dfs;
///
/// let dfs = Dfs::new();
/// dfs.put("tensor", vec![(0u64, 1.5f64), (1, -2.0)]).unwrap();
/// let back = dfs.get::<(u64, f64)>("tensor").unwrap();
/// assert_eq!(back.len(), 2);
/// // Reads are metered — the §III-B4 disk-access accounting.
/// assert_eq!(dfs.reads_of("tensor"), Some(1));
/// ```
#[derive(Default)]
pub struct Dfs {
    datasets: RwLock<HashMap<String, Stored>>,
    bytes_written: AtomicUsize,
    bytes_read: AtomicUsize,
    /// Estimated bytes of all *live* datasets (latest generation of each
    /// name). Unlike `bytes_written`, replacement subtracts the old size.
    live_bytes: AtomicUsize,
    /// Aggregate capacity across live datasets; a `put` pushing past it
    /// fails with [`crate::MrError::SpillCapacityExceeded`].
    capacity_bytes: Option<usize>,
    /// Logical clock stamped onto datasets at access time (LRU order).
    clock: AtomicU64,
    durable: Option<DurableState>,
}

impl Dfs {
    /// Empty in-memory store, no capacity bound.
    pub fn new() -> Self {
        Dfs::default()
    }

    /// In-memory store with an aggregate live-byte capacity.
    pub fn with_capacity(capacity_bytes: Option<usize>) -> Self {
        Dfs {
            capacity_bytes,
            ..Dfs::default()
        }
    }

    /// Open a durable store rooted at `config.dir`, replaying its
    /// manifest: every dataset committed by an earlier process is
    /// immediately visible (as a spilled entry that reloads on first
    /// read). Read counters start at zero after a reopen — the metering
    /// story is per-process, the data is not.
    pub fn durable(config: &DurableConfig, capacity_bytes: Option<usize>) -> crate::Result<Self> {
        let store = BlockStore::open(
            StoreOptions::new(&config.dir)
                .codec(config.codec)
                .segment_rotate_bytes(config.segment_rotate_bytes),
        )
        .map_err(|e| storage_error("(store)", "open", &e))?;
        let mut datasets = HashMap::new();
        let mut live = 0usize;
        for name in store.datasets() {
            if let Some(meta) = store.meta(&name) {
                let bytes = usize::try_from(meta.est_bytes).unwrap_or(usize::MAX);
                live += bytes;
                datasets.insert(
                    name,
                    Stored {
                        payload: Payload::Spilled,
                        bytes,
                        reads: AtomicUsize::new(0),
                        last_access: AtomicU64::new(0),
                    },
                );
            }
        }
        Ok(Dfs {
            datasets: RwLock::new(datasets),
            bytes_written: AtomicUsize::new(0),
            bytes_read: AtomicUsize::new(0),
            live_bytes: AtomicUsize::new(live),
            capacity_bytes,
            clock: AtomicU64::new(1),
            durable: Some(DurableState {
                store,
                memory_budget_bytes: config.memory_budget_bytes,
                spill_events: AtomicUsize::new(0),
                spilled_bytes: AtomicUsize::new(0),
                reload_events: AtomicUsize::new(0),
                reloaded_bytes: AtomicUsize::new(0),
            }),
        })
    }

    /// Construct from a backend description plus capacity, as a cluster
    /// does from its config.
    pub fn from_backend(
        backend: &DfsBackend,
        capacity_bytes: Option<usize>,
    ) -> crate::Result<Self> {
        match backend {
            DfsBackend::Memory => Ok(Dfs::with_capacity(capacity_bytes)),
            DfsBackend::Durable(cfg) => Dfs::durable(cfg, capacity_bytes),
        }
    }

    /// Whether this store runs on the durable backend.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Shared body of [`Dfs::put`] and [`Dfs::put_shared`]: capacity
    /// check, durable write-through, insert, accounting, spill.
    fn put_impl<T>(&self, name: &str, records: Arc<Vec<T>>) -> crate::Result<usize>
    where
        T: EstimateSize + Persist + Send + Sync + 'static,
    {
        #[cfg(feature = "race-detect")]
        crate::race::ambient_write(name);
        let bytes = slice_est_bytes(&records);
        let mut guard = self.datasets.write().expect("dfs lock poisoned");

        // Capacity is checked on live bytes *after* replacement: putting a
        // smaller generation over a large one always succeeds.
        let prior_bytes = guard.get(name).map_or(0, |s| s.bytes);
        let live_after = self.live_bytes.load(Ordering::Relaxed) - prior_bytes + bytes;
        if let Some(cap) = self.capacity_bytes {
            if live_after > cap {
                return Err(crate::MrError::SpillCapacityExceeded {
                    dataset: name.to_string(),
                    requested_bytes: bytes,
                    live_bytes: self.live_bytes.load(Ordering::Relaxed) - prior_bytes,
                    capacity_bytes: cap,
                });
            }
        }

        // Durable write-through: the store commits (segment fsync, then
        // manifest append) before the namespace switches generations, so a
        // crash mid-put leaves the previous generation intact.
        if let Some(d) = &self.durable {
            let raw = encode_records(records.as_slice());
            d.store
                .put(
                    name,
                    &T::type_tag(),
                    &raw,
                    records.len() as u64,
                    bytes as u64,
                )
                .map_err(|e| storage_error(name, "put", &e))?;
        }

        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        let prior_reads = guard
            .get(name)
            .map_or(0, |s| s.reads.load(Ordering::Relaxed));
        guard.insert(
            name.to_string(),
            Stored {
                payload: Payload::Resident(records),
                bytes,
                reads: AtomicUsize::new(prior_reads),
                last_access: AtomicU64::new(self.tick()),
            },
        );
        self.live_bytes.store(live_after, Ordering::Relaxed);
        self.enforce_budget(&mut guard, name);
        Ok(bytes)
    }

    /// Spill least-recently-used resident datasets until the resident set
    /// fits the durable memory budget. `keep` (the dataset just touched)
    /// is only spilled when nothing else is left to evict — a dataset
    /// larger than the whole budget cannot stay resident.
    fn enforce_budget(&self, guard: &mut HashMap<String, Stored>, keep: &str) {
        let Some(d) = &self.durable else { return };
        let Some(budget) = d.memory_budget_bytes else {
            return;
        };
        loop {
            let resident: usize = guard
                .values()
                .filter(|s| matches!(s.payload, Payload::Resident(_)))
                .map(|s| s.bytes)
                .sum();
            if resident <= budget {
                return;
            }
            let victim = guard
                .iter()
                .filter(|(_, s)| matches!(s.payload, Payload::Resident(_)) && s.bytes > 0)
                .filter(|(n, _)| n.as_str() != keep)
                .min_by_key(|(_, s)| s.last_access.load(Ordering::Relaxed))
                .map(|(n, _)| n.clone())
                .or_else(|| {
                    guard
                        .get(keep)
                        .filter(|s| matches!(s.payload, Payload::Resident(_)) && s.bytes > 0)
                        .map(|_| keep.to_string())
                });
            let Some(victim) = victim else { return };
            if let Some(s) = guard.get_mut(&victim) {
                s.payload = Payload::Spilled;
                d.spill_events.fetch_add(1, Ordering::Relaxed);
                d.spilled_bytes.fetch_add(s.bytes, Ordering::Relaxed);
            }
        }
    }

    /// Store a dataset under `name`, replacing any previous contents.
    /// Returns the estimated size in bytes.
    ///
    /// Replace-while-read is well-defined: concurrent readers keep the
    /// `Arc` snapshot they fetched (the old contents stay alive until the
    /// last reader drops them), their bytes were metered at snapshot time
    /// against the old size, and the dataset's cumulative read count
    /// carries over to the replacement — a `put` can never erase §III-B4
    /// disk-access history.
    ///
    /// Fails with [`crate::MrError::SpillCapacityExceeded`] when the put
    /// would push aggregate live bytes past the configured capacity
    /// (identically on both backends), and with
    /// [`crate::MrError::StorageFailed`] on durable-backend I/O errors.
    pub fn put<T>(&self, name: &str, records: Vec<T>) -> crate::Result<usize>
    where
        T: EstimateSize + Persist + Send + Sync + 'static,
    {
        self.put_impl(name, Arc::new(records))
    }

    /// Store a dataset that is already shared, without copying it: the
    /// `Arc` itself becomes the stored contents. Metered exactly like
    /// [`Dfs::put`] (the write is charged at full estimated size — the
    /// simulated DFS still "writes" the data even though the host
    /// doesn't move a byte; on the durable backend the bytes really are
    /// encoded and written through).
    pub fn put_shared<T>(&self, name: &str, records: Arc<Vec<T>>) -> crate::Result<usize>
    where
        T: EstimateSize + Persist + Send + Sync + 'static,
    {
        self.put_impl(name, records)
    }

    /// One metered snapshot of a dataset. The read is counted and its
    /// bytes metered only if the stored type matches `T` — a wrong-type
    /// probe is not a disk access. All read paths ([`Dfs::get`],
    /// [`Dfs::get_block`], [`Dfs::get_required`]) funnel through here so a
    /// concurrent [`Dfs::put`] replacing the dataset can neither tear the
    /// returned snapshot nor mis-size the byte accounting, no matter the
    /// entry point.
    ///
    /// On the durable backend a spilled dataset is reloaded from the
    /// block store (checksum-verified, decoded through [`Persist`], and
    /// re-cached as resident). `Ok(None)` means missing-or-wrong-type on
    /// both backends; `Err` carries durable I/O failures.
    fn snapshot<T>(&self, name: &str) -> crate::Result<Option<Arc<Vec<T>>>>
    where
        T: Persist + Send + Sync + 'static,
    {
        #[cfg(feature = "race-detect")]
        crate::race::ambient_read(name);
        // Fast path: resident entry under the read lock.
        {
            let guard = self.datasets.read().expect("dfs lock poisoned");
            let Some(stored) = guard.get(name) else {
                return Ok(None);
            };
            stored.last_access.store(self.tick(), Ordering::Relaxed);
            match &stored.payload {
                Payload::Resident(data) => {
                    let Ok(typed) = Arc::clone(data).downcast::<Vec<T>>() else {
                        return Ok(None);
                    };
                    stored.reads.fetch_add(1, Ordering::Relaxed);
                    let snapshot_bytes = stored.bytes;
                    drop(guard);
                    self.bytes_read.fetch_add(snapshot_bytes, Ordering::Relaxed);
                    return Ok(Some(typed));
                }
                Payload::Spilled => {}
            }
        }
        self.reload(name)
    }

    /// Slow path of [`Dfs::snapshot`]: reload a spilled dataset from the
    /// block store and re-cache it.
    fn reload<T>(&self, name: &str) -> crate::Result<Option<Arc<Vec<T>>>>
    where
        T: Persist + Send + Sync + 'static,
    {
        let Some(d) = &self.durable else {
            // A spilled entry can only exist on the durable backend.
            return Ok(None);
        };
        let Some(blob) = d
            .store
            .get(name)
            .map_err(|e| storage_error(name, "get", &e))?
        else {
            return Ok(None);
        };
        if blob.meta.type_tag != T::type_tag() {
            // Same semantics as a wrong-type downcast in memory mode.
            return Ok(None);
        }
        let records =
            decode_records::<T>(&blob.bytes).map_err(|detail| crate::MrError::StorageFailed {
                dataset: name.to_string(),
                op: "decode",
                detail,
            })?;
        let typed = Arc::new(records);
        let est = usize::try_from(blob.meta.est_bytes).unwrap_or(usize::MAX);
        d.reload_events.fetch_add(1, Ordering::Relaxed);
        d.reloaded_bytes.fetch_add(est, Ordering::Relaxed);

        let mut guard = self.datasets.write().expect("dfs lock poisoned");
        let metered = match guard.get_mut(name) {
            Some(stored) if matches!(stored.payload, Payload::Spilled) => {
                stored.payload =
                    Payload::Resident(Arc::clone(&typed) as Arc<dyn Any + Send + Sync>);
                stored.reads.fetch_add(1, Ordering::Relaxed);
                stored.last_access.store(self.tick(), Ordering::Relaxed);
                stored.bytes
            }
            Some(stored) => {
                // Another thread reloaded or replaced the entry while we
                // were off the lock; our decoded snapshot is still a
                // coherent generation — serve it and count the read.
                stored.reads.fetch_add(1, Ordering::Relaxed);
                est
            }
            // Deleted concurrently: the read began while the dataset was
            // live, so serving the fetched snapshot stays linearizable.
            None => est,
        };
        self.enforce_budget(&mut guard, name);
        drop(guard);
        self.bytes_read.fetch_add(metered, Ordering::Relaxed);
        Ok(Some(typed))
    }

    /// Fetch a dataset by name. Returns `None` when missing, when the
    /// stored type differs from `T`, or when a durable read fails (use
    /// [`Dfs::get_required`] to observe the typed error). Each call
    /// counts as one full read of the dataset, metered at snapshot time
    /// (see [`Dfs::snapshot`]).
    pub fn get<T>(&self, name: &str) -> Option<Arc<Vec<T>>>
    where
        T: Persist + Send + Sync + 'static,
    {
        self.snapshot(name).ok().flatten()
    }

    /// Fetch a dataset as a zero-copy [`Block`] covering all of it.
    /// Metering is identical to [`Dfs::get`]: one full read of the
    /// dataset, regardless of how the caller later narrows the block.
    pub fn get_block<T>(&self, name: &str) -> Option<Block<T>>
    where
        T: Persist + Send + Sync + 'static,
    {
        self.get(name).map(Block::whole)
    }

    /// Fetch a dataset that must exist, with the typed error instead of
    /// `None`: [`crate::MrError::DatasetMissing`] names the reading job and
    /// the dataset, so recovery layers (retry, lineage) can react instead
    /// of panicking on an `unwrap`; durable I/O failures surface as
    /// [`crate::MrError::StorageFailed`]. A single metered lookup — there
    /// is no separate existence probe whose answer could go stale before
    /// the fetch.
    pub fn get_required<T>(&self, job: &str, name: &str) -> crate::Result<Arc<Vec<T>>>
    where
        T: Persist + Send + Sync + 'static,
    {
        self.snapshot(name)?
            .ok_or_else(|| crate::MrError::DatasetMissing {
                job: job.to_string(),
                dataset: name.to_string(),
            })
    }

    /// Remove a dataset; returns true when it existed. On the durable
    /// backend the deletion is committed to the manifest, so it also
    /// survives a restart.
    pub fn delete(&self, name: &str) -> crate::Result<bool> {
        #[cfg(feature = "race-detect")]
        crate::race::ambient_write(name);
        let mut guard = self.datasets.write().expect("dfs lock poisoned");
        let Some(stored) = guard.remove(name) else {
            return Ok(false);
        };
        self.live_bytes.fetch_sub(stored.bytes, Ordering::Relaxed);
        if let Some(d) = &self.durable {
            d.store
                .delete(name)
                .map_err(|e| storage_error(name, "delete", &e))?;
        }
        Ok(true)
    }

    /// Whether a dataset exists.
    pub fn contains(&self, name: &str) -> bool {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .contains_key(name)
    }

    /// Names of all stored datasets (unordered).
    pub fn list(&self) -> Vec<String> {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Estimated stored size of a dataset in bytes.
    pub fn size_of(&self, name: &str) -> Option<usize> {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .get(name)
            .map(|s| s.bytes)
    }

    /// Number of times a dataset has been read (this process; reopening a
    /// durable store starts the count fresh).
    pub fn reads_of(&self, name: &str) -> Option<usize> {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .get(name)
            .map(|s| s.reads.load(Ordering::Relaxed))
    }

    /// Total bytes written since creation (cumulative across
    /// replacements; see [`Dfs::live_bytes`] for the current footprint).
    pub fn total_bytes_written(&self) -> usize {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read since creation.
    pub fn total_bytes_read(&self) -> usize {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Estimated bytes of all *live* datasets — the current storage
    /// footprint. Unlike [`Dfs::total_bytes_written`], replacing a
    /// dataset subtracts the displaced generation, so this is the gauge
    /// capacity budgets and allocation-proxy benchmarks should read.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Estimated bytes of datasets currently resident in memory. Equal to
    /// [`Dfs::live_bytes`] on the memory backend; on the durable backend
    /// spilled datasets are excluded.
    pub fn resident_bytes(&self) -> usize {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .values()
            .filter(|s| matches!(s.payload, Payload::Resident(_)))
            .map(|s| s.bytes)
            .sum()
    }

    /// Spill/reload counters (all zero on the memory backend).
    pub fn spill_stats(&self) -> SpillStats {
        match &self.durable {
            None => SpillStats::default(),
            Some(d) => SpillStats {
                spill_events: d.spill_events.load(Ordering::Relaxed),
                spilled_bytes: d.spilled_bytes.load(Ordering::Relaxed),
                reload_events: d.reload_events.load(Ordering::Relaxed),
                reloaded_bytes: d.reloaded_bytes.load(Ordering::Relaxed),
                dead_stored_bytes: d.store.stats().dead_stored_bytes,
            },
        }
    }

    /// Durable-store counters (raw/stored byte volumes, checksums,
    /// dead-byte volume); `None` on the memory backend.
    pub fn store_stats(&self) -> Option<haten2_blockstore::StoreStats> {
        self.durable.as_ref().map(|d| d.store.stats())
    }

    /// Per-dataset durable read/write byte counters; `None` on the
    /// memory backend. This is the metering `ANALYSIS.md` cross-checks
    /// against the Ballard-style I/O floor.
    pub fn durable_dataset_io(
        &self,
    ) -> Option<std::collections::BTreeMap<String, haten2_blockstore::DatasetIo>> {
        self.durable.as_ref().map(|d| d.store.dataset_io())
    }
}

fn storage_error(dataset: &str, op: &'static str, e: &std::io::Error) -> crate::MrError {
    crate::MrError::StorageFailed {
        dataset: dataset.to_string(),
        op,
        detail: e.to_string(),
    }
}

impl std::fmt::Debug for Dfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dfs")
            .field("datasets", &self.list())
            .field("durable", &self.is_durable())
            .field("bytes_written", &self.total_bytes_written())
            .field("bytes_read", &self.total_bytes_read())
            .field("live_bytes", &self.live_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("haten2-dfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let dfs = Dfs::new();
        dfs.put("t", vec![(1u64, 2.0f64), (3, 4.0)]).unwrap();
        let back = dfs.get::<(u64, f64)>("t").unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], (1, 2.0));
    }

    #[test]
    fn wrong_type_returns_none() {
        let dfs = Dfs::new();
        dfs.put("t", vec![1u64]).unwrap();
        assert!(dfs.get::<f64>("t").is_none());
        assert!(dfs.get::<u64>("missing").is_none());
    }

    #[test]
    fn read_metering() {
        let dfs = Dfs::new();
        let bytes = dfs.put("t", vec![1u64, 2, 3]).unwrap();
        assert_eq!(bytes, 24);
        assert_eq!(dfs.reads_of("t"), Some(0));
        dfs.get::<u64>("t").unwrap();
        dfs.get::<u64>("t").unwrap();
        assert_eq!(dfs.reads_of("t"), Some(2));
        assert_eq!(dfs.total_bytes_read(), 48);
        assert_eq!(dfs.total_bytes_written(), 24);
    }

    #[test]
    fn delete_and_list() {
        let dfs = Dfs::new();
        dfs.put("a", vec![1u64]).unwrap();
        dfs.put("b", vec![2u64]).unwrap();
        assert_eq!(dfs.list().len(), 2);
        assert!(dfs.delete("a").unwrap());
        assert!(!dfs.delete("a").unwrap());
        assert!(!dfs.contains("a"));
        assert!(dfs.contains("b"));
    }

    #[test]
    fn put_replaces() {
        let dfs = Dfs::new();
        dfs.put("t", vec![1u64]).unwrap();
        dfs.put("t", vec![1u64, 2]).unwrap();
        assert_eq!(dfs.get::<u64>("t").unwrap().len(), 2);
        assert_eq!(dfs.size_of("t"), Some(16));
    }

    #[test]
    fn live_bytes_tracks_replacement_and_delete() {
        // Satellite regression: `bytes_written` is cumulative, so putting
        // over an existing name used to leave no gauge of the *current*
        // footprint. `live_bytes` subtracts displaced generations.
        let dfs = Dfs::new();
        dfs.put("t", vec![0u64; 100]).unwrap(); // 800 B
        assert_eq!(dfs.live_bytes(), 800);
        dfs.put("t", vec![0u64; 10]).unwrap(); // replace: 80 B live
        assert_eq!(dfs.live_bytes(), 80);
        assert_eq!(dfs.total_bytes_written(), 880, "written stays cumulative");
        dfs.put("u", vec![0u64; 5]).unwrap();
        assert_eq!(dfs.live_bytes(), 120);
        dfs.delete("t").unwrap();
        assert_eq!(dfs.live_bytes(), 40);
        dfs.delete("u").unwrap();
        assert_eq!(dfs.live_bytes(), 0);
        // Memory backend: resident == live.
        dfs.put("v", vec![0u64; 3]).unwrap();
        assert_eq!(dfs.resident_bytes(), dfs.live_bytes());
    }

    #[test]
    fn capacity_is_enforced_on_live_bytes() {
        let dfs = Dfs::with_capacity(Some(100));
        dfs.put("a", vec![0u64; 10]).unwrap(); // 80 B
        let err = dfs.put("b", vec![0u64; 5]).unwrap_err(); // +40 > 100
        match err {
            crate::MrError::SpillCapacityExceeded {
                dataset,
                requested_bytes,
                live_bytes,
                capacity_bytes,
            } => {
                assert_eq!(dataset, "b");
                assert_eq!(requested_bytes, 40);
                assert_eq!(live_bytes, 80);
                assert_eq!(capacity_bytes, 100);
            }
            other => panic!("wrong error: {other:?}"),
        }
        // Replacement frees the displaced generation first: shrinking a
        // dataset under capacity pressure always succeeds.
        dfs.put("a", vec![0u64; 2]).unwrap();
        dfs.put("b", vec![0u64; 5]).unwrap();
        assert_eq!(dfs.live_bytes(), 56);
    }

    #[test]
    fn replace_while_read_is_well_defined() {
        // Regression: a reader's snapshot survives replacement unchanged,
        // its bytes are metered against the snapshot (not the
        // replacement), and the cumulative read count carries over.
        let dfs = Dfs::new();
        dfs.put("t", vec![1u64, 2, 3]).unwrap(); // 24 bytes
        let snapshot = dfs.get::<u64>("t").unwrap();
        assert_eq!(dfs.total_bytes_read(), 24);
        assert_eq!(dfs.reads_of("t"), Some(1));

        // Replace mid-flight with a dataset of a different size.
        dfs.put("t", vec![9u64]).unwrap(); // 8 bytes
        assert_eq!(*snapshot, vec![1u64, 2, 3], "reader keeps its snapshot");
        assert_eq!(
            dfs.reads_of("t"),
            Some(1),
            "read history survives replacement"
        );
        // The pre-replacement read stays metered at the old size; a fresh
        // read meters the new size.
        dfs.get::<u64>("t").unwrap();
        assert_eq!(dfs.total_bytes_read(), 24 + 8);
        assert_eq!(dfs.reads_of("t"), Some(2));
    }

    #[test]
    fn concurrent_replace_and_read_accounting_is_consistent() {
        // Hammer get/put on one dataset: every metered read must account
        // either the old or the new size exactly — never a torn value.
        let dfs = std::sync::Arc::new(Dfs::new());
        dfs.put("t", vec![0u64; 4]).unwrap(); // 32 bytes
        let readers = 4;
        let rounds = 200;
        std::thread::scope(|s| {
            for _ in 0..readers {
                let dfs = std::sync::Arc::clone(&dfs);
                s.spawn(move || {
                    for _ in 0..rounds {
                        let snap = dfs.get::<u64>("t").unwrap();
                        assert!(snap.len() == 4 || snap.len() == 1);
                    }
                });
            }
            let writer = std::sync::Arc::clone(&dfs);
            s.spawn(move || {
                for i in 0..rounds {
                    if i % 2 == 0 {
                        writer.put("t", vec![0u64; 1]).unwrap(); // 8 bytes
                    } else {
                        writer.put("t", vec![0u64; 4]).unwrap(); // 32 bytes
                    }
                }
            });
        });
        // Total bytes read decomposes exactly into 8- and 32-byte reads.
        let total = dfs.total_bytes_read();
        let reads = dfs.reads_of("t").unwrap();
        assert_eq!(reads, readers * rounds);
        // total = 8a + 32b with a + b = reads  ⇒  solvable in nonneg ints.
        let min = 8 * reads;
        let max = 32 * reads;
        assert!(total >= min && total <= max && (total - min).is_multiple_of(24));
        // Live bytes settled on exactly the last generation written.
        assert!(dfs.live_bytes() == 8 || dfs.live_bytes() == 32);
    }

    #[test]
    fn get_required_put_race_window_is_closed() {
        // Regression: `get_required` once risked a contains-then-fetch
        // shape, where a concurrent delete/put between the two lookups
        // could surface a stale answer (exists-but-missing, or a metered
        // read of the wrong generation). It now snapshots in a single
        // lookup, so under a put/delete storm every call either returns a
        // coherent generation or the typed DatasetMissing error — never a
        // panic or torn accounting.
        let dfs = std::sync::Arc::new(Dfs::new());
        let rounds = 400;
        std::thread::scope(|s| {
            for _ in 0..3 {
                let dfs = std::sync::Arc::clone(&dfs);
                s.spawn(move || {
                    for _ in 0..rounds {
                        match dfs.get_required::<u64>("job", "t") {
                            Ok(snap) => assert!(snap.len() == 2 || snap.len() == 5),
                            Err(crate::MrError::DatasetMissing { job, dataset }) => {
                                assert_eq!(job, "job");
                                assert_eq!(dataset, "t");
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                });
            }
            let writer = std::sync::Arc::clone(&dfs);
            s.spawn(move || {
                for i in 0..rounds {
                    match i % 3 {
                        0 => {
                            writer.put("t", vec![0u64; 2]).unwrap();
                        }
                        1 => {
                            writer.delete("t").unwrap();
                        }
                        _ => {
                            writer.put("t", vec![0u64; 5]).unwrap();
                        }
                    }
                }
            });
        });
        // Every successful read metered either the 16- or the 40-byte
        // generation: total decomposes as 16a + 40b.
        let total = dfs.total_bytes_read();
        assert!(total.is_multiple_of(8), "torn byte accounting: {total}");
    }

    #[test]
    fn block_views_share_storage() {
        let dfs = Dfs::new();
        dfs.put("t", vec![10u64, 20, 30, 40]).unwrap();
        let block = dfs.get_block::<u64>("t").unwrap();
        assert_eq!(block.len(), 4);
        assert!(!block.is_empty());
        assert_eq!(block.slice(), &[10, 20, 30, 40]);
        // One metered read regardless of later narrowing.
        assert_eq!(dfs.reads_of("t"), Some(1));
        assert_eq!(dfs.total_bytes_read(), 32);

        let mid = block.narrow(1..3);
        assert_eq!(mid.slice(), &[20, 30]);
        let tail = mid.narrow(1..2);
        assert_eq!(tail.slice(), &[30]);
        // Clones and narrows are refcount bumps on the same storage.
        let again = block.clone();
        assert_eq!(again.slice().as_ptr(), block.slice().as_ptr());
        assert_eq!(dfs.reads_of("t"), Some(1));

        // A narrowed block can't be unwrapped; the last whole one can.
        assert!(tail.try_unwrap().is_err());
        dfs.delete("t").unwrap();
        drop((mid, again));
        assert_eq!(block.try_unwrap().unwrap(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn try_unwrap_edge_cases() {
        // Satellite: narrow(0..len) *is* full coverage — unwrap succeeds
        // once the parent handle (which `narrow` does not consume) drops.
        let block = Block::whole(Arc::new(vec![1u64, 2, 3]));
        let full = block.narrow(0..3);
        let full = full.try_unwrap().unwrap_err(); // parent still alive
        drop(block);
        assert_eq!(full.try_unwrap().unwrap(), vec![1, 2, 3]);

        // Chained full-coverage narrows stay unwrappable.
        let block = Block::whole(Arc::new(vec![4u64, 5]));
        let full = block.narrow(0..2).narrow(0..2);
        drop(block);
        assert_eq!(full.try_unwrap().unwrap(), vec![4, 5]);

        // Empty storage: the whole block of an empty Vec unwraps.
        let empty = Block::whole(Arc::new(Vec::<u64>::new()));
        assert!(empty.is_empty());
        assert_eq!(empty.try_unwrap().unwrap(), Vec::<u64>::new());

        // An empty *view* of non-empty storage must refuse: handing out
        // the storage would leak records the view never covered.
        let block = Block::whole(Arc::new(vec![1u64, 2]));
        let empty_view = block.narrow(1..1);
        let back = empty_view.try_unwrap().unwrap_err();
        assert_eq!(back.len(), 0);
        drop(block);

        // Unwrap under a concurrent clone: refused, block handed back
        // intact; once the clone drops, unwrap succeeds.
        let block = Block::whole(Arc::new(vec![7u64, 8]));
        let clone = block.clone();
        let block = block.try_unwrap().unwrap_err();
        assert_eq!(block.slice(), &[7, 8]);
        drop(clone);
        assert_eq!(block.try_unwrap().unwrap(), vec![7, 8]);

        // A narrowed clone alive elsewhere also blocks the unwrap, and
        // the returned handle still works.
        let block = Block::whole(Arc::new(vec![9u64, 10, 11]));
        let narrow = block.narrow(0..1);
        let block = block.try_unwrap().unwrap_err();
        assert_eq!(narrow.slice(), &[9]);
        drop(narrow);
        assert_eq!(block.try_unwrap().unwrap(), vec![9, 10, 11]);
    }

    #[test]
    #[should_panic(expected = "narrow")]
    fn block_narrow_out_of_range_panics() {
        let block = Block::whole(Arc::new(vec![1u64, 2]));
        let _ = block.narrow(1..3);
    }

    #[test]
    fn put_shared_stores_without_copying() {
        let dfs = Dfs::new();
        let records = Arc::new(vec![1u64, 2, 3]);
        let ptr = records.as_ptr();
        let bytes = dfs.put_shared("t", Arc::clone(&records)).unwrap();
        assert_eq!(bytes, 24);
        assert_eq!(dfs.total_bytes_written(), 24);
        let back = dfs.get::<u64>("t").unwrap();
        assert_eq!(back.as_ptr(), ptr, "stored Arc is the caller's, not a copy");
        // Read history carries across a shared replacement, like put.
        dfs.put_shared("t", Arc::new(vec![9u64])).unwrap();
        assert_eq!(dfs.reads_of("t"), Some(1));
    }

    // ---- durable backend ----

    #[test]
    fn durable_roundtrip_and_restart() {
        let dir = tmpdir("restart");
        let cfg = DurableConfig::new(&dir);
        let records = vec![((1u64, 2u64, 3u64, 0u64), 1.5f64), ((4, 5, 6, 0), -2.0)];
        {
            let dfs = Dfs::durable(&cfg, None).unwrap();
            assert!(dfs.is_durable());
            dfs.put("tensor", records.clone()).unwrap();
            assert_eq!(
                *dfs.get::<((u64, u64, u64, u64), f64)>("tensor").unwrap(),
                records
            );
        }
        // A fresh process (simulated by a fresh Dfs over the same dir)
        // sees the dataset and reloads it bit-identically.
        let dfs = Dfs::durable(&cfg, None).unwrap();
        assert!(dfs.contains("tensor"));
        assert_eq!(dfs.size_of("tensor"), Some(80));
        assert_eq!(dfs.live_bytes(), 80);
        assert_eq!(
            dfs.reads_of("tensor"),
            Some(0),
            "read counters are per-process"
        );
        let back = dfs.get::<((u64, u64, u64, u64), f64)>("tensor").unwrap();
        assert_eq!(*back, records);
        // Wrong-type probe after restart behaves like a failed downcast.
        assert!(dfs.get::<u64>("tensor").is_none());
        let stats = dfs.spill_stats();
        assert_eq!(stats.reload_events, 1);
        assert_eq!(stats.reloaded_bytes, 80);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_delete_survives_restart() {
        let dir = tmpdir("delete");
        let cfg = DurableConfig::new(&dir);
        {
            let dfs = Dfs::durable(&cfg, None).unwrap();
            dfs.put("a", vec![1u64]).unwrap();
            dfs.put("b", vec![2u64]).unwrap();
            dfs.delete("a").unwrap();
        }
        let dfs = Dfs::durable(&cfg, None).unwrap();
        assert!(!dfs.contains("a"));
        assert_eq!(*dfs.get::<u64>("b").unwrap(), vec![2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_under_memory_budget_and_reload() {
        let dir = tmpdir("spill");
        // Budget fits one 800-byte dataset but not two.
        let cfg = DurableConfig::new(&dir).memory_budget(1000);
        let dfs = Dfs::durable(&cfg, None).unwrap();
        dfs.put("a", vec![0u64; 100]).unwrap(); // 800 B, resident
        assert_eq!(dfs.resident_bytes(), 800);
        dfs.put("b", vec![1u64; 100]).unwrap(); // spills a (LRU)
        assert_eq!(dfs.resident_bytes(), 800);
        assert_eq!(dfs.live_bytes(), 1600, "live counts spilled data too");
        let stats = dfs.spill_stats();
        assert_eq!(stats.spill_events, 1);
        assert_eq!(stats.spilled_bytes, 800);

        // Reading the spilled dataset reloads it (and spills b, now LRU).
        let a = dfs.get::<u64>("a").unwrap();
        assert_eq!(*a, vec![0u64; 100]);
        let stats = dfs.spill_stats();
        assert_eq!(stats.reload_events, 1);
        assert_eq!(stats.reloaded_bytes, 800);
        assert_eq!(stats.spill_events, 2);
        assert_eq!(dfs.resident_bytes(), 800);

        // Reads are metered identically whether served resident or
        // reloaded: two more reads, bytes at est size each.
        let before = dfs.total_bytes_read();
        dfs.get::<u64>("a").unwrap();
        dfs.get::<u64>("b").unwrap();
        assert_eq!(dfs.total_bytes_read(), before + 1600);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_dataset_spills_itself() {
        let dir = tmpdir("oversize");
        let cfg = DurableConfig::new(&dir).memory_budget(100);
        let dfs = Dfs::durable(&cfg, None).unwrap();
        // 800 B > 100 B budget: written through, immediately spilled.
        dfs.put("big", vec![0u64; 100]).unwrap();
        assert_eq!(dfs.resident_bytes(), 0);
        assert_eq!(dfs.live_bytes(), 800);
        // Still perfectly readable (reload each time).
        assert_eq!(dfs.get::<u64>("big").unwrap().len(), 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn capacity_error_is_identical_across_backends() {
        let dir = tmpdir("cap");
        let mem = Dfs::with_capacity(Some(100));
        let dur = Dfs::durable(&DurableConfig::new(&dir), Some(100)).unwrap();
        for dfs in [&mem, &dur] {
            dfs.put("a", vec![0u64; 10]).unwrap();
            let err = dfs.put("b", vec![0u64; 5]).unwrap_err();
            assert_eq!(
                err,
                crate::MrError::SpillCapacityExceeded {
                    dataset: "b".to_string(),
                    requested_bytes: 40,
                    live_bytes: 80,
                    capacity_bytes: 100,
                }
            );
        }
        // The rejected durable put must not have leaked into the store.
        drop(dur);
        let dur = Dfs::durable(&DurableConfig::new(&dir), Some(100)).unwrap();
        assert!(dur.contains("a"));
        assert!(!dur.contains("b"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_per_dataset_io_is_metered() {
        let dir = tmpdir("io");
        let cfg = DurableConfig::new(&dir).memory_budget(0); // everything spills
        let dfs = Dfs::durable(&cfg, None).unwrap();
        dfs.put("t", vec![(0u64, 1.0f64); 50]).unwrap();
        dfs.get::<(u64, f64)>("t").unwrap();
        dfs.get::<(u64, f64)>("t").unwrap();
        let io = dfs.durable_dataset_io().unwrap();
        assert_eq!(io["t"].writes, 1);
        assert_eq!(
            io["t"].reads, 2,
            "both reads hit the store under a zero budget"
        );
        assert_eq!(io["t"].bytes_written, 800);
        assert_eq!(io["t"].bytes_read, 1600);
        let stats = dfs.store_stats().unwrap();
        assert_eq!(stats.puts, 1);
        assert_eq!(stats.gets, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_backend_selects_mode() {
        let dir = tmpdir("backend");
        let mem = Dfs::from_backend(&DfsBackend::Memory, None).unwrap();
        assert!(!mem.is_durable());
        let dur = Dfs::from_backend(&DfsBackend::Durable(DurableConfig::new(&dir)), None).unwrap();
        assert!(dur.is_durable());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
