//! In-memory distributed-file-system stand-in with I/O metering.
//!
//! HaTen2 stores the input tensor and the factor matrices on HDFS between
//! jobs; the key property the evaluation exercises is *how many times each
//! dataset is read* (HaTen2-DRI reads the tensor once per ALS step instead
//! of twice). `Dfs` stores named, type-erased datasets and counts reads and
//! writes so that saving is observable.

use crate::size::EstimateSize;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::RwLock;

/// Per-dataset bookkeeping.
struct Stored {
    data: Arc<dyn Any + Send + Sync>,
    bytes: usize,
    reads: AtomicUsize,
}

/// A named, metered, in-memory dataset store.
///
/// ```
/// use haten2_mapreduce::Dfs;
///
/// let dfs = Dfs::new();
/// dfs.put("tensor", vec![(0u64, 1.5f64), (1, -2.0)]);
/// let back = dfs.get::<(u64, f64)>("tensor").unwrap();
/// assert_eq!(back.len(), 2);
/// // Reads are metered — the §III-B4 disk-access accounting.
/// assert_eq!(dfs.reads_of("tensor"), Some(1));
/// ```
#[derive(Default)]
pub struct Dfs {
    datasets: RwLock<HashMap<String, Stored>>,
    bytes_written: AtomicUsize,
    bytes_read: AtomicUsize,
}

impl Dfs {
    /// Empty store.
    pub fn new() -> Self {
        Dfs::default()
    }

    /// Store a dataset under `name`, replacing any previous contents.
    /// Returns the estimated size in bytes.
    ///
    /// Replace-while-read is well-defined: concurrent readers keep the
    /// `Arc` snapshot they fetched (the old contents stay alive until the
    /// last reader drops them), their bytes were metered at snapshot time
    /// against the old size, and the dataset's cumulative read count
    /// carries over to the replacement — a `put` can never erase §III-B4
    /// disk-access history.
    pub fn put<T>(&self, name: &str, records: Vec<T>) -> usize
    where
        T: EstimateSize + Send + Sync + 'static,
    {
        let bytes: usize = records.iter().map(EstimateSize::est_bytes).sum();
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        let mut guard = self.datasets.write().expect("dfs lock poisoned");
        let prior_reads = guard
            .get(name)
            .map_or(0, |s| s.reads.load(Ordering::Relaxed));
        guard.insert(
            name.to_string(),
            Stored {
                data: Arc::new(records),
                bytes,
                reads: AtomicUsize::new(prior_reads),
            },
        );
        bytes
    }

    /// Fetch a dataset by name. Returns `None` when missing or when the
    /// stored type differs from `T`. Each call counts as one full read of
    /// the dataset, metered at snapshot time: the `(contents, size)` pair
    /// is captured atomically under the store lock, so a concurrent
    /// [`Dfs::put`] replacing the dataset can neither tear the returned
    /// snapshot nor mis-size the byte accounting.
    pub fn get<T>(&self, name: &str) -> Option<Arc<Vec<T>>>
    where
        T: Send + Sync + 'static,
    {
        let (typed, snapshot_bytes) = {
            let guard = self.datasets.read().expect("dfs lock poisoned");
            let stored = guard.get(name)?;
            let typed = Arc::clone(&stored.data).downcast::<Vec<T>>().ok()?;
            stored.reads.fetch_add(1, Ordering::Relaxed);
            (typed, stored.bytes)
        };
        self.bytes_read.fetch_add(snapshot_bytes, Ordering::Relaxed);
        Some(typed)
    }

    /// Fetch a dataset that must exist, with the typed error instead of
    /// `None`: [`crate::MrError::DatasetMissing`] names the reading job and
    /// the dataset, so recovery layers (retry, lineage) can react instead
    /// of panicking on an `unwrap`.
    pub fn get_required<T>(&self, job: &str, name: &str) -> crate::Result<Arc<Vec<T>>>
    where
        T: Send + Sync + 'static,
    {
        self.get(name)
            .ok_or_else(|| crate::MrError::DatasetMissing {
                job: job.to_string(),
                dataset: name.to_string(),
            })
    }

    /// Remove a dataset; returns true when it existed.
    pub fn delete(&self, name: &str) -> bool {
        self.datasets
            .write()
            .expect("dfs lock poisoned")
            .remove(name)
            .is_some()
    }

    /// Whether a dataset exists.
    pub fn contains(&self, name: &str) -> bool {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .contains_key(name)
    }

    /// Names of all stored datasets (unordered).
    pub fn list(&self) -> Vec<String> {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Estimated stored size of a dataset in bytes.
    pub fn size_of(&self, name: &str) -> Option<usize> {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .get(name)
            .map(|s| s.bytes)
    }

    /// Number of times a dataset has been read.
    pub fn reads_of(&self, name: &str) -> Option<usize> {
        self.datasets
            .read()
            .expect("dfs lock poisoned")
            .get(name)
            .map(|s| s.reads.load(Ordering::Relaxed))
    }

    /// Total bytes written since creation.
    pub fn total_bytes_written(&self) -> usize {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read since creation.
    pub fn total_bytes_read(&self) -> usize {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Dfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dfs")
            .field("datasets", &self.list())
            .field("bytes_written", &self.total_bytes_written())
            .field("bytes_read", &self.total_bytes_read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let dfs = Dfs::new();
        dfs.put("t", vec![(1u64, 2.0f64), (3, 4.0)]);
        let back = dfs.get::<(u64, f64)>("t").unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], (1, 2.0));
    }

    #[test]
    fn wrong_type_returns_none() {
        let dfs = Dfs::new();
        dfs.put("t", vec![1u64]);
        assert!(dfs.get::<f64>("t").is_none());
        assert!(dfs.get::<u64>("missing").is_none());
    }

    #[test]
    fn read_metering() {
        let dfs = Dfs::new();
        let bytes = dfs.put("t", vec![1u64, 2, 3]);
        assert_eq!(bytes, 24);
        assert_eq!(dfs.reads_of("t"), Some(0));
        dfs.get::<u64>("t").unwrap();
        dfs.get::<u64>("t").unwrap();
        assert_eq!(dfs.reads_of("t"), Some(2));
        assert_eq!(dfs.total_bytes_read(), 48);
        assert_eq!(dfs.total_bytes_written(), 24);
    }

    #[test]
    fn delete_and_list() {
        let dfs = Dfs::new();
        dfs.put("a", vec![1u64]);
        dfs.put("b", vec![2u64]);
        assert_eq!(dfs.list().len(), 2);
        assert!(dfs.delete("a"));
        assert!(!dfs.delete("a"));
        assert!(!dfs.contains("a"));
        assert!(dfs.contains("b"));
    }

    #[test]
    fn put_replaces() {
        let dfs = Dfs::new();
        dfs.put("t", vec![1u64]);
        dfs.put("t", vec![1u64, 2]);
        assert_eq!(dfs.get::<u64>("t").unwrap().len(), 2);
        assert_eq!(dfs.size_of("t"), Some(16));
    }

    #[test]
    fn replace_while_read_is_well_defined() {
        // Regression: a reader's snapshot survives replacement unchanged,
        // its bytes are metered against the snapshot (not the
        // replacement), and the cumulative read count carries over.
        let dfs = Dfs::new();
        dfs.put("t", vec![1u64, 2, 3]); // 24 bytes
        let snapshot = dfs.get::<u64>("t").unwrap();
        assert_eq!(dfs.total_bytes_read(), 24);
        assert_eq!(dfs.reads_of("t"), Some(1));

        // Replace mid-flight with a dataset of a different size.
        dfs.put("t", vec![9u64]); // 8 bytes
        assert_eq!(*snapshot, vec![1u64, 2, 3], "reader keeps its snapshot");
        assert_eq!(
            dfs.reads_of("t"),
            Some(1),
            "read history survives replacement"
        );
        // The pre-replacement read stays metered at the old size; a fresh
        // read meters the new size.
        dfs.get::<u64>("t").unwrap();
        assert_eq!(dfs.total_bytes_read(), 24 + 8);
        assert_eq!(dfs.reads_of("t"), Some(2));
    }

    #[test]
    fn concurrent_replace_and_read_accounting_is_consistent() {
        // Hammer get/put on one dataset: every metered read must account
        // either the old or the new size exactly — never a torn value.
        let dfs = std::sync::Arc::new(Dfs::new());
        dfs.put("t", vec![0u64; 4]); // 32 bytes
        let readers = 4;
        let rounds = 200;
        std::thread::scope(|s| {
            for _ in 0..readers {
                let dfs = std::sync::Arc::clone(&dfs);
                s.spawn(move || {
                    for _ in 0..rounds {
                        let snap = dfs.get::<u64>("t").unwrap();
                        assert!(snap.len() == 4 || snap.len() == 1);
                    }
                });
            }
            let writer = std::sync::Arc::clone(&dfs);
            s.spawn(move || {
                for i in 0..rounds {
                    if i % 2 == 0 {
                        writer.put("t", vec![0u64; 1]); // 8 bytes
                    } else {
                        writer.put("t", vec![0u64; 4]); // 32 bytes
                    }
                }
            });
        });
        // Total bytes read decomposes exactly into 8- and 32-byte reads.
        let total = dfs.total_bytes_read();
        let reads = dfs.reads_of("t").unwrap();
        assert_eq!(reads, readers * rounds);
        // total = 8a + 32b with a + b = reads  ⇒  solvable in nonneg ints.
        let min = 8 * reads;
        let max = 32 * reads;
        assert!(total >= min && total <= max && (total - min).is_multiple_of(24));
    }
}
