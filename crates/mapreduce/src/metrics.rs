//! Per-job and per-run metrics.
//!
//! These counters are the experiment's primary observables: Tables III/IV of
//! the paper are bounds on `map_output_records` (max intermediate data) and
//! on the number of jobs; Figures 1/7/8 plot (simulated) running time.

/// Counters for one MapReduce job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobMetrics {
    /// Job name (used for grouping in reports).
    pub name: String,
    /// Records read by all map tasks.
    pub map_input_records: usize,
    /// Bytes read by all map tasks.
    pub map_input_bytes: usize,
    /// Records emitted by all map tasks **before** the combiner. This is the
    /// paper's "intermediate data" quantity.
    pub map_output_records: usize,
    /// Bytes emitted by all map tasks before the combiner.
    pub map_output_bytes: usize,
    /// Records crossing the network after the (optional) combiner.
    pub shuffle_records: usize,
    /// Bytes crossing the network after the (optional) combiner.
    pub shuffle_bytes: usize,
    /// Distinct reduce-side key groups.
    pub reduce_groups: usize,
    /// Records emitted by all reduce tasks.
    pub reduce_output_records: usize,
    /// Bytes emitted by all reduce tasks.
    pub reduce_output_bytes: usize,
    /// Largest single reduce-side key group in bytes (memory-pressure proxy;
    /// compared against the per-reducer budget).
    pub max_group_bytes: usize,
    /// Map task attempts that failed (injected faults or crashed workers)
    /// and were retried.
    pub task_retries: usize,
    /// Reduce task attempts that failed and were retried.
    pub reduce_task_retries: usize,
    /// Simulated workers blacklisted during this job.
    pub workers_blacklisted: usize,
    /// Speculative backup attempts launched for straggling map tasks.
    pub speculative_launched: usize,
    /// Speculative attempts that finished before the straggler they
    /// shadowed.
    pub speculative_wins: usize,
    /// Transient DFS read failures retried by the pipeline layer.
    pub dfs_read_retries: usize,
    /// Lost DFS datasets re-derived through lineage before this job ran.
    pub lineage_recoveries: usize,
    /// Simulated seconds spent on recovery: retry backoff plus straggler
    /// delay (net of speculative wins). Included in `sim_time_s`.
    pub recovery_sim_time_s: f64,
    /// Simulated wall-clock for the configured cluster (seconds).
    pub sim_time_s: f64,
    /// Actual wall-clock spent executing the job in this process (seconds).
    pub wall_time_s: f64,
    /// Host time the job started, in seconds since the cluster's epoch.
    /// Together with [`JobMetrics::finished_s`] this places the job on the
    /// cluster's timeline, which is what lets [`RunMetrics::wall_s`] and
    /// [`RunMetrics::peak_concurrency`] account for overlapping jobs
    /// without double-counting.
    pub started_s: f64,
    /// Host time the job finished, in seconds since the cluster's epoch.
    pub finished_s: f64,
}

/// Metrics for a sequence of jobs (one decomposition, one experiment, …).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Per-job metrics in execution order.
    pub jobs: Vec<JobMetrics>,
}

impl RunMetrics {
    /// Number of jobs executed.
    pub fn total_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Maximum intermediate data (records) over all jobs — the quantity the
    /// paper's Tables III/IV report per variant.
    pub fn max_intermediate_records(&self) -> usize {
        self.jobs
            .iter()
            .map(|j| j.map_output_records)
            .max()
            .unwrap_or(0)
    }

    /// Maximum intermediate data in bytes over all jobs.
    pub fn max_intermediate_bytes(&self) -> usize {
        self.jobs
            .iter()
            .map(|j| j.map_output_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total intermediate records across all jobs.
    pub fn total_intermediate_records(&self) -> usize {
        self.jobs.iter().map(|j| j.map_output_records).sum()
    }

    /// Total simulated time, including per-job overheads.
    pub fn total_sim_time_s(&self) -> f64 {
        self.jobs.iter().map(|j| j.sim_time_s).sum()
    }

    /// Total actual wall time, summed per job. Once jobs overlap (the DAG
    /// scheduler runs independent jobs concurrently) this *busy* time
    /// exceeds the elapsed span — use [`RunMetrics::wall_s`] for elapsed
    /// time. Kept as an alias of [`RunMetrics::busy_s`] for callers that
    /// predate the split.
    pub fn total_wall_time_s(&self) -> f64 {
        self.busy_s()
    }

    /// Aggregate host CPU-side busy time: the sum of per-job
    /// `wall_time_s`. Under sequential execution `busy_s == wall_s`
    /// (modulo gaps between jobs); under concurrent execution
    /// `busy_s > wall_s` exactly when jobs overlapped.
    pub fn busy_s(&self) -> f64 {
        self.jobs.iter().map(|j| j.wall_time_s).sum()
    }

    /// Elapsed host time spanned by the run: latest `finished_s` minus
    /// earliest `started_s` over all jobs. This is the quantity a
    /// stopwatch would measure and does **not** double-count overlapped
    /// jobs. Zero when no job carries timeline stamps.
    pub fn wall_s(&self) -> f64 {
        let start = self
            .jobs
            .iter()
            .map(|j| j.started_s)
            .fold(f64::INFINITY, f64::min);
        let end = self.jobs.iter().map(|j| j.finished_s).fold(0.0, f64::max);
        if start.is_finite() && end > start {
            end - start
        } else {
            0.0
        }
    }

    /// Maximum number of jobs whose `[started_s, finished_s)` intervals
    /// overlap at any instant — 1 for strictly sequential execution,
    /// higher when the DAG scheduler overlapped independent jobs.
    pub fn peak_concurrency(&self) -> usize {
        let mut events: Vec<(f64, isize)> = Vec::with_capacity(self.jobs.len() * 2);
        for j in &self.jobs {
            if j.finished_s > j.started_s {
                events.push((j.started_s, 1));
                events.push((j.finished_s, -1));
            }
        }
        // Ends sort before starts at equal times, so back-to-back jobs do
        // not count as concurrent.
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cur = 0isize;
        let mut peak = 0isize;
        for (_, delta) in events {
            cur += delta;
            peak = peak.max(cur);
        }
        peak.max(0) as usize
    }

    /// Total bytes read by map tasks (disk-access proxy: HaTen2-DRI reads
    /// the input tensor once, earlier variants read it per job).
    pub fn total_map_input_bytes(&self) -> usize {
        self.jobs.iter().map(|j| j.map_input_bytes).sum()
    }

    /// Total failed-and-retried task attempts (map + reduce) across the run.
    pub fn total_task_retries(&self) -> usize {
        self.jobs
            .iter()
            .map(|j| j.task_retries + j.reduce_task_retries)
            .sum()
    }

    /// Total speculative attempts launched across the run.
    pub fn total_speculative_launched(&self) -> usize {
        self.jobs.iter().map(|j| j.speculative_launched).sum()
    }

    /// Total speculative wins across the run.
    pub fn total_speculative_wins(&self) -> usize {
        self.jobs.iter().map(|j| j.speculative_wins).sum()
    }

    /// Total workers blacklisted across the run (per-job counts summed).
    pub fn total_workers_blacklisted(&self) -> usize {
        self.jobs.iter().map(|j| j.workers_blacklisted).sum()
    }

    /// Total transient DFS read retries across the run.
    pub fn total_dfs_read_retries(&self) -> usize {
        self.jobs.iter().map(|j| j.dfs_read_retries).sum()
    }

    /// Total lineage re-derivations across the run.
    pub fn total_lineage_recoveries(&self) -> usize {
        self.jobs.iter().map(|j| j.lineage_recoveries).sum()
    }

    /// Total simulated time spent on recovery (backoff + straggler delay).
    pub fn total_recovery_sim_time_s(&self) -> f64 {
        self.jobs.iter().map(|j| j.recovery_sim_time_s).sum()
    }

    /// Append another run's jobs.
    pub fn extend(&mut self, other: RunMetrics) {
        self.jobs.extend(other.jobs);
    }

    /// Push one job.
    pub fn push(&mut self, job: JobMetrics) {
        self.jobs.push(job);
    }
}

/// Concurrency accounting for one scheduler batch (see `crate::sched`).
///
/// These are *observability* numbers, deliberately kept out of
/// [`JobMetrics`]/[`RunMetrics`] equality: host scheduling decides them,
/// so they vary run to run while the per-job counters stay bit-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReport {
    /// Jobs in the batch.
    pub jobs: usize,
    /// Length (in jobs) of the longest dependency chain actually executed
    /// — the measured counterpart of the plan IR's symbolic
    /// critical-path depth.
    pub critical_path_len: usize,
    /// Host seconds along the longest dependency chain, weighting each
    /// job by its `wall_time_s`: the lower bound on elapsed time no
    /// amount of parallelism can beat.
    pub critical_path_s: f64,
    /// Elapsed host seconds from first job start to last job finish.
    pub wall_s: f64,
    /// Summed per-job host seconds (`Σ wall_time_s`).
    pub busy_s: f64,
    /// Maximum number of the batch's jobs in flight at one instant.
    pub peak_concurrency: usize,
    /// Summed per-job *simulated* seconds (`Σ sim_time_s`) — the makespan
    /// a one-job-at-a-time JobTracker would schedule for this batch.
    pub sim_sequential_s: f64,
    /// Simulated makespan of the batch: whole jobs list-scheduled (in
    /// submission order, no backfilling) onto the configured number of
    /// worker threads, honoring the dependency edges, each job costing
    /// its `sim_time_s`. A deterministic model quantity — identical
    /// across scheduler modes and host core counts — so
    /// `sim_sequential_s / sim_makespan_s` is the reproducible speedup
    /// the DAG scheduler unlocks on the simulated cluster.
    pub sim_makespan_s: f64,
    /// Host seconds each pool worker spent executing this batch's jobs
    /// (index = worker slot; one entry for Sequential mode). The
    /// histogram makes dispatch imbalance visible: under LPT ordering a
    /// skewed batch should still fill every slot, while FIFO ordering
    /// leaves the tail worker idle behind the straggler.
    pub worker_busy_s: Vec<f64>,
    /// Largest single reduce-side key group (bytes) over the batch's jobs
    /// — the straggler proxy the `heavy-key-split` rewrite targets,
    /// surfaced here so skew benches can report it next to makespan.
    pub heaviest_group_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, inter: usize, t: f64) -> JobMetrics {
        JobMetrics {
            name: name.into(),
            map_output_records: inter,
            map_output_bytes: inter * 24,
            sim_time_s: t,
            ..Default::default()
        }
    }

    #[test]
    fn aggregations() {
        let mut run = RunMetrics::default();
        run.push(job("a", 10, 1.0));
        run.push(job("b", 30, 2.0));
        run.push(job("c", 20, 0.5));
        assert_eq!(run.total_jobs(), 3);
        assert_eq!(run.max_intermediate_records(), 30);
        assert_eq!(run.max_intermediate_bytes(), 720);
        assert_eq!(run.total_intermediate_records(), 60);
        assert!((run.total_sim_time_s() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run() {
        let run = RunMetrics::default();
        assert_eq!(run.total_jobs(), 0);
        assert_eq!(run.max_intermediate_records(), 0);
        assert_eq!(run.total_sim_time_s(), 0.0);
    }

    #[test]
    fn recovery_aggregates() {
        let mut run = RunMetrics::default();
        run.push(JobMetrics {
            name: "a".into(),
            task_retries: 2,
            reduce_task_retries: 1,
            speculative_launched: 2,
            speculative_wins: 1,
            workers_blacklisted: 1,
            dfs_read_retries: 3,
            lineage_recoveries: 1,
            recovery_sim_time_s: 5.0,
            ..Default::default()
        });
        run.push(JobMetrics {
            name: "b".into(),
            task_retries: 1,
            recovery_sim_time_s: 1.5,
            ..Default::default()
        });
        assert_eq!(run.total_task_retries(), 4);
        assert_eq!(run.total_speculative_launched(), 2);
        assert_eq!(run.total_speculative_wins(), 1);
        assert_eq!(run.total_workers_blacklisted(), 1);
        assert_eq!(run.total_dfs_read_retries(), 3);
        assert_eq!(run.total_lineage_recoveries(), 1);
        assert!((run.total_recovery_sim_time_s() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn busy_vs_wall_under_overlap() {
        let mut run = RunMetrics::default();
        // Two fully overlapped jobs plus one sequential tail.
        for (s, e) in [(0.0, 2.0), (0.0, 2.0), (2.0, 3.0)] {
            run.push(JobMetrics {
                name: "j".into(),
                wall_time_s: e - s,
                started_s: s,
                finished_s: e,
                ..Default::default()
            });
        }
        assert!((run.busy_s() - 5.0).abs() < 1e-12);
        assert!((run.total_wall_time_s() - run.busy_s()).abs() < 1e-12);
        assert!((run.wall_s() - 3.0).abs() < 1e-12);
        assert_eq!(run.peak_concurrency(), 2);
    }

    #[test]
    fn back_to_back_jobs_are_not_concurrent() {
        let mut run = RunMetrics::default();
        for (s, e) in [(0.0, 1.0), (1.0, 2.0)] {
            run.push(JobMetrics {
                name: "j".into(),
                wall_time_s: e - s,
                started_s: s,
                finished_s: e,
                ..Default::default()
            });
        }
        assert_eq!(run.peak_concurrency(), 1);
        assert!((run.wall_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unstamped_jobs_have_zero_span() {
        let mut run = RunMetrics::default();
        run.push(job("a", 1, 0.1));
        assert_eq!(run.wall_s(), 0.0);
        assert_eq!(run.peak_concurrency(), 0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = RunMetrics::default();
        a.push(job("a", 1, 0.1));
        let mut b = RunMetrics::default();
        b.push(job("b", 2, 0.2));
        a.extend(b);
        assert_eq!(a.total_jobs(), 2);
    }
}
