//! Declarative job-plan IR: pipelines as data, costs as symbolic expressions.
//!
//! The paper's contribution is a table of *static* guarantees — per-variant
//! bounds on intermediate data and MapReduce job counts (Tables III/IV) —
//! but an executed pipeline only reveals those quantities after the fact,
//! through [`crate::metrics::JobMetrics`]. This module lets a pipeline
//! describe itself *before* running:
//!
//! * [`SymExpr`] — integer expressions over the problem-size variables
//!   `(nnz, I, J, K, Q, R, M, Mr)` ([`Var`]), closed under `+`, `·`,
//!   `max`, and floor division `/` (used by the communication pass for
//!   gap ratios and memory-dependent lower bounds).
//! * [`PlanJob`] — one job template: the DFS datasets it reads and writes,
//!   how many instances run per pipeline invocation, and symbolic
//!   per-instance map-output records/bytes (exact in generic position, or
//!   an upper bound — see [`PlanJob::exact`]).
//! * [`JobGraph`] — an ordered list of templates plus the datasets that
//!   exist before the first job runs. `haten2-analyze` checks dataflow
//!   well-formedness and derives the graph's cost bounds; [`
//!   JobGraph::expand`] instantiates the templates for a concrete
//!   [`Env`] so predictions can be compared against metered runs.
//!
//! The IR deliberately knows nothing about mappers or reducers: it is the
//! *contract* a pipeline publishes, not an executable form. The real
//! pipelines in `haten2-core` register one graph per (decomposition ×
//! variant) and the analyzer holds them to the paper's table.

use std::fmt;
use std::ops::{Add, Div, Mul};

/// A problem-size variable of the paper's cost analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Var {
    /// Number of nonzeros of the input tensor.
    Nnz,
    /// Dimension of the (canonical) target mode.
    DimI,
    /// Dimension of canonical mode 1.
    DimJ,
    /// Dimension of canonical mode 2.
    DimK,
    /// Core size / rank along mode 1 (`Q` in Table III).
    RankQ,
    /// Core size / rank along mode 2 (`R` in Tables III/IV).
    RankR,
    /// Number of cluster machines.
    Machines,
    /// Symbolic fault budget `k` of the recoverability pass (how many
    /// dataset losses / task crashes a schedule may inject).
    Faults,
    /// Per-reducer memory budget in bytes (`Mr`) — the fast-memory size
    /// of the Ballard–Rouse communication lower bounds.
    ReducerMemory,
}

impl Var {
    /// The symbol used by the paper (and by [`SymExpr`]'s `Display`).
    pub fn symbol(self) -> &'static str {
        match self {
            Var::Nnz => "nnz",
            Var::DimI => "I",
            Var::DimJ => "J",
            Var::DimK => "K",
            Var::RankQ => "Q",
            Var::RankR => "R",
            Var::Machines => "M",
            Var::Faults => "k",
            Var::ReducerMemory => "Mr",
        }
    }
}

/// A concrete assignment of every [`Var`], used to evaluate expressions and
/// expand graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Env {
    /// Nonzeros of the input tensor.
    pub nnz: u64,
    /// Canonical target-mode dimension.
    pub dim_i: u64,
    /// Canonical mode-1 dimension.
    pub dim_j: u64,
    /// Canonical mode-2 dimension.
    pub dim_k: u64,
    /// Rank / core size `Q`.
    pub rank_q: u64,
    /// Rank / core size `R`.
    pub rank_r: u64,
    /// Cluster machines.
    pub machines: u64,
    /// Fault budget `k` (losses the recoverability pass must absorb).
    pub faults: u64,
    /// Per-reducer memory budget `Mr` in bytes.
    pub reducer_memory: u64,
}

impl Env {
    /// Value of one variable.
    pub fn get(&self, v: Var) -> u128 {
        (match v {
            Var::Nnz => self.nnz,
            Var::DimI => self.dim_i,
            Var::DimJ => self.dim_j,
            Var::DimK => self.dim_k,
            Var::RankQ => self.rank_q,
            Var::RankR => self.rank_r,
            Var::Machines => self.machines,
            Var::Faults => self.faults,
            Var::ReducerMemory => self.reducer_memory,
        }) as u128
    }
}

/// A symbolic integer expression over [`Var`]s: constants, variables, `+`,
/// `·`, binary `max`, and floor division `/`.
///
/// Expressions evaluate in `u128` so that paper-scale sizes (billions of
/// nonzeros times ranks times record widths) cannot overflow. Division is
/// *floor* division; a zero denominator saturates to `u128::MAX` under
/// [`SymExpr::eval`] (a vanishing memory budget makes a communication
/// bound unbounded, and saturation keeps comparisons monotone) and is
/// reported as `None` by [`SymExpr::eval_checked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymExpr {
    /// Integer constant.
    Const(u64),
    /// Problem-size variable.
    Var(Var),
    /// Sum.
    Add(Box<SymExpr>, Box<SymExpr>),
    /// Product.
    Mul(Box<SymExpr>, Box<SymExpr>),
    /// Binary maximum.
    Max(Box<SymExpr>, Box<SymExpr>),
    /// Floor quotient (`a / b`; `b = 0` saturates — see [`SymExpr::eval`]).
    Div(Box<SymExpr>, Box<SymExpr>),
}

impl SymExpr {
    /// Constant expression.
    pub fn c(n: u64) -> SymExpr {
        SymExpr::Const(n)
    }

    /// `nnz`.
    pub fn nnz() -> SymExpr {
        SymExpr::Var(Var::Nnz)
    }

    /// `I` (canonical target-mode dimension).
    pub fn dim_i() -> SymExpr {
        SymExpr::Var(Var::DimI)
    }

    /// `J` (canonical mode-1 dimension).
    pub fn dim_j() -> SymExpr {
        SymExpr::Var(Var::DimJ)
    }

    /// `K` (canonical mode-2 dimension).
    pub fn dim_k() -> SymExpr {
        SymExpr::Var(Var::DimK)
    }

    /// `Q`.
    pub fn rank_q() -> SymExpr {
        SymExpr::Var(Var::RankQ)
    }

    /// `R`.
    pub fn rank_r() -> SymExpr {
        SymExpr::Var(Var::RankR)
    }

    /// `k` (fault budget).
    pub fn faults() -> SymExpr {
        SymExpr::Var(Var::Faults)
    }

    /// `M` (cluster machines).
    pub fn machines() -> SymExpr {
        SymExpr::Var(Var::Machines)
    }

    /// `Mr` (per-reducer memory budget, bytes).
    pub fn reducer_memory() -> SymExpr {
        SymExpr::Var(Var::ReducerMemory)
    }

    /// `max(a, b)`.
    pub fn max(a: SymExpr, b: SymExpr) -> SymExpr {
        SymExpr::Max(Box::new(a), Box::new(b))
    }

    /// Evaluate under `env`, saturating at `u128::MAX`.
    ///
    /// Paper-scale sizes (billions of nonzeros times ranks times record
    /// widths) fit comfortably in `u128`, but adversarial environments —
    /// every variable at `u64::MAX` under a cubic expression — can exceed
    /// it; evaluation saturates rather than wrapping so comparisons stay
    /// monotone. Use [`SymExpr::eval_checked`] when overflow must be
    /// *detected* rather than absorbed.
    pub fn eval(&self, env: &Env) -> u128 {
        match self {
            SymExpr::Const(n) => *n as u128,
            SymExpr::Var(v) => env.get(*v),
            SymExpr::Add(a, b) => a.eval(env).saturating_add(b.eval(env)),
            SymExpr::Mul(a, b) => a.eval(env).saturating_mul(b.eval(env)),
            SymExpr::Max(a, b) => a.eval(env).max(b.eval(env)),
            SymExpr::Div(a, b) => match b.eval(env) {
                0 => u128::MAX,
                d => a.eval(env) / d,
            },
        }
    }

    /// Evaluate under `env`, returning `None` when any intermediate value
    /// overflows `u128`.
    pub fn eval_checked(&self, env: &Env) -> Option<u128> {
        match self {
            SymExpr::Const(n) => Some(*n as u128),
            SymExpr::Var(v) => Some(env.get(*v)),
            SymExpr::Add(a, b) => a.eval_checked(env)?.checked_add(b.eval_checked(env)?),
            SymExpr::Mul(a, b) => a.eval_checked(env)?.checked_mul(b.eval_checked(env)?),
            SymExpr::Max(a, b) => Some(a.eval_checked(env)?.max(b.eval_checked(env)?)),
            SymExpr::Div(a, b) => a.eval_checked(env)?.checked_div(b.eval_checked(env)?),
        }
    }

    /// Extensional equivalence over a sample of environments: `true` when
    /// both expressions evaluate identically on every `env`. This is how
    /// the analyzer compares a *derived* bound against a *claimed* one
    /// without needing a canonical form for expressions.
    pub fn equiv_on(&self, other: &SymExpr, envs: &[Env]) -> bool {
        envs.iter().all(|e| self.eval(e) == other.eval(e))
    }

    fn precedence(&self) -> u8 {
        match self {
            SymExpr::Add(..) => 0,
            SymExpr::Mul(..) | SymExpr::Div(..) => 1,
            SymExpr::Const(_) | SymExpr::Var(_) | SymExpr::Max(..) => 2,
        }
    }

    fn fmt_child(&self, child: &SymExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if child.precedence() < self.precedence() {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExpr::Const(n) => write!(f, "{n}"),
            SymExpr::Var(v) => f.write_str(v.symbol()),
            SymExpr::Add(a, b) => {
                self.fmt_child(a, f)?;
                f.write_str(" + ")?;
                self.fmt_child(b, f)
            }
            SymExpr::Mul(a, b) => {
                self.fmt_child(a, f)?;
                f.write_str("·")?;
                // `·` and `/` share a precedence level but only `·` is
                // associative: a divisor on the right must keep its parens
                // so `x·(a / b)` does not re-read as `(x·a) / b`.
                if matches!(**b, SymExpr::Div(..)) {
                    write!(f, "({b})")
                } else {
                    self.fmt_child(b, f)
                }
            }
            SymExpr::Max(a, b) => write!(f, "max({a}, {b})"),
            SymExpr::Div(a, b) => {
                self.fmt_child(a, f)?;
                f.write_str(" / ")?;
                // Floor division is left-associative and non-associative:
                // any compound divisor needs parens.
                if b.precedence() < 2 {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
        }
    }
}

impl Add for SymExpr {
    type Output = SymExpr;
    fn add(self, rhs: SymExpr) -> SymExpr {
        SymExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl Mul for SymExpr {
    type Output = SymExpr;
    fn mul(self, rhs: SymExpr) -> SymExpr {
        SymExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl Div for SymExpr {
    type Output = SymExpr;
    fn div(self, rhs: SymExpr) -> SymExpr {
        SymExpr::Div(Box::new(self), Box::new(rhs))
    }
}

/// Token of the [`SymExpr::parse`] grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Num(u64),
    Ident(String),
    Plus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
}

fn lex(s: &str) -> Option<Vec<Tok>> {
    let mut toks = Vec::new();
    let mut it = s.chars().peekable();
    while let Some(&c) = it.peek() {
        match c {
            ' ' | '\t' => {
                it.next();
            }
            '+' => {
                it.next();
                toks.push(Tok::Plus);
            }
            '·' | '*' => {
                it.next();
                toks.push(Tok::Star);
            }
            '/' => {
                it.next();
                toks.push(Tok::Slash);
            }
            '(' => {
                it.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                it.next();
                toks.push(Tok::RParen);
            }
            ',' => {
                it.next();
                toks.push(Tok::Comma);
            }
            '0'..='9' => {
                let mut n: u64 = 0;
                while let Some(d) = it.peek().and_then(|c| c.to_digit(10)) {
                    n = n.checked_mul(10)?.checked_add(d as u64)?;
                    it.next();
                }
                toks.push(Tok::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut id = String::new();
                while let Some(&c) = it.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        id.push(c);
                        it.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(id));
            }
            _ => return None,
        }
    }
    Some(toks)
}

/// Recursive-descent parser state over the token stream.
struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn expect(&mut self, t: &Tok) -> Option<()> {
        if self.bump()? == t {
            Some(())
        } else {
            None
        }
    }

    fn expr(&mut self) -> Option<SymExpr> {
        let mut acc = self.term()?;
        while self.peek() == Some(&Tok::Plus) {
            self.pos += 1;
            acc = acc + self.term()?;
        }
        Some(acc)
    }

    fn term(&mut self) -> Option<SymExpr> {
        let mut acc = self.factor()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    acc = acc * self.factor()?;
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    acc = acc / self.factor()?;
                }
                _ => return Some(acc),
            }
        }
    }

    fn factor(&mut self) -> Option<SymExpr> {
        match self.bump()?.clone() {
            Tok::Num(n) => Some(SymExpr::Const(n)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Some(e)
            }
            Tok::Ident(id) if id == "max" => {
                self.expect(&Tok::LParen)?;
                let a = self.expr()?;
                self.expect(&Tok::Comma)?;
                let b = self.expr()?;
                self.expect(&Tok::RParen)?;
                Some(SymExpr::max(a, b))
            }
            Tok::Ident(id) => {
                let v = [
                    Var::Nnz,
                    Var::DimI,
                    Var::DimJ,
                    Var::DimK,
                    Var::RankQ,
                    Var::RankR,
                    Var::Machines,
                    Var::Faults,
                    Var::ReducerMemory,
                ]
                .into_iter()
                .find(|v| v.symbol() == id)?;
                Some(SymExpr::Var(v))
            }
            _ => None,
        }
    }
}

impl SymExpr {
    /// Parse the textual form produced by `Display` (plus ASCII `*` as an
    /// alternative product sign): integers, variable symbols, `+`, `·`/`*`,
    /// `/`, `max(a, b)` and parentheses. `·` and `/` share a precedence
    /// level above `+` and associate left, matching `Display`'s
    /// parenthesization, so `parse(e.to_string())` evaluates identically to
    /// `e` on every environment. Returns `None` on any malformed input —
    /// used by the analyzer's plan-fixture loader, never by pipelines.
    pub fn parse(s: &str) -> Option<SymExpr> {
        let toks = lex(s)?;
        let mut p = Parser {
            toks: &toks,
            pos: 0,
        };
        let e = p.expr()?;
        if p.pos == toks.len() {
            Some(e)
        } else {
            None
        }
    }
}

/// One job template of a pipeline: dataset wiring plus symbolic costs.
///
/// `name` may contain a single `{}` placeholder; [`JobGraph::expand`]
/// replaces it with the instance index (matching how the runtime pipelines
/// name their per-column jobs, e.g. `tucker-naive-xv-b{q}`).
#[derive(Debug, Clone)]
pub struct PlanJob {
    /// Job name template (`{}` = instance index when `count > 1`).
    pub name: String,
    /// Instances run per pipeline invocation.
    pub count: SymExpr,
    /// Datasets read by each instance.
    pub reads: Vec<String>,
    /// Datasets written (appended to) by each instance.
    pub writes: Vec<String>,
    /// Per-instance map-output records (the paper's "intermediate data").
    pub records: SymExpr,
    /// Per-instance map-output bytes (equals shuffle bytes: the registered
    /// pipelines run without combiners, matching the paper's accounting).
    pub bytes: SymExpr,
    /// `true` when `records`/`bytes` are exact in generic position (no
    /// zero factor entries, no cancellation); `false` for upper bounds.
    pub exact: bool,
    /// The reducer operation this template applies, when the pipeline
    /// names one (e.g. `collapse_job`) — the determinism pass matches it
    /// against the commutative-associative registry.
    pub op: Option<String>,
    /// Whether the plan declares this job's reducer commutative and
    /// associative (so re-execution and input reordering cannot change its
    /// output). Each `true` here must be backed by an entry in the
    /// pipeline's reducer-annotation registry, which generates a property
    /// test per annotated reducer.
    pub comm_assoc: bool,
}

impl PlanJob {
    /// New single-instance template with zero cost; chain the builder
    /// methods to fill it in.
    pub fn new(name: impl Into<String>) -> Self {
        PlanJob {
            name: name.into(),
            count: SymExpr::c(1),
            reads: Vec::new(),
            writes: Vec::new(),
            records: SymExpr::c(0),
            bytes: SymExpr::c(0),
            exact: true,
            op: None,
            comm_assoc: false,
        }
    }

    /// Datasets each instance reads.
    pub fn reads<const N: usize>(mut self, ds: [&str; N]) -> Self {
        self.reads = ds.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Datasets each instance writes.
    pub fn writes<const N: usize>(mut self, ds: [&str; N]) -> Self {
        self.writes = ds.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Number of instances per invocation.
    pub fn repeat(mut self, count: SymExpr) -> Self {
        self.count = count;
        self
    }

    /// Per-instance intermediate records and bytes.
    pub fn emits(mut self, records: SymExpr, bytes: SymExpr) -> Self {
        self.records = records;
        self.bytes = bytes;
        self
    }

    /// Mark the cost expressions as upper bounds rather than generic-position
    /// exact values.
    pub fn upper_bound(mut self) -> Self {
        self.exact = false;
        self
    }

    /// Name the reducer operation this template applies.
    pub fn op(mut self, op: &str) -> Self {
        self.op = Some(op.to_string());
        self
    }

    /// Declare the reducer commutative-associative (must be backed by a
    /// registry annotation and its generated property test).
    pub fn comm_assoc(mut self) -> Self {
        self.comm_assoc = true;
        self
    }
}

/// Checkpoint configuration of an iterative (ALS) driver, as the plan
/// publishes it: sweeps run, and a checkpoint written every `every`
/// sweeps. The recoverability pass proves every completed sweep is covered
/// (`every == 1`), so a crash never recomputes finished work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// A checkpoint is written after every `every`-th completed sweep.
    pub every: usize,
    /// Total ALS sweeps the driver runs.
    pub sweeps: usize,
}

/// Static recovery contract of one pipeline: which datasets carry lineage
/// recipes, plus the iterative driver's checkpoint policy when there is
/// one. The recoverability pass checks this declaration against the
/// pipeline's [`JobGraph`] — every non-input dataset any job reads must be
/// covered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverySpec {
    /// Datasets with a registered lineage recipe (re-derivable on loss).
    pub covered: std::collections::BTreeSet<String>,
    /// Checkpoint policy of the enclosing iterative driver, if any.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl RecoverySpec {
    /// Empty spec: nothing covered, no checkpointing.
    pub fn new() -> Self {
        RecoverySpec::default()
    }

    /// Declare `dataset` covered by a lineage recipe.
    pub fn cover(mut self, dataset: &str) -> Self {
        self.covered.insert(dataset.to_string());
        self
    }

    /// Attach a checkpoint policy.
    pub fn checkpoint(mut self, every: usize, sweeps: usize) -> Self {
        self.checkpoint = Some(CheckpointPolicy { every, sweeps });
        self
    }
}

/// One expanded job instance for a concrete [`Env`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobInstance {
    /// Concrete job name (placeholder substituted).
    pub name: String,
    /// Predicted map-output records.
    pub records: u128,
    /// Predicted map-output (= shuffle) bytes.
    pub bytes: u128,
    /// Whether the prediction is exact in generic position.
    pub exact: bool,
}

/// A pipeline's declarative description: ordered job templates plus the
/// datasets that exist before the first job runs.
#[derive(Debug, Clone)]
pub struct JobGraph {
    /// Pipeline name (e.g. `tucker-dri`).
    pub name: String,
    /// Datasets present before the first job (driver-provided).
    pub inputs: Vec<String>,
    /// The subset of `inputs` that are (views of) the big input tensor;
    /// reads of these are the paper's disk-access cost.
    pub big_inputs: Vec<String>,
    /// Datasets the driver consumes after the last job.
    pub outputs: Vec<String>,
    /// Job templates in execution order.
    pub jobs: Vec<PlanJob>,
}

impl JobGraph {
    /// New graph with the given driver-provided input datasets.
    pub fn new<const N: usize>(name: impl Into<String>, inputs: [&str; N]) -> Self {
        JobGraph {
            name: name.into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            big_inputs: Vec::new(),
            outputs: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// Declare `ds` (already in `inputs`, or added here) as a view of the
    /// big input tensor.
    pub fn big_input(mut self, ds: &str) -> Self {
        if !self.inputs.iter().any(|d| d == ds) {
            self.inputs.push(ds.to_string());
        }
        self.big_inputs.push(ds.to_string());
        self
    }

    /// Declare a dataset the driver consumes after the pipeline.
    pub fn output(mut self, ds: &str) -> Self {
        self.outputs.push(ds.to_string());
        self
    }

    /// Append a job template.
    pub fn job(mut self, j: PlanJob) -> Self {
        self.jobs.push(j);
        self
    }

    /// Derived bound: the maximum per-job intermediate records over the
    /// whole pipeline — the "Max intermediate data" column of Tables
    /// III/IV.
    pub fn max_intermediate_records(&self) -> SymExpr {
        self.jobs
            .iter()
            .map(|j| j.records.clone())
            .reduce(SymExpr::max)
            .unwrap_or(SymExpr::Const(0))
    }

    /// Derived bound: maximum per-job intermediate bytes.
    pub fn max_intermediate_bytes(&self) -> SymExpr {
        self.jobs
            .iter()
            .map(|j| j.bytes.clone())
            .reduce(SymExpr::max)
            .unwrap_or(SymExpr::Const(0))
    }

    /// Derived count: total job instances per invocation — the "Total
    /// jobs" column of Tables III/IV.
    pub fn total_jobs(&self) -> SymExpr {
        self.jobs
            .iter()
            .map(|j| j.count.clone())
            .reduce(|a, b| a + b)
            .unwrap_or(SymExpr::Const(0))
    }

    /// Derived bound: total map-output (= shuffle) bytes per pipeline
    /// invocation, `Σ_templates count · bytes` — the communication volume
    /// the analyzer's `comm` pass holds against the MTTKRP lower bounds.
    /// Exact when every template is exact ([`JobGraph::shuffle_exact`]);
    /// an upper bound otherwise.
    pub fn shuffle_bytes(&self) -> SymExpr {
        self.jobs
            .iter()
            .map(|j| j.count.clone() * j.bytes.clone())
            .reduce(|a, b| a + b)
            .unwrap_or(SymExpr::Const(0))
    }

    /// `true` when every template's cost expressions are exact in generic
    /// position, making [`JobGraph::shuffle_bytes`] an exact prediction of
    /// metered shuffle traffic rather than an upper bound.
    pub fn shuffle_exact(&self) -> bool {
        self.jobs.iter().all(|j| j.exact)
    }

    /// Derived count: job instances that read a big-input dataset, summed
    /// per dataset read — the number of passes over the input tensor
    /// (HaTen2-DRI's §III-B4 saving is making this 1).
    pub fn big_input_reads(&self) -> SymExpr {
        self.jobs
            .iter()
            .filter_map(|j| {
                let touches = j
                    .reads
                    .iter()
                    .filter(|d| self.big_inputs.contains(d))
                    .count() as u64;
                if touches == 0 {
                    None
                } else {
                    Some(j.count.clone() * SymExpr::c(touches))
                }
            })
            .reduce(|a, b| a + b)
            .unwrap_or(SymExpr::Const(0))
    }

    /// The job template that writes `dataset` — the lineage of an
    /// intermediate: when the dataset is lost, re-running this job (after
    /// re-deriving *its* inputs) reconstructs it. Returns `None` for
    /// driver-provided inputs and unknown names.
    pub fn producer_of(&self, dataset: &str) -> Option<&str> {
        self.producer_job(dataset).map(|j| j.name.as_str())
    }

    /// The full job template that writes `dataset` (costs included) — what
    /// the recoverability pass charges when the dataset must be re-derived.
    pub fn producer_job(&self, dataset: &str) -> Option<&PlanJob> {
        self.jobs
            .iter()
            .find(|j| j.writes.iter().any(|w| w == dataset))
    }

    /// Every dataset produced by some job of this graph, in first-writer
    /// order (no duplicates) — the set a complete [`RecoverySpec`] covers.
    pub fn produced_datasets(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for j in &self.jobs {
            for w in &j.writes {
                if !out.iter().any(|d| d == w) {
                    out.push(w.clone());
                }
            }
        }
        out
    }

    /// Every dataset some job reads that is *not* a driver-provided input,
    /// in first-reader order — exactly the reads that depend on lineage
    /// for recovery.
    pub fn intermediate_reads(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for j in &self.jobs {
            for r in &j.reads {
                if !self.inputs.iter().any(|d| d == r) && !out.iter().any(|d| d == r) {
                    out.push(r.clone());
                }
            }
        }
        out
    }

    /// The template a concrete job name instantiates: exact match for
    /// plain names, prefix/suffix match with a non-empty digit middle for
    /// `{}` templates (so `tucker-naive-xv-b{}` matches
    /// `tucker-naive-xv-b3` but not `tucker-naive-xv-b` or
    /// `tucker-naive-xv-bX`).
    pub fn template_for(&self, name: &str) -> Option<&PlanJob> {
        self.jobs.iter().find(|j| template_matches(&j.name, name))
    }

    /// Derived `map_emit_hint` for the named job: the template's
    /// per-instance emitted records divided by its input records, both
    /// evaluated at a generic-position reference environment. Replaces the
    /// hand-maintained hints drivers used to carry (which drifted);
    /// [`crate::job::JobSpec::with_map_emit_hint`] stays as an override.
    ///
    /// Input size comes from the template's `reads`: a driver-provided
    /// dataset counts as `nnz` records (every external input in the
    /// registered graphs is a view of the tensor), an intermediate counts
    /// as its producer's total emitted records. Purely a performance hint
    /// — a misprediction cannot change results or metrics.
    pub fn emit_hint(&self, name: &str) -> Option<usize> {
        let t = self.template_for(name)?;
        let env = Env {
            nnz: 1_000_000,
            dim_i: 10,
            dim_j: 10,
            dim_k: 10,
            rank_q: 2,
            rank_r: 3,
            machines: 4,
            faults: 1,
            reducer_memory: 1 << 20,
        };
        let input_records: u128 = t
            .reads
            .iter()
            .map(|r| match self.producer_job(r) {
                Some(p) => p.count.eval(&env).saturating_mul(p.records.eval(&env)),
                None => env.nnz as u128,
            })
            .sum();
        if input_records == 0 {
            return Some(1);
        }
        let ratio = t.records.eval(&env) as f64 / input_records as f64;
        Some((ratio.round() as usize).max(1))
    }

    /// Derived depth: the longest read-after-write chain through the
    /// template list, counting one job per link — what the paper's "number
    /// of jobs" column becomes once independent jobs run concurrently.
    /// Instances of a single template never feed each other (each writes
    /// its own column/shard of the template's output datasets), so a
    /// template contributes depth 1 regardless of its `count`; the depth
    /// of every registered graph is therefore a constant expression.
    pub fn critical_path_jobs(&self) -> SymExpr {
        let mut depth = vec![0u64; self.jobs.len()];
        for i in 0..self.jobs.len() {
            let mut longest_pred = 0;
            for (k, d) in depth.iter().enumerate().take(i) {
                let feeds = self.jobs[k]
                    .writes
                    .iter()
                    .any(|w| self.jobs[i].reads.contains(w));
                if feeds {
                    longest_pred = longest_pred.max(*d);
                }
            }
            depth[i] = longest_pred + 1;
        }
        SymExpr::Const(depth.into_iter().max().unwrap_or(0))
    }

    /// Instantiate every template under `env`, in template order. A
    /// template whose `count` evaluates to more than 1 must carry a `{}`
    /// placeholder in its name.
    pub fn expand(&self, env: &Env) -> Vec<JobInstance> {
        let mut out = Vec::new();
        for j in &self.jobs {
            let n = j.count.eval(env);
            let records = j.records.eval(env);
            let bytes = j.bytes.eval(env);
            for i in 0..n {
                let name = if j.name.contains("{}") {
                    j.name.replacen("{}", &i.to_string(), 1)
                } else {
                    debug_assert!(n == 1, "multi-instance template '{}' needs {{}}", j.name);
                    j.name.clone()
                };
                out.push(JobInstance {
                    name,
                    records,
                    bytes,
                    exact: j.exact,
                });
            }
        }
        out
    }
}

/// Does `template` (possibly containing one `{}` placeholder) match the
/// concrete job name? The placeholder must stand for a non-empty run of
/// digits, mirroring how [`JobGraph::expand`] instantiates names.
pub fn template_matches(template: &str, name: &str) -> bool {
    match template.split_once("{}") {
        None => template == name,
        Some((prefix, suffix)) => {
            let Some(rest) = name.strip_prefix(prefix) else {
                return false;
            };
            let Some(mid) = rest.strip_suffix(suffix) else {
                return false;
            };
            !mid.is_empty() && mid.bytes().all(|b| b.is_ascii_digit())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Env {
        Env {
            nnz: 100,
            dim_i: 4,
            dim_j: 5,
            dim_k: 6,
            rank_q: 2,
            rank_r: 3,
            machines: 8,
            faults: 1,
            reducer_memory: 1 << 20,
        }
    }

    #[test]
    fn eval_and_display() {
        let e = SymExpr::nnz() * (SymExpr::rank_q() + SymExpr::rank_r());
        assert_eq!(e.eval(&env()), 500);
        assert_eq!(e.to_string(), "nnz·(Q + R)");
        let m = SymExpr::max(SymExpr::nnz(), SymExpr::dim_i() * SymExpr::dim_j());
        assert_eq!(m.eval(&env()), 100);
        assert_eq!(m.to_string(), "max(nnz, I·J)");
        let s = SymExpr::c(2) * SymExpr::nnz() + SymExpr::dim_k();
        assert_eq!(s.eval(&env()), 206);
        assert_eq!(s.to_string(), "2·nnz + K");
    }

    #[test]
    fn equivalence_is_extensional() {
        let a = SymExpr::nnz() * (SymExpr::rank_q() + SymExpr::rank_r());
        let b = SymExpr::nnz() * SymExpr::rank_q() + SymExpr::nnz() * SymExpr::rank_r();
        let envs: Vec<Env> = (1..10)
            .map(|s| Env {
                nnz: 17 * s,
                dim_i: 3 * s,
                dim_j: 5 * s,
                dim_k: 7 * s,
                rank_q: s,
                rank_r: 2 * s,
                machines: 4,
                faults: s % 3,
                reducer_memory: 100 * s,
            })
            .collect();
        assert!(a.equiv_on(&b, &envs));
        let c = SymExpr::nnz() * SymExpr::rank_q();
        assert!(!a.equiv_on(&c, &envs));
    }

    #[test]
    fn graph_derivations() {
        let g = JobGraph::new("demo", ["x"])
            .big_input("x")
            .output("y")
            .job(
                PlanJob::new("stage-a{}")
                    .repeat(SymExpr::rank_q())
                    .reads(["x"])
                    .writes(["t"])
                    .emits(SymExpr::nnz(), SymExpr::c(57) * SymExpr::nnz()),
            )
            .job(PlanJob::new("stage-b").reads(["t"]).writes(["y"]).emits(
                SymExpr::nnz() * SymExpr::rank_q(),
                SymExpr::c(49) * SymExpr::nnz() * SymExpr::rank_q(),
            ));
        let e = env();
        assert_eq!(g.total_jobs().eval(&e), 3);
        assert_eq!(g.max_intermediate_records().eval(&e), 200);
        assert_eq!(g.big_input_reads().eval(&e), 2);
        let inst = g.expand(&e);
        assert_eq!(inst.len(), 3);
        assert_eq!(inst[0].name, "stage-a0");
        assert_eq!(inst[1].name, "stage-a1");
        assert_eq!(inst[2].name, "stage-b");
        assert_eq!(inst[2].records, 200);
    }

    #[test]
    fn division_evaluates_floor_and_saturates_on_zero() {
        let e = env();
        let ratio = SymExpr::nnz() / SymExpr::dim_k();
        assert_eq!(ratio.eval(&e), 16); // floor(100 / 6)
        assert_eq!(ratio.eval_checked(&e), Some(16));
        let by_zero = SymExpr::nnz() / SymExpr::c(0);
        assert_eq!(by_zero.eval(&e), u128::MAX);
        assert_eq!(by_zero.eval_checked(&e), None);
        // Mr participates like any other variable.
        let bound = SymExpr::nnz() * SymExpr::rank_r() * SymExpr::c(8) / SymExpr::reducer_memory();
        assert_eq!(bound.eval(&e), (100 * 3 * 8) / (1 << 20));
    }

    #[test]
    fn division_display_keeps_precedence() {
        let d = SymExpr::nnz() * SymExpr::rank_r() / SymExpr::reducer_memory();
        assert_eq!(d.to_string(), "nnz·R / Mr");
        let nested = SymExpr::nnz() / (SymExpr::rank_q() + SymExpr::rank_r());
        assert_eq!(nested.to_string(), "nnz / (Q + R)");
        let rhs_mul = SymExpr::nnz() / (SymExpr::rank_q() * SymExpr::rank_r());
        assert_eq!(rhs_mul.to_string(), "nnz / (Q·R)");
        let mul_of_div = SymExpr::dim_i() * (SymExpr::nnz() / SymExpr::machines());
        assert_eq!(mul_of_div.to_string(), "I·(nnz / M)");
        let sum = SymExpr::nnz() / SymExpr::machines() + SymExpr::dim_j();
        assert_eq!(sum.to_string(), "nnz / M + J");
    }

    #[test]
    fn parse_round_trips_display() {
        let exprs = [
            SymExpr::nnz() * (SymExpr::rank_q() + SymExpr::rank_r()),
            SymExpr::max(SymExpr::nnz(), SymExpr::dim_i() * SymExpr::dim_j()),
            SymExpr::c(2) * SymExpr::nnz() + SymExpr::dim_k(),
            SymExpr::nnz() * SymExpr::rank_r() * SymExpr::c(8) / SymExpr::reducer_memory(),
            SymExpr::max(
                SymExpr::nnz() * SymExpr::c(25),
                SymExpr::nnz() * SymExpr::rank_r() * SymExpr::c(8) / SymExpr::reducer_memory(),
            ),
            SymExpr::dim_i() * (SymExpr::nnz() / SymExpr::machines()),
            SymExpr::nnz() / SymExpr::machines() / SymExpr::rank_q(),
        ];
        let e = env();
        for x in exprs {
            let text = x.to_string();
            let parsed = SymExpr::parse(&text).unwrap_or_else(|| panic!("parse '{text}'"));
            assert_eq!(parsed.eval(&e), x.eval(&e), "round trip of '{text}'");
            assert_eq!(parsed.to_string(), text, "re-display of '{text}'");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "nnz +",
            "(nnz",
            "max(nnz)",
            "nnz · · R",
            "2x",
            "W",
            "nnz)",
            "max(,)",
        ] {
            assert!(SymExpr::parse(bad).is_none(), "accepted '{bad}'");
        }
        // ASCII `*` is accepted as a product sign.
        let star = SymExpr::parse("2*nnz + K").expect("parse star form");
        assert_eq!(star.eval(&env()), 206);
    }

    #[test]
    fn shuffle_bytes_sums_count_times_bytes() {
        let g = JobGraph::new("demo", ["x"])
            .job(
                PlanJob::new("stage-a{}")
                    .repeat(SymExpr::rank_q())
                    .reads(["x"])
                    .writes(["t"])
                    .emits(SymExpr::nnz(), SymExpr::c(57) * SymExpr::nnz()),
            )
            .job(
                PlanJob::new("stage-b")
                    .reads(["t"])
                    .writes(["y"])
                    .emits(SymExpr::nnz(), SymExpr::c(49) * SymExpr::nnz()),
            );
        let e = env();
        // Q·57·nnz + 49·nnz = 2·5700 + 4900.
        assert_eq!(g.shuffle_bytes().eval(&e), 16_300);
        assert!(g.shuffle_exact());
        let bounded = JobGraph::new("ub", ["x"]).job(
            PlanJob::new("s")
                .reads(["x"])
                .writes(["y"])
                .emits(SymExpr::nnz(), SymExpr::nnz())
                .upper_bound(),
        );
        assert!(!bounded.shuffle_exact());
    }

    #[test]
    fn template_matching() {
        assert!(template_matches("stage-a{}", "stage-a0"));
        assert!(template_matches("stage-a{}", "stage-a17"));
        assert!(!template_matches("stage-a{}", "stage-a"));
        assert!(!template_matches("stage-a{}", "stage-aX"));
        assert!(!template_matches("stage-a{}", "stage-b0"));
        assert!(template_matches("solo", "solo"));
        assert!(!template_matches("solo", "solo1"));
        assert!(template_matches("had-{}-b", "had-3-b"));
        assert!(!template_matches("had-{}-b", "had--b"));
    }

    #[test]
    fn emit_hint_derives_from_cost_expressions() {
        let g = JobGraph::new("demo", ["x"])
            .big_input("x")
            .output("y")
            .job(
                PlanJob::new("stage-a{}")
                    .repeat(SymExpr::rank_q())
                    .reads(["x"])
                    .writes(["t"])
                    // Emits 2 records per input record.
                    .emits(
                        SymExpr::c(2) * SymExpr::nnz(),
                        SymExpr::c(20) * SymExpr::nnz(),
                    ),
            )
            .job(PlanJob::new("stage-b").reads(["t"]).writes(["y"]).emits(
                // Input is Q·2·nnz records; emits nnz → ratio well below 1,
                // clamped to the minimum useful hint.
                SymExpr::nnz(),
                SymExpr::c(10) * SymExpr::nnz(),
            ));
        assert_eq!(g.emit_hint("stage-a0"), Some(2));
        assert_eq!(g.emit_hint("stage-a1"), Some(2));
        assert_eq!(g.emit_hint("stage-b"), Some(1));
        assert_eq!(g.emit_hint("unknown"), None);
    }

    #[test]
    fn critical_path_counts_longest_chain() {
        // a{} (x→t) and c (x→u) are independent; b reads both → depth 2.
        let g = JobGraph::new("demo", ["x"])
            .job(
                PlanJob::new("a{}")
                    .repeat(SymExpr::rank_q())
                    .reads(["x"])
                    .writes(["t"])
                    .emits(SymExpr::nnz(), SymExpr::nnz()),
            )
            .job(
                PlanJob::new("c")
                    .reads(["x"])
                    .writes(["u"])
                    .emits(SymExpr::nnz(), SymExpr::nnz()),
            )
            .job(
                PlanJob::new("b")
                    .reads(["t", "u"])
                    .writes(["y"])
                    .emits(SymExpr::nnz(), SymExpr::nnz()),
            );
        assert_eq!(g.critical_path_jobs(), SymExpr::Const(2));
        // A 4-deep chain.
        let chain = JobGraph::new("chain", ["x"])
            .job(
                PlanJob::new("p1")
                    .reads(["x"])
                    .writes(["d1"])
                    .emits(SymExpr::nnz(), SymExpr::nnz()),
            )
            .job(
                PlanJob::new("p2")
                    .reads(["d1"])
                    .writes(["d2"])
                    .emits(SymExpr::nnz(), SymExpr::nnz()),
            )
            .job(
                PlanJob::new("p3")
                    .reads(["d2"])
                    .writes(["d3"])
                    .emits(SymExpr::nnz(), SymExpr::nnz()),
            )
            .job(
                PlanJob::new("p4")
                    .reads(["d3"])
                    .writes(["y"])
                    .emits(SymExpr::nnz(), SymExpr::nnz()),
            );
        assert_eq!(chain.critical_path_jobs(), SymExpr::Const(4));
        assert_eq!(
            JobGraph::new("empty", ["x"]).critical_path_jobs(),
            SymExpr::Const(0)
        );
    }

    #[test]
    fn expand_substitutes_once_per_instance() {
        let g = JobGraph::new("one", ["x"]).job(
            PlanJob::new("solo")
                .reads(["x"])
                .writes(["y"])
                .emits(SymExpr::c(7), SymExpr::c(70)),
        );
        let inst = g.expand(&env());
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].name, "solo");
        assert_eq!(inst[0].records, 7);
    }
}
