//! Runtime-executable plan rewrites and the skew detector that triggers
//! them.
//!
//! The `haten2-analyze` crate *certifies* plan rewrites statically
//! (dataflow sanity, race-freedom, volume non-inflation); this module
//! holds the **shared transform** so the graph the runtime submits is the
//! very graph the analyzer certified — the analyzer's `HeavyKeySplit`
//! delegates here, and the pipelines submit [`heavy_key_split`]'s output,
//! so "executed graph" and "certified graph" cannot drift.
//!
//! [`heavy_key_split`] is the classic two-phase aggregation for skewed
//! reduce keys: the pipeline's final single-instance comm-assoc merge is
//! split into `M` per-slice jobs — each one reads the same inputs but
//! reduces only the keys in its hash slice, writing a private `…_part#i`
//! shard — followed by a cheap `mergeparts` pass that reassembles the
//! output dataset. Slices are whole key groups (assigned by the same
//! FNV-1a hash the shuffle partitioner uses, [`crate::job::key_slice`]),
//! so every group is still reduced in one piece, in the same value order
//! as the unrewritten job: the reassembled output is **bit-identical** to
//! the unrewritten plan's, which is what lets Sequential mode stay the
//! oracle for rewritten runs.
//!
//! Callers outside the certification machinery must not apply the raw
//! transform: runtime submission goes through a certification record
//! (`CERTIFIED_REWRITES` / `certified_rewrite_for` in `haten2-core`),
//! enforced by the `no-uncertified-rewrite` source lint.

use crate::job::key_slice;
use crate::plan::{JobGraph, PlanJob, SymExpr};
use std::hash::Hash;

/// Index of the job [`heavy_key_split`] targets: the last single-instance
/// comm-assoc job that writes a graph output. `None` means the rewrite is
/// the identity (e.g. the Naive/DNN pipelines, whose final writers are
/// per-rank job families).
pub fn heavy_key_split_target(graph: &JobGraph) -> Option<usize> {
    graph.jobs.iter().rposition(|j| {
        j.comm_assoc
            && j.writes.iter().any(|w| graph.outputs.contains(w))
            && j.count == SymExpr::c(1)
    })
}

fn split_jobs(target: &PlanJob) -> (PlanJob, PlanJob) {
    let m = SymExpr::machines();
    let part = format!("{}__part", target.writes[0]);
    let part_shard = format!("{part}#{{}}");
    // Each split instance pre-combines its hash slice map-side and
    // shuffles records/M of them; floor division makes the cost an upper
    // bound, not generic-position exact.
    let split = PlanJob::new(format!("{}-split{{}}", target.name))
        .repeat(m.clone())
        .emits(
            target.records.clone() / m.clone(),
            target.bytes.clone() / m.clone(),
        )
        .upper_bound();
    let mut split = if let Some(op) = &target.op {
        split.op(op)
    } else {
        split
    };
    split.reads = target.reads.clone();
    split.writes = vec![part_shard.clone()];
    split.comm_assoc = target.comm_assoc;
    // The merge re-shuffles the M pre-combined partials — the second
    // phase of the aggregation, and the entire declared inflation.
    let merge = PlanJob::new(format!("{}-mergeparts", target.name))
        .emits(
            m.clone() * (target.records.clone() / m.clone()),
            m.clone() * (target.bytes.clone() / m),
        )
        .upper_bound();
    let mut merge = if let Some(op) = &target.op {
        merge.op(op)
    } else {
        merge
    };
    merge.reads = vec![part_shard];
    merge.writes = target.writes.clone();
    merge.comm_assoc = target.comm_assoc;
    (split, merge)
}

/// The `heavy-key-split` two-phase-aggregation rewrite: replace the
/// target merge job (see [`heavy_key_split_target`]) with `machines`
/// per-slice split jobs plus a `mergeparts` reassembly pass. Returns the
/// graph unchanged when no target exists. Declared shuffle inflation is
/// 2/1 (the partials cross the shuffle a second time, nothing worse) —
/// the analyzer re-certifies exactly this transform.
pub fn heavy_key_split(graph: &JobGraph) -> JobGraph {
    let Some(at) = heavy_key_split_target(graph) else {
        return graph.clone();
    };
    let mut out = graph.clone();
    let (split, merge) = split_jobs(&graph.jobs[at]);
    out.jobs.splice(at..=at, [split, merge]);
    out
}

/// A cheap map-side key-frequency sketch: a fixed-width array of counters
/// indexed by the engine's shuffle hash ([`crate::job::key_slice`]), so a
/// heavy reduce key is detectable in one `O(records)` pass without
/// materializing a per-key map — the same run-building scan the map side
/// already performs in `arena.rs` visits every key once.
///
/// Because buckets use the *same* hash-slice assignment the split jobs
/// use, `bucket(s)` is exactly the number of observed records split
/// instance `s` would own — which is what feeds the scheduler's
/// per-split cost hints.
#[derive(Debug, Clone)]
pub struct KeyFreqSketch {
    counts: Vec<u64>,
    total: u64,
}

impl KeyFreqSketch {
    /// A sketch with `width` buckets (clamped to at least 1). Width is
    /// normally the machine count, matching the split fan-out.
    #[must_use]
    pub fn new(width: usize) -> Self {
        KeyFreqSketch {
            counts: vec![0; width.max(1)],
            total: 0,
        }
    }

    /// Count one record with the given reduce key.
    pub fn observe<K: Hash>(&mut self, key: &K) {
        let w = self.counts.len();
        self.counts[key_slice(key, w)] += 1;
        self.total += 1;
    }

    /// Number of buckets.
    #[must_use]
    pub fn width(&self) -> usize {
        self.counts.len()
    }

    /// Records observed in bucket `slice` (0 for out-of-range slices).
    #[must_use]
    pub fn bucket(&self, slice: usize) -> u64 {
        self.counts.get(slice).copied().unwrap_or(0)
    }

    /// Total records observed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Heaviest bucket relative to the uniform share: `1.0` means
    /// perfectly balanced, `width` means everything hashed to one bucket.
    /// An empty sketch reports `1.0` (nothing to skew).
    #[must_use]
    pub fn skew_ratio(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let max = self.counts.iter().copied().max().unwrap_or(0);
        max as f64 * self.counts.len() as f64 / self.total as f64
    }
}

/// When the pipelines apply a certified rewrite at submission time.
///
/// `Off` is the default: job counts and plans stay exactly what Tables
/// III/IV publish. `Auto` is the production setting — the pipelines build
/// a [`KeyFreqSketch`] over the target-mode indices of the input tensor
/// (the reduce keys of the final merge) and rewrite only when its
/// [`KeyFreqSketch::skew_ratio`] reaches the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RewritePolicy {
    /// Never rewrite (the paper-faithful default).
    #[default]
    Off,
    /// Always submit the rewritten plan (bit-identity harnesses use this).
    Always,
    /// Rewrite when the observed key-frequency skew ratio reaches
    /// `skew_threshold` (heaviest hash slice ≥ threshold × uniform share).
    Auto {
        /// Skew ratio at or above which the rewrite fires.
        skew_threshold: f64,
    },
}

impl RewritePolicy {
    /// Whether a pipeline should submit the rewritten plan, given the
    /// map-side key-frequency sketch of the merge's reduce keys.
    #[must_use]
    pub fn should_rewrite(&self, sketch: &KeyFreqSketch) -> bool {
        match self {
            RewritePolicy::Off => false,
            RewritePolicy::Always => true,
            RewritePolicy::Auto { skew_threshold } => sketch.skew_ratio() >= *skew_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn merge_graph() -> JobGraph {
        JobGraph::new("demo", [])
            .big_input("x")
            .output("y")
            .job(
                PlanJob::new("demo-expand{}")
                    .repeat(SymExpr::rank_r())
                    .reads(["x"])
                    .writes(["t"])
                    .op("hadamard_vec_job")
                    .emits(SymExpr::nnz(), SymExpr::c(16) * SymExpr::nnz()),
            )
            .job(
                PlanJob::new("demo-merge")
                    .reads(["t"])
                    .writes(["y"])
                    .op("cross_merge_job")
                    .comm_assoc()
                    .emits(SymExpr::nnz(), SymExpr::c(16) * SymExpr::nnz()),
            )
    }

    #[test]
    fn split_replaces_the_final_merge() {
        let g = merge_graph();
        assert_eq!(heavy_key_split_target(&g), Some(1));
        let rw = heavy_key_split(&g);
        assert_eq!(rw.jobs.len(), g.jobs.len() + 1);
        let names: Vec<&str> = rw.jobs.iter().map(|j| j.name.as_str()).collect();
        assert!(names.contains(&"demo-merge-split{}"));
        assert!(names.contains(&"demo-merge-mergeparts"));
        assert!(!names.contains(&"demo-merge"));
        // Split instances write per-slice shards; mergeparts reassembles
        // the original output.
        assert_eq!(rw.jobs[1].writes, ["y__part#{}"]);
        assert_eq!(rw.jobs[2].reads, ["y__part#{}"]);
        assert_eq!(rw.jobs[2].writes, ["y"]);
    }

    #[test]
    fn no_single_instance_merge_means_identity() {
        let g = JobGraph::new("flat", []).big_input("x").output("y").job(
            PlanJob::new("flat-col{}")
                .repeat(SymExpr::rank_r())
                .reads(["x"])
                .writes(["y"])
                .op("collapse_job")
                .comm_assoc()
                .emits(SymExpr::nnz(), SymExpr::c(8) * SymExpr::nnz()),
        );
        assert_eq!(heavy_key_split_target(&g), None);
        assert_eq!(heavy_key_split(&g).jobs.len(), g.jobs.len());
    }

    #[test]
    fn sketch_flags_a_heavy_key_and_policy_gates_on_it() {
        let mut uniform = KeyFreqSketch::new(8);
        for k in 0..4000u64 {
            uniform.observe(&k);
        }
        assert!(uniform.skew_ratio() < 2.0, "{}", uniform.skew_ratio());

        let mut skewed = KeyFreqSketch::new(8);
        for _ in 0..3500 {
            skewed.observe(&42u64); // one heavy key
        }
        for k in 0..500u64 {
            skewed.observe(&k);
        }
        assert!(skewed.skew_ratio() > 4.0, "{}", skewed.skew_ratio());

        assert!(!RewritePolicy::Off.should_rewrite(&skewed));
        assert!(RewritePolicy::Always.should_rewrite(&uniform));
        let auto = RewritePolicy::Auto {
            skew_threshold: 3.0,
        };
        assert!(auto.should_rewrite(&skewed));
        assert!(!auto.should_rewrite(&uniform));
    }

    #[test]
    fn sketch_buckets_agree_with_split_slices() {
        // bucket(s) must equal the record count split instance s owns,
        // i.e. the count of keys with key_slice(k, width) == s.
        let width = 4;
        let mut sketch = KeyFreqSketch::new(width);
        let keys: Vec<u64> = (0..257).collect();
        for k in &keys {
            sketch.observe(k);
        }
        for s in 0..width {
            let want = keys.iter().filter(|k| key_slice(*k, width) == s).count() as u64;
            assert_eq!(sketch.bucket(s), want, "slice {s}");
        }
        assert_eq!(sketch.total(), 257);
    }

    #[test]
    fn empty_sketch_is_unskewed() {
        let s = KeyFreqSketch::new(8);
        assert_eq!(s.skew_ratio(), 1.0);
        assert!(!RewritePolicy::Auto {
            skew_threshold: 1.5
        }
        .should_rewrite(&s));
    }
}
