//! Cluster configuration, cost model, and the [`Cluster`] handle.

use crate::dfs::{Dfs, DfsBackend};
use crate::fault::FaultPlan;
use crate::metrics::{BatchReport, JobMetrics, RunMetrics};
use crate::pool::WorkerPool;
use crate::rewrite::RewritePolicy;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How [`crate::sched::Batch::run`] executes the jobs of a batch.
///
/// Both modes produce bit-identical outputs, DFS contents, and
/// [`JobMetrics`]/[`RunMetrics`] — `Sequential` is the oracle the
/// equivalence property tests hold `Dag` to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Dependency-aware concurrent execution: any job whose inputs are
    /// available is dispatched onto the shared worker pool, interleaving
    /// tasks from concurrent jobs. Results still commit in submission
    /// order.
    #[default]
    Dag,
    /// Strict submission-order execution, one job at a time — exactly the
    /// behaviour of the pre-scheduler drivers.
    Sequential,
}

/// Static description of the simulated cluster.
///
/// The defaults are calibrated to the paper's testbed: 40 machines, quad-core
/// Xeon E3, 32 GB RAM — scaled so that experiments complete at laptop scale
/// while preserving the *ratios* the figures depend on (per-job overhead vs.
/// per-byte work).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated machines (the paper sweeps 10–40).
    pub machines: usize,
    /// Reduce partitions per job; `None` means one per machine.
    pub reducers: Option<usize>,
    /// Fixed per-job overhead in simulated seconds (JVM start, scheduling,
    /// synchronization). Hadoop-era jobs paid ~10–20 s; this constant is what
    /// makes job *count* dominate run time and machine scalability flatten.
    pub per_job_overhead_s: f64,
    /// Map-side processing throughput, bytes/second/machine.
    pub map_bytes_per_s: f64,
    /// Shuffle (network) throughput, bytes/second/machine.
    pub shuffle_bytes_per_s: f64,
    /// Reduce-side processing throughput, bytes/second/machine.
    pub reduce_bytes_per_s: f64,
    /// Per-reducer memory budget in bytes; a reduce-side key group larger
    /// than this aborts the job with [`crate::MrError::ReducerOom`].
    pub reducer_memory_bytes: Option<usize>,
    /// Aggregate cluster spill capacity in bytes; a job whose intermediate
    /// data exceeds it aborts with
    /// [`crate::MrError::ClusterCapacityExceeded`].
    pub cluster_capacity_bytes: Option<usize>,
    /// Real worker threads used to execute tasks (not a semantic knob).
    pub threads: usize,
    /// Deterministic fault injection and recovery schedule; `None` disables
    /// injection entirely. The legacy every-`n`-th-map-task knob lives on
    /// as [`FaultPlan::fail_every_nth`].
    pub fault_plan: Option<FaultPlan>,
    /// How scheduler batches execute (not a semantic knob: outputs and
    /// metrics are bit-identical across modes).
    pub scheduler: SchedulerMode,
    /// Storage backend for the cluster-owned [`Dfs`]
    /// ([`Cluster::dfs`]). `Memory` is the historical in-memory map;
    /// `Durable` writes every dataset through a block store and spills
    /// resident copies under a memory budget. When a durable backend
    /// declares no budget of its own, the cluster derives one from the
    /// per-machine budgets already configured here:
    /// `reducer_memory_bytes × machines`.
    pub dfs: DfsBackend,
    /// Aggregate DFS storage capacity in bytes across live datasets; a
    /// `put` that would exceed it fails with
    /// [`crate::MrError::SpillCapacityExceeded`] on either backend.
    /// `None` is unlimited.
    pub dfs_capacity_bytes: Option<usize>,
    /// Whether pipelines apply the analyzer-certified `heavy-key-split`
    /// rewrite at submission time (not a semantic knob: rewritten outputs
    /// are bit-identical to the unrewritten plan's — see
    /// [`crate::rewrite`]). `Off` by default so job counts keep matching
    /// Tables III/IV.
    pub rewrite: RewritePolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map_or(4, |n| n.get())
            .min(16);
        ClusterConfig {
            machines: 40,
            reducers: None,
            per_job_overhead_s: 10.0,
            map_bytes_per_s: 50.0e6,
            shuffle_bytes_per_s: 25.0e6,
            reduce_bytes_per_s: 50.0e6,
            reducer_memory_bytes: None,
            cluster_capacity_bytes: None,
            threads,
            fault_plan: None,
            scheduler: SchedulerMode::default(),
            dfs: DfsBackend::Memory,
            dfs_capacity_bytes: None,
            rewrite: RewritePolicy::default(),
        }
    }
}

impl ClusterConfig {
    /// Config with `machines` machines and everything else default.
    pub fn with_machines(machines: usize) -> Self {
        ClusterConfig {
            machines,
            ..Default::default()
        }
    }

    /// Number of reduce partitions for a job.
    pub fn num_reducers(&self) -> usize {
        self.reducers.unwrap_or(self.machines).max(1)
    }
}

/// Converts measured per-job counters into simulated wall-clock seconds.
///
/// The model is the standard bulk-synchronous decomposition of a MapReduce
/// job:
///
/// ```text
/// T = overhead + map_bytes/(M·map_bw) + shuffle_bytes/(M·net_bw)
///              + reduce_bytes/(M·red_bw) + skew·T_work
/// ```
///
/// `overhead` does not shrink with `M`, which is exactly why the paper's
/// Figure 8 flattens and why reducing job count (DRN → DRI) matters.
#[derive(Debug, Clone, Default)]
pub struct CostModel;

impl CostModel {
    /// Simulated seconds for one job under `cfg`, given its counters.
    pub fn job_time_s(cfg: &ClusterConfig, m: &JobMetrics) -> f64 {
        let machines = cfg.machines.max(1) as f64;
        let map_t = m.map_input_bytes as f64 / (machines * cfg.map_bytes_per_s);
        let shuffle_t = m.shuffle_bytes as f64 / (machines * cfg.shuffle_bytes_per_s);
        let reduce_t =
            (m.shuffle_bytes + m.reduce_output_bytes) as f64 / (machines * cfg.reduce_bytes_per_s);
        // Mild skew term: the largest reduce group serializes on one machine.
        let skew_t = m.max_group_bytes as f64 / cfg.reduce_bytes_per_s;
        // Recovery time (retry backoff, straggler delay) is serial with the
        // job: a task's retries delay its completion, not overlap it.
        cfg.per_job_overhead_s + map_t + shuffle_t + reduce_t + skew_t + m.recovery_sim_time_s
    }
}

/// A handle to the simulated cluster: configuration plus accumulated
/// metrics. Jobs are submitted through [`crate::job::run_job`].
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    dfs: Dfs,
    metrics: Mutex<RunMetrics>,
    batch_reports: Mutex<Vec<BatchReport>>,
    pool: OnceLock<WorkerPool>,
    epoch: Instant,
    alloc_proxy_bytes: AtomicUsize,
    #[cfg(feature = "race-detect")]
    races: Mutex<Vec<crate::race::RaceReport>>,
}

impl Cluster {
    /// Create a cluster with the given configuration.
    ///
    /// Panics if a durable DFS backend fails to open its store directory
    /// — the fallible form is [`Cluster::try_new`]. Memory-backed
    /// configurations (the default) cannot fail.
    pub fn new(config: ClusterConfig) -> Self {
        Cluster::try_new(config).expect("failed to open the cluster's DFS backend")
    }

    /// Create a cluster, surfacing durable-backend open failures as
    /// [`crate::MrError::StorageFailed`] instead of panicking.
    pub fn try_new(config: ClusterConfig) -> crate::Result<Self> {
        // A durable backend without its own memory budget inherits the
        // cluster's per-machine budgets: spilling starts where the
        // simulated cluster's aggregate reducer memory ends.
        let backend = match &config.dfs {
            DfsBackend::Durable(cfg) if cfg.memory_budget_bytes.is_none() => {
                let mut cfg = cfg.clone();
                cfg.memory_budget_bytes = config
                    .reducer_memory_bytes
                    .map(|per_machine| per_machine.saturating_mul(config.machines.max(1)));
                DfsBackend::Durable(cfg)
            }
            other => other.clone(),
        };
        let dfs = Dfs::from_backend(&backend, config.dfs_capacity_bytes)?;
        Ok(Cluster {
            config,
            dfs,
            metrics: Mutex::new(RunMetrics::default()),
            batch_reports: Mutex::new(Vec::new()),
            pool: OnceLock::new(),
            epoch: Instant::now(),
            alloc_proxy_bytes: AtomicUsize::new(0),
            #[cfg(feature = "race-detect")]
            races: Mutex::new(Vec::new()),
        })
    }

    /// Cluster with default (paper-testbed-like) configuration.
    pub fn with_defaults() -> Self {
        Cluster::new(ClusterConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The cluster-owned DFS, built from [`ClusterConfig::dfs`]. Drivers
    /// that persist datasets across jobs (tensors, per-sweep factors)
    /// should store them here so a durable backend can make them survive
    /// a process restart. Standalone `Dfs::new()` instances remain valid
    /// for callers that want private storage.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The persistent worker pool backing this cluster's jobs, created on
    /// first use. The pool holds `threads - 1` threads because the thread
    /// submitting a job always participates as an executor; with
    /// `threads <= 1` the pool is empty and jobs run inline.
    pub fn pool(&self) -> &WorkerPool {
        self.pool
            .get_or_init(|| WorkerPool::new(self.config.threads.saturating_sub(1)))
    }

    /// Record a finished job's metrics.
    pub(crate) fn record(&self, job: JobMetrics) {
        self.metrics
            .lock()
            .expect("metrics lock poisoned")
            .push(job);
    }

    /// Amend the most recently recorded job's metrics (the pipeline layer
    /// attributes DFS retries and lineage recoveries to the job they
    /// delayed). No-op when no job has run.
    pub(crate) fn annotate_last(&self, f: impl FnOnce(&mut JobMetrics)) {
        let mut guard = self.metrics.lock().expect("metrics lock poisoned");
        if let Some(last) = guard.jobs.last_mut() {
            f(last);
        }
    }

    /// Snapshot of all metrics so far.
    pub fn metrics(&self) -> RunMetrics {
        self.metrics.lock().expect("metrics lock poisoned").clone()
    }

    /// Clear accumulated metrics (e.g. between experiment repetitions).
    pub fn reset_metrics(&self) {
        *self.metrics.lock().expect("metrics lock poisoned") = RunMetrics::default();
    }

    /// Metrics accumulated since `mark` jobs had run; used to attribute jobs
    /// to a phase of an algorithm.
    pub fn metrics_since(&self, mark: usize) -> RunMetrics {
        let all = self.metrics.lock().expect("metrics lock poisoned");
        RunMetrics {
            jobs: all.jobs[mark.min(all.jobs.len())..].to_vec(),
        }
    }

    /// Number of jobs run so far (for use with [`Cluster::metrics_since`]).
    pub fn jobs_run(&self) -> usize {
        self.metrics
            .lock()
            .expect("metrics lock poisoned")
            .total_jobs()
    }

    /// Seconds since this cluster was created — the timeline that
    /// [`JobMetrics::started_s`]/[`JobMetrics::finished_s`] stamps live on.
    pub fn since_epoch(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Record a finished scheduler batch's concurrency report.
    pub(crate) fn record_batch(&self, report: BatchReport) {
        self.batch_reports
            .lock()
            .expect("batch reports lock poisoned")
            .push(report);
    }

    /// Concurrency reports for every completed scheduler batch, in
    /// completion order. Kept out of [`Cluster::metrics`] because host
    /// scheduling decides these numbers — they vary run to run while the
    /// per-job counters stay bit-identical.
    pub fn batch_reports(&self) -> Vec<BatchReport> {
        self.batch_reports
            .lock()
            .expect("batch reports lock poisoned")
            .clone()
    }

    /// Record the dynamic race detector's findings for one completed
    /// batch run.
    #[cfg(feature = "race-detect")]
    pub(crate) fn record_races(&self, reports: Vec<crate::race::RaceReport>) {
        self.races
            .lock()
            .expect("race reports lock poisoned")
            .extend(reports);
    }

    /// Every race the dynamic detector flagged on this cluster so far.
    /// Only exists under the `race-detect` feature; the chaos harness
    /// cross-validates this against the static certification.
    #[cfg(feature = "race-detect")]
    pub fn race_reports(&self) -> Vec<crate::race::RaceReport> {
        self.races
            .lock()
            .expect("race reports lock poisoned")
            .clone()
    }

    /// Charge arena-buffer reservations to the allocation high-water
    /// proxy; called once per job with the task-summed total.
    pub(crate) fn charge_alloc_proxy(&self, bytes: usize) {
        self.alloc_proxy_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Cumulative allocation high-water proxy: bytes reserved by every
    /// job's columnar map/reduce buffers at peak fill, summed over all
    /// jobs run so far. Observability only — like
    /// [`Cluster::batch_reports`], this lives outside [`Cluster::metrics`]
    /// because it reflects host memory behaviour (capacities, growth
    /// doubling), not the simulated cluster's bit-identical counters.
    pub fn alloc_proxy_bytes(&self) -> usize {
        self.alloc_proxy_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_sane() {
        let c = ClusterConfig::default();
        assert_eq!(c.machines, 40);
        assert!(c.per_job_overhead_s > 0.0);
        assert!(c.num_reducers() >= 1);
    }

    #[test]
    fn cost_model_overhead_floor() {
        let cfg = ClusterConfig::default();
        let m = JobMetrics::default();
        let t = CostModel::job_time_s(&cfg, &m);
        assert!((t - cfg.per_job_overhead_s).abs() < 1e-9);
    }

    #[test]
    fn cost_model_scales_with_machines() {
        let m = JobMetrics {
            map_input_bytes: 1_000_000_000,
            shuffle_bytes: 1_000_000_000,
            ..Default::default()
        };
        let t10 = CostModel::job_time_s(&ClusterConfig::with_machines(10), &m);
        let t40 = CostModel::job_time_s(&ClusterConfig::with_machines(40), &m);
        assert!(t40 < t10);
        // Sub-linear speedup because of the fixed overhead.
        let speedup = t10 / t40;
        assert!(speedup > 1.0 && speedup < 4.0, "speedup={speedup}");
    }

    #[test]
    fn metrics_accumulate_and_reset() {
        let c = Cluster::with_defaults();
        assert_eq!(c.jobs_run(), 0);
        c.record(JobMetrics {
            name: "x".into(),
            ..Default::default()
        });
        c.record(JobMetrics {
            name: "y".into(),
            ..Default::default()
        });
        assert_eq!(c.jobs_run(), 2);
        let since = c.metrics_since(1);
        assert_eq!(since.total_jobs(), 1);
        assert_eq!(since.jobs[0].name, "y");
        c.reset_metrics();
        assert_eq!(c.jobs_run(), 0);
    }
}
