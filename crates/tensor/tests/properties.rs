//! Property-based tests for tensor invariants.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_linalg::Mat;
use haten2_tensor::ops::{
    collapse, cross_merge, mode_hadamard_mat, mode_hadamard_vec, mttkrp_dense, pairwise_merge, ttm,
    ttv,
};
use haten2_tensor::{CooTensor3, DynTensor, Entry3};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Strategy: a small random sparse tensor (dims 2..6 per mode, up to 24 nnz).
fn coo_strategy() -> impl Strategy<Value = CooTensor3> {
    (2u64..6, 2u64..6, 2u64..6, 1usize..24, any::<u64>()).prop_map(|(i, j, k, n, seed)| {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..n)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..i),
                    rng.gen_range(0..j),
                    rng.gen_range(0..k),
                    rng.gen_range(-2.0..2.0f64),
                )
            })
            .collect();
        CooTensor3::from_entries([i, j, k], entries).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bin_is_idempotent(t in coo_strategy()) {
        let b = t.bin();
        prop_assert_eq!(b.bin(), b.clone());
        prop_assert_eq!(b.nnz(), t.nnz());
    }

    #[test]
    fn matricize_preserves_frobenius(t in coo_strategy()) {
        for mode in 0..3 {
            let m = t.matricize(mode).unwrap().to_dense().unwrap();
            prop_assert!((m.fro_norm() - t.fro_norm()).abs() < 1e-10);
        }
    }

    #[test]
    fn ttv_linear_in_vector(t in coo_strategy(), seed in any::<u64>()) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let jd = t.dims()[1] as usize;
        let v1: Vec<f64> = (0..jd).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let v2: Vec<f64> = (0..jd).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let sum: Vec<f64> = v1.iter().zip(&v2).map(|(a, b)| a + b).collect();
        let lhs = ttv(&t, 1, &sum).unwrap();
        let r1 = ttv(&t, 1, &v1).unwrap();
        let r2 = ttv(&t, 1, &v2).unwrap();
        // lhs == r1 + r2 elementwise over the union of supports.
        for e in lhs.entries() {
            let expect = r1.get(e.i, e.j, e.k) + r2.get(e.i, e.j, e.k);
            prop_assert!((e.v - expect).abs() < 1e-10);
        }
        for e in r1.entries() {
            let expect = lhs.get(e.i, e.j, e.k) - r2.get(e.i, e.j, e.k);
            prop_assert!((e.v - expect).abs() < 1e-10);
        }
    }

    #[test]
    fn hadamard_then_collapse_equals_ttv(t in coo_strategy(), mode in 0usize..3, seed in any::<u64>()) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let d = t.dims()[mode] as usize;
        let v: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let lhs = ttv(&t, mode, &v).unwrap();
        let rhs = collapse(&mode_hadamard_vec(&t, mode, &v).unwrap(), mode).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn lemma1_cross_merge_equivalence(t in coo_strategy(), seed in any::<u64>()) {
        // X ×₂ Bᵀ ×₃ Cᵀ == CrossMerge(X *₂ Bᵀ, bin(X) *₃ Cᵀ)₍₁₎
        let mut rng = StdRng::seed_from_u64(seed);
        let (q, r) = (2usize, 2usize);
        let b = Mat::random(q, t.dims()[1] as usize, &mut rng);
        let c = Mat::random(r, t.dims()[2] as usize, &mut rng);
        let lhs = ttm(&ttm(&t, 1, &b).unwrap(), 2, &c).unwrap();
        let merged = cross_merge(
            &mode_hadamard_mat(&t, 1, &b).unwrap(),
            &mode_hadamard_mat(&t.bin(), 2, &c).unwrap(),
        ).unwrap();
        for (idx, v) in merged.iter() {
            prop_assert!((lhs.get(idx[0], idx[1], idx[2]) - v).abs() < 1e-9);
        }
        prop_assert_eq!(merged.nnz(), lhs.nnz());
    }

    #[test]
    fn lemma2_pairwise_merge_equivalence(t in coo_strategy(), seed in any::<u64>()) {
        // X₍₁₎(C ⊙ B) == PairwiseMerge(X *₂ Bᵀ, bin(X) *₃ Cᵀ)₍₁₎
        let mut rng = StdRng::seed_from_u64(seed);
        let r = 3usize;
        let b = Mat::random(t.dims()[1] as usize, r, &mut rng);
        let c = Mat::random(t.dims()[2] as usize, r, &mut rng);
        let lhs = mttkrp_dense(&t, 0, [&b, &b, &c]).unwrap();
        let merged = pairwise_merge(
            &mode_hadamard_mat(&t, 1, &b.transpose()).unwrap(),
            &mode_hadamard_mat(&t.bin(), 2, &c.transpose()).unwrap(),
        ).unwrap();
        for (idx, v) in merged.iter() {
            prop_assert!((lhs.get(idx[0] as usize, idx[1] as usize) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn mttkrp_matches_matricized_khatri_rao_all_modes(t in coo_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = 2usize;
        let a = Mat::random(t.dims()[0] as usize, r, &mut rng);
        let b = Mat::random(t.dims()[1] as usize, r, &mut rng);
        let c = Mat::random(t.dims()[2] as usize, r, &mut rng);
        // mode 0: X₍₁₎(C ⊙ B); mode 1: X₍₂₎(C ⊙ A); mode 2: X₍₃₎(B ⊙ A)
        let pairs = [(0usize, &c, &b), (1, &c, &a), (2, &b, &a)];
        for (mode, left, right) in pairs {
            let fast = mttkrp_dense(&t, mode, [&a, &b, &c]).unwrap();
            let xm = t.matricize(mode).unwrap().to_dense().unwrap();
            let kr = left.khatri_rao(right).unwrap();
            let slow = xm.matmul(&kr).unwrap();
            prop_assert!(fast.approx_eq(&slow, 1e-9), "mode {mode}");
        }
    }

    #[test]
    fn dyn_collapse_reduces_norm_count(t in coo_strategy()) {
        let d = DynTensor::from_coo3(&t);
        let c = d.collapse(1).unwrap();
        prop_assert!(c.nnz() <= d.nnz());
        // Total mass preserved.
        let sum_before: f64 = (0..d.nnz()).map(|e| d.value(e)).sum();
        let sum_after: f64 = (0..c.nnz()).map(|e| c.value(e)).sum();
        prop_assert!((sum_before - sum_after).abs() < 1e-10);
    }

    #[test]
    fn io_roundtrip(t in coo_strategy()) {
        let mut buf = Vec::new();
        haten2_tensor::io::write_coo3(&t, &mut buf).unwrap();
        let back = haten2_tensor::io::read_coo3(t.dims(), &buf[..]).unwrap();
        prop_assert_eq!(back.nnz(), t.nnz());
        for e in t.entries() {
            prop_assert!((back.get(e.i, e.j, e.k) - e.v).abs() < 1e-9);
        }
    }
}
