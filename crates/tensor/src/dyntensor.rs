//! N-way sparse tensors in coordinate format.
//!
//! The paper generalizes PARAFAC/Tucker and all HaTen2 operations to N-way
//! tensors; `DynTensor` is the order-generic representation. Indices are
//! stored flattened (`nnz × order` in one `Vec<u64>`) to avoid per-entry
//! allocations.

use crate::{CooTensor3, Result, SparseMat, TensorError};
use std::collections::HashMap;

/// An N-way sparse tensor `X ∈ ℝ^{I₁×…×I_N}`.
///
/// ```
/// use haten2_tensor::DynTensor;
///
/// // A 4-way (src-ip, dst-ip, port, hour) log tensor.
/// let mut t = DynTensor::new(vec![10, 10, 5, 24]);
/// t.push(&[3, 7, 0, 13], 2.0).unwrap();
/// t.push(&[3, 7, 0, 13], 1.0).unwrap(); // duplicate coordinate
/// let t = t.coalesce();
/// assert_eq!(t.nnz(), 1);
/// assert_eq!(t.get(&[3, 7, 0, 13]), 3.0);
/// // Collapse the hour mode (paper Definition 2): order drops to 3.
/// let daily = t.collapse(3).unwrap();
/// assert_eq!(daily.order(), 3);
/// assert_eq!(daily.get(&[3, 7, 0]), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DynTensor {
    dims: Vec<u64>,
    /// Flattened indices: entry `e` occupies `indices[e*order .. (e+1)*order]`.
    indices: Vec<u64>,
    values: Vec<f64>,
}

impl DynTensor {
    /// Empty tensor with the given dimensions (order = `dims.len()`).
    pub fn new(dims: Vec<u64>) -> Self {
        DynTensor {
            dims,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Tensor order (number of modes).
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Dimensions.
    #[inline]
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Append an entry. Zero values are dropped; indices are bounds-checked.
    pub fn push(&mut self, idx: &[u64], v: f64) -> Result<()> {
        if idx.len() != self.order() {
            return Err(TensorError::ShapeMismatch(format!(
                "push: {}-way index into order-{} tensor",
                idx.len(),
                self.order()
            )));
        }
        for (d, (&i, &dim)) in idx.iter().zip(&self.dims).enumerate() {
            if i >= dim {
                let _ = d;
                return Err(TensorError::IndexOutOfBounds {
                    index: format!("{idx:?}"),
                    dims: format!("{:?}", self.dims),
                });
            }
        }
        if v != 0.0 {
            self.indices.extend_from_slice(idx);
            self.values.push(v);
        }
        Ok(())
    }

    /// Index slice of entry `e`.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, e: usize) -> &[u64] {
        let n = self.order();
        &self.indices[e * n..(e + 1) * n]
    }

    /// Value of entry `e`.
    #[inline]
    pub fn value(&self, e: usize) -> f64 {
        self.values[e]
    }

    /// Iterate `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[u64], f64)> + '_ {
        (0..self.nnz()).map(move |e| (self.index(e), self.value(e)))
    }

    /// Merge duplicate coordinates (summing values) and drop zeros.
    pub fn coalesce(&self) -> DynTensor {
        let n = self.order();
        let mut map: HashMap<Vec<u64>, f64> = HashMap::with_capacity(self.nnz());
        for e in 0..self.nnz() {
            *map.entry(self.index(e).to_vec()).or_insert(0.0) += self.values[e];
        }
        let mut keys: Vec<Vec<u64>> = map.keys().cloned().collect();
        keys.sort();
        let mut out = DynTensor::new(self.dims.clone());
        for k in keys {
            let v = map[&k];
            if v != 0.0 {
                out.indices.extend_from_slice(&k);
                out.values.push(v);
            }
        }
        debug_assert_eq!(out.indices.len(), out.values.len() * n);
        out
    }

    /// `bin(X)`: all nonzeros become 1.
    pub fn bin(&self) -> DynTensor {
        DynTensor {
            dims: self.dims.clone(),
            indices: self.indices.clone(),
            values: vec![1.0; self.values.len()],
        }
    }

    /// Point lookup (O(nnz); tests only).
    pub fn get(&self, idx: &[u64]) -> f64 {
        (0..self.nnz())
            .filter(|&e| self.index(e) == idx)
            .map(|e| self.values[e])
            .sum()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Convert a 3-way `DynTensor` into a [`CooTensor3`].
    pub fn to_coo3(&self) -> Result<CooTensor3> {
        if self.order() != 3 {
            return Err(TensorError::ShapeMismatch(format!(
                "to_coo3 on order-{} tensor",
                self.order()
            )));
        }
        let dims = [self.dims[0], self.dims[1], self.dims[2]];
        let entries = (0..self.nnz())
            .map(|e| {
                let ix = self.index(e);
                crate::Entry3::new(ix[0], ix[1], ix[2], self.values[e])
            })
            .collect();
        CooTensor3::from_entries(dims, entries)
    }

    /// Lift a [`CooTensor3`] into the order-generic representation.
    pub fn from_coo3(t: &CooTensor3) -> DynTensor {
        let d = t.dims();
        let mut out = DynTensor::new(vec![d[0], d[1], d[2]]);
        for e in t.entries() {
            out.indices.extend_from_slice(&[e.i, e.j, e.k]);
            out.values.push(e.v);
        }
        out
    }

    /// n-mode vector Hadamard product `X *̄ₙ v` (paper Definition 1):
    /// multiply each entry by `v[iₙ]`. Shape is unchanged.
    pub fn mode_hadamard_vec(&self, mode: usize, v: &[f64]) -> Result<DynTensor> {
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        if v.len() != self.dims[mode] as usize {
            return Err(TensorError::ShapeMismatch(format!(
                "mode_hadamard_vec: vector length {} vs dim {}",
                v.len(),
                self.dims[mode]
            )));
        }
        let mut out = DynTensor::new(self.dims.clone());
        for e in 0..self.nnz() {
            let idx = self.index(e);
            let nv = self.values[e] * v[idx[mode] as usize];
            if nv != 0.0 {
                out.indices.extend_from_slice(idx);
                out.values.push(nv);
            }
        }
        Ok(out)
    }

    /// `Collapse(X)ₙ` (paper Definition 2): sum out mode `n`. The result has
    /// order `N-1`.
    pub fn collapse(&self, mode: usize) -> Result<DynTensor> {
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        let new_dims: Vec<u64> = self
            .dims
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != mode)
            .map(|(_, &v)| v)
            .collect();
        let mut acc = DynTensor::new(new_dims);
        let mut key = Vec::with_capacity(self.order() - 1);
        for e in 0..self.nnz() {
            key.clear();
            for (d, &i) in self.index(e).iter().enumerate() {
                if d != mode {
                    key.push(i);
                }
            }
            acc.indices.extend_from_slice(&key);
            acc.values.push(self.values[e]);
        }
        Ok(acc.coalesce())
    }

    /// Mode-`n` matricization as a sparse matrix: rows indexed by mode `n`,
    /// columns by the mixed-radix combination of the remaining modes (in
    /// ascending mode order, first mode fastest) — the N-way analogue of
    /// [`CooTensor3::matricize`].
    pub fn matricize(&self, mode: usize) -> Result<SparseMat> {
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        let rows = self.dims[mode];
        let other: Vec<usize> = (0..self.order()).filter(|&m| m != mode).collect();
        let cols: u64 = other
            .iter()
            .try_fold(1u64, |acc, &m| acc.checked_mul(self.dims[m].max(1)))
            .ok_or_else(|| {
                TensorError::ShapeMismatch(format!(
                    "matricize mode {mode}: column count overflows u64 for dims {:?}",
                    self.dims
                ))
            })?;
        let mut triples = Vec::with_capacity(self.nnz());
        for e in 0..self.nnz() {
            let idx = self.index(e);
            let mut col = 0u64;
            let mut stride = 1u64;
            for &m in &other {
                col += idx[m] * stride;
                stride *= self.dims[m].max(1);
            }
            triples.push((idx[mode], col, self.values[e]));
        }
        SparseMat::from_triples(rows, cols, triples)
    }

    /// n-mode **matrix** Hadamard product `X *ₙ U` (paper Definition 5)
    /// with `U ∈ ℝ^{Q×Iₙ}` supplied row-major as a slice of rows. The result
    /// has order `N+1`: dims `I₁×…×I_N×Q` where
    /// `(X *ₙ U)[i₁..i_N, q] = X[i₁..i_N] · U[q, iₙ]`.
    pub fn mode_hadamard_mat(&self, mode: usize, u_rows: &[Vec<f64>]) -> Result<DynTensor> {
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        let q_dim = u_rows.len();
        for row in u_rows {
            if row.len() != self.dims[mode] as usize {
                return Err(TensorError::ShapeMismatch(format!(
                    "mode_hadamard_mat: row length {} vs dim {}",
                    row.len(),
                    self.dims[mode]
                )));
            }
        }
        let mut dims = self.dims.clone();
        dims.push(q_dim as u64);
        let mut out = DynTensor::new(dims);
        let mut key = Vec::with_capacity(self.order() + 1);
        for e in 0..self.nnz() {
            let idx = self.index(e);
            let v = self.values[e];
            for (q, row) in u_rows.iter().enumerate() {
                let nv = v * row[idx[mode] as usize];
                if nv != 0.0 {
                    key.clear();
                    key.extend_from_slice(idx);
                    key.push(q as u64);
                    out.indices.extend_from_slice(&key);
                    out.values.push(nv);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Entry3;

    fn sample4() -> DynTensor {
        let mut t = DynTensor::new(vec![2, 2, 2, 2]);
        t.push(&[0, 0, 0, 0], 1.0).unwrap();
        t.push(&[1, 1, 0, 1], 2.0).unwrap();
        t.push(&[1, 0, 1, 1], 3.0).unwrap();
        t
    }

    #[test]
    fn push_validates() {
        let mut t = DynTensor::new(vec![2, 2]);
        assert!(t.push(&[0], 1.0).is_err());
        assert!(t.push(&[2, 0], 1.0).is_err());
        assert!(t.push(&[1, 1], 1.0).is_ok());
        t.push(&[0, 0], 0.0).unwrap();
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn coalesce_merges() {
        let mut t = DynTensor::new(vec![2, 2]);
        t.push(&[0, 1], 1.0).unwrap();
        t.push(&[0, 1], 2.0).unwrap();
        t.push(&[1, 0], -1.0).unwrap();
        t.push(&[1, 0], 1.0).unwrap();
        let c = t.coalesce();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(&[0, 1]), 3.0);
    }

    #[test]
    fn coo3_roundtrip() {
        let coo = CooTensor3::from_entries(
            [2, 3, 2],
            vec![Entry3::new(0, 1, 1, 2.0), Entry3::new(1, 2, 0, -1.0)],
        )
        .unwrap();
        let dynt = DynTensor::from_coo3(&coo);
        assert_eq!(dynt.order(), 3);
        let back = dynt.to_coo3().unwrap();
        assert_eq!(back, coo);
    }

    #[test]
    fn to_coo3_rejects_other_orders() {
        assert!(sample4().to_coo3().is_err());
    }

    #[test]
    fn mode_hadamard_vec_multiplies() {
        let t = sample4();
        let r = t.mode_hadamard_vec(1, &[10.0, 100.0]).unwrap();
        assert_eq!(r.get(&[0, 0, 0, 0]), 10.0);
        assert_eq!(r.get(&[1, 1, 0, 1]), 200.0);
        assert_eq!(r.get(&[1, 0, 1, 1]), 30.0);
    }

    #[test]
    fn mode_hadamard_vec_drops_zeroed() {
        let t = sample4();
        let r = t.mode_hadamard_vec(0, &[0.0, 1.0]).unwrap();
        assert_eq!(r.nnz(), 2); // entry at i=0 is annihilated
    }

    #[test]
    fn collapse_sums_mode() {
        let t = sample4();
        let c = t.collapse(3).unwrap();
        assert_eq!(c.order(), 3);
        assert_eq!(c.get(&[0, 0, 0]), 1.0);
        assert_eq!(c.get(&[1, 1, 0]), 2.0);
        assert_eq!(c.get(&[1, 0, 1]), 3.0);
        // Collapsing a mode where two entries share remaining coords sums them.
        let mut u = DynTensor::new(vec![2, 2]);
        u.push(&[0, 0], 1.0).unwrap();
        u.push(&[1, 0], 2.0).unwrap();
        let c = u.collapse(0).unwrap();
        assert_eq!(c.order(), 1);
        assert_eq!(c.get(&[0]), 3.0);
    }

    #[test]
    fn mode_hadamard_mat_extends_order() {
        let mut t = DynTensor::new(vec![2, 2]);
        t.push(&[0, 1], 2.0).unwrap();
        // U is 3x2 (Q=3 rows over the mode-1 dimension).
        let u = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![0.0, 0.0]];
        let r = t.mode_hadamard_mat(1, &u).unwrap();
        assert_eq!(r.order(), 3);
        assert_eq!(r.dims(), &[2, 2, 3]);
        assert_eq!(r.get(&[0, 1, 0]), 20.0);
        assert_eq!(r.get(&[0, 1, 1]), 40.0);
        assert_eq!(r.get(&[0, 1, 2]), 0.0);
        assert_eq!(r.nnz(), 2);
    }

    #[test]
    fn mode_hadamard_mat_matches_repeated_vec() {
        // Definition 5: (X *ₙ U)_{..q} = X *̄ₙ u_q.
        let t = sample4();
        let u = vec![vec![3.0, -1.0], vec![0.5, 2.0]];
        let m = t.mode_hadamard_mat(2, &u).unwrap();
        for (q, row) in u.iter().enumerate() {
            let v = t.mode_hadamard_vec(2, row).unwrap();
            for e in 0..v.nnz() {
                let mut idx = v.index(e).to_vec();
                idx.push(q as u64);
                assert_eq!(m.get(&idx), v.value(e));
            }
        }
    }

    #[test]
    fn bin_and_norm() {
        let t = sample4();
        let b = t.bin();
        assert_eq!(b.get(&[1, 0, 1, 1]), 1.0);
        assert!((t.fro_norm() - (1.0f64 + 4.0 + 9.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn invalid_modes_rejected() {
        let t = sample4();
        assert!(t.collapse(4).is_err());
        assert!(t.mode_hadamard_vec(4, &[1.0]).is_err());
        assert!(t.mode_hadamard_mat(4, &[vec![1.0]]).is_err());
        assert!(t.matricize(4).is_err());
    }

    #[test]
    fn matricize_matches_coo3_convention() {
        // For 3-way tensors the DynTensor matricization must agree with
        // CooTensor3::matricize.
        let coo = CooTensor3::from_entries(
            [2, 3, 4],
            vec![
                Entry3::new(1, 2, 3, 5.0),
                Entry3::new(0, 1, 0, -1.0),
                Entry3::new(1, 0, 2, 2.5),
            ],
        )
        .unwrap();
        let dynt = DynTensor::from_coo3(&coo);
        for mode in 0..3 {
            let a = coo.matricize(mode).unwrap();
            let b = dynt.matricize(mode).unwrap();
            assert_eq!(a, b, "mode {mode}");
        }
    }

    #[test]
    fn matricize_4way_shape_and_mass() {
        let t = sample4();
        let m = t.matricize(1).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 8);
        assert_eq!(m.nnz(), t.nnz());
        let mass: f64 = m.triples().iter().map(|&(_, _, v)| v * v).sum();
        assert!((mass.sqrt() - t.fro_norm()).abs() < 1e-12);
    }
}
