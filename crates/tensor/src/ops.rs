//! Reference (single-machine) implementations of every operation the paper
//! defines.
//!
//! These are the semantic ground truth for the distributed kernels in
//! `haten2-core`: each MapReduce job is tested for exact agreement with the
//! corresponding function here. They are written for clarity, not scale.

use crate::{CooTensor3, DynTensor, Entry3, Result, TensorError};
use haten2_linalg::Mat;
use std::collections::HashMap;

/// n-mode vector product `X ×̄ₙ v`: contract mode `n` against `v`.
/// The contracted mode keeps size 1 (index 0), so the output remains 3-way —
/// matching how HaTen2's intermediate tensors `T_q` keep their shape.
pub fn ttv(t: &CooTensor3, mode: usize, v: &[f64]) -> Result<CooTensor3> {
    if mode > 2 {
        return Err(TensorError::InvalidMode { mode, order: 3 });
    }
    let dims = t.dims();
    if v.len() != dims[mode] as usize {
        return Err(TensorError::ShapeMismatch(format!(
            "ttv: vector length {} vs mode-{mode} dim {}",
            v.len(),
            dims[mode]
        )));
    }
    let mut acc: HashMap<(u64, u64, u64), f64> = HashMap::new();
    for e in t.entries() {
        let coef = v[e.index(mode) as usize];
        if coef == 0.0 {
            continue;
        }
        let mut idx = [e.i, e.j, e.k];
        idx[mode] = 0;
        *acc.entry((idx[0], idx[1], idx[2])).or_insert(0.0) += e.v * coef;
    }
    let mut out_dims = dims;
    out_dims[mode] = 1;
    CooTensor3::from_entries(
        out_dims,
        acc.into_iter()
            .map(|((i, j, k), v)| Entry3::new(i, j, k, v))
            .collect(),
    )
}

/// n-mode matrix product `X ×ₙ U` with `U ∈ ℝ^{Q×Iₙ}`: mode `n`'s dimension
/// becomes `Q`. This is the operation whose nonzero count Lemma 3 estimates
/// as `nnz(X)·Q`.
pub fn ttm(t: &CooTensor3, mode: usize, u: &Mat) -> Result<CooTensor3> {
    if mode > 2 {
        return Err(TensorError::InvalidMode { mode, order: 3 });
    }
    let dims = t.dims();
    if u.cols() != dims[mode] as usize {
        return Err(TensorError::ShapeMismatch(format!(
            "ttm: matrix is {}x{}, mode-{mode} dim {}",
            u.rows(),
            u.cols(),
            dims[mode]
        )));
    }
    let q_dim = u.rows();
    let mut acc: HashMap<(u64, u64, u64), f64> = HashMap::new();
    for e in t.entries() {
        let src = e.index(mode) as usize;
        for q in 0..q_dim {
            let coef = u.get(q, src);
            if coef == 0.0 {
                continue;
            }
            let mut idx = [e.i, e.j, e.k];
            idx[mode] = q as u64;
            *acc.entry((idx[0], idx[1], idx[2])).or_insert(0.0) += e.v * coef;
        }
    }
    let mut out_dims = dims;
    out_dims[mode] = q_dim as u64;
    CooTensor3::from_entries(
        out_dims,
        acc.into_iter()
            .map(|((i, j, k), v)| Entry3::new(i, j, k, v))
            .collect(),
    )
}

/// n-mode vector Hadamard product `X *̄ₙ v` (Definition 1): elementwise
/// multiply along mode `n`, shape unchanged.
pub fn mode_hadamard_vec(t: &CooTensor3, mode: usize, v: &[f64]) -> Result<CooTensor3> {
    if mode > 2 {
        return Err(TensorError::InvalidMode { mode, order: 3 });
    }
    let dims = t.dims();
    if v.len() != dims[mode] as usize {
        return Err(TensorError::ShapeMismatch(format!(
            "mode_hadamard_vec: vector length {} vs mode-{mode} dim {}",
            v.len(),
            dims[mode]
        )));
    }
    let entries = t
        .entries()
        .iter()
        .filter_map(|e| {
            let nv = e.v * v[e.index(mode) as usize];
            (nv != 0.0).then_some(Entry3 { v: nv, ..*e })
        })
        .collect();
    CooTensor3::from_entries(dims, entries)
}

/// `Collapse(X)ₙ` (Definition 2) specialised to 3-way tensors: sum out mode
/// `n`, keeping it as a size-1 mode so downstream code can stay 3-way.
pub fn collapse(t: &CooTensor3, mode: usize) -> Result<CooTensor3> {
    if mode > 2 {
        return Err(TensorError::InvalidMode { mode, order: 3 });
    }
    let mut acc: HashMap<(u64, u64, u64), f64> = HashMap::new();
    for e in t.entries() {
        let mut idx = [e.i, e.j, e.k];
        idx[mode] = 0;
        *acc.entry((idx[0], idx[1], idx[2])).or_insert(0.0) += e.v;
    }
    let mut dims = t.dims();
    dims[mode] = 1;
    CooTensor3::from_entries(
        dims,
        acc.into_iter()
            .map(|((i, j, k), v)| Entry3::new(i, j, k, v))
            .collect(),
    )
}

/// n-mode matrix Hadamard product `X *ₙ U` (Definition 5) with
/// `U ∈ ℝ^{Q×Iₙ}` given as a dense matrix. The result is 4-way:
/// `I×J×K×Q` with `(X *ₙ U)[i,j,k,q] = X[i,j,k]·U[q, idxₙ]`.
pub fn mode_hadamard_mat(t: &CooTensor3, mode: usize, u: &Mat) -> Result<DynTensor> {
    if mode > 2 {
        return Err(TensorError::InvalidMode { mode, order: 3 });
    }
    let dims = t.dims();
    if u.cols() != dims[mode] as usize {
        return Err(TensorError::ShapeMismatch(format!(
            "mode_hadamard_mat: matrix is {}x{}, mode-{mode} dim {}",
            u.rows(),
            u.cols(),
            dims[mode]
        )));
    }
    let rows: Vec<Vec<f64>> = (0..u.rows()).map(|q| u.row(q).to_vec()).collect();
    DynTensor::from_coo3(t).mode_hadamard_mat(mode, &rows)
}

/// `CrossMerge(T', T'')₍₀₎` (Definition 3, specialised to the 3-way Tucker
/// use in Lemma 1): given 4-way `T' ∈ ℝ^{I×J×K×Q}` and `T'' ∈ ℝ^{I×J×K×R}`,
/// produce `Y ∈ ℝ^{I×Q×R}` with
/// `Y(i,q,r) = Σ_{j,k} T'(i,j,k,q) · T''(i,j,k,r)`.
pub fn cross_merge(tq: &DynTensor, tr: &DynTensor) -> Result<DynTensor> {
    if tq.order() != 4 || tr.order() != 4 {
        return Err(TensorError::ShapeMismatch(format!(
            "cross_merge expects 4-way tensors, got orders {} and {}",
            tq.order(),
            tr.order()
        )));
    }
    if tq.dims()[..3] != tr.dims()[..3] {
        return Err(TensorError::ShapeMismatch(format!(
            "cross_merge base dims differ: {:?} vs {:?}",
            &tq.dims()[..3],
            &tr.dims()[..3]
        )));
    }
    let q_dim = tq.dims()[3];
    let r_dim = tr.dims()[3];
    let i_dim = tq.dims()[0];

    // Group T'' by base coordinate (i,j,k) -> [(r, v)].
    let mut by_base: HashMap<(u64, u64, u64), Vec<(u64, f64)>> = HashMap::new();
    for (idx, v) in tr.iter() {
        by_base
            .entry((idx[0], idx[1], idx[2]))
            .or_default()
            .push((idx[3], v));
    }

    let mut out = DynTensor::new(vec![i_dim, q_dim, r_dim]);
    let mut acc: HashMap<(u64, u64, u64), f64> = HashMap::new();
    for (idx, v) in tq.iter() {
        if let Some(rs) = by_base.get(&(idx[0], idx[1], idx[2])) {
            for &(r, w) in rs {
                *acc.entry((idx[0], idx[3], r)).or_insert(0.0) += v * w;
            }
        }
    }
    for ((i, q, r), v) in acc {
        out.push(&[i, q, r], v)?;
    }
    Ok(out.coalesce())
}

/// `PairwiseMerge(T', T'')₍₀₎` (Definition 4, specialised to the 3-way
/// PARAFAC use in Lemma 2): given 4-way `T', T'' ∈ ℝ^{I×J×K×R}`, produce
/// `Y ∈ ℝ^{I×R}` with `Y(i,r) = Σ_{j,k} T'(i,j,k,r) · T''(i,j,k,r)`.
pub fn pairwise_merge(ta: &DynTensor, tb: &DynTensor) -> Result<DynTensor> {
    if ta.order() != 4 || tb.order() != 4 {
        return Err(TensorError::ShapeMismatch(format!(
            "pairwise_merge expects 4-way tensors, got orders {} and {}",
            ta.order(),
            tb.order()
        )));
    }
    if ta.dims() != tb.dims() {
        return Err(TensorError::ShapeMismatch(format!(
            "pairwise_merge dims differ: {:?} vs {:?}",
            ta.dims(),
            tb.dims()
        )));
    }
    let i_dim = ta.dims()[0];
    let r_dim = ta.dims()[3];

    let mut by_full: HashMap<(u64, u64, u64, u64), f64> = HashMap::new();
    for (idx, v) in tb.iter() {
        *by_full
            .entry((idx[0], idx[1], idx[2], idx[3]))
            .or_insert(0.0) += v;
    }
    let mut acc: HashMap<(u64, u64), f64> = HashMap::new();
    for (idx, v) in ta.iter() {
        if let Some(&w) = by_full.get(&(idx[0], idx[1], idx[2], idx[3])) {
            *acc.entry((idx[0], idx[3])).or_insert(0.0) += v * w;
        }
    }
    let mut out = DynTensor::new(vec![i_dim, r_dim]);
    for ((i, r), v) in acc {
        out.push(&[i, r], v)?;
    }
    Ok(out.coalesce())
}

/// Dense MTTKRP reference: `X₍ₘₒ𝒹ₑ₎ · (⊙ of the other factors)`, i.e. for
/// mode 0: `M(i, r) = Σ_{j,k} X(i,j,k)·B(j,r)·C(k,r)`.
///
/// `factors` supplies the factor matrix of **every** mode (the one at
/// `mode` is ignored), each with `R` columns.
pub fn mttkrp_dense(t: &CooTensor3, mode: usize, factors: [&Mat; 3]) -> Result<Mat> {
    if mode > 2 {
        return Err(TensorError::InvalidMode { mode, order: 3 });
    }
    let dims = t.dims();
    let r_dim = factors[(mode + 1) % 3].cols();
    for (m, f) in factors.iter().enumerate() {
        if m == mode {
            continue;
        }
        if f.rows() != dims[m] as usize || f.cols() != r_dim {
            return Err(TensorError::ShapeMismatch(format!(
                "mttkrp: factor {m} is {}x{}, expected {}x{r_dim}",
                f.rows(),
                f.cols(),
                dims[m]
            )));
        }
    }
    let mut out = Mat::zeros(dims[mode] as usize, r_dim);
    let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
    for e in t.entries() {
        let row = e.index(mode) as usize;
        let f0 = factors[others[0]].row(e.index(others[0]) as usize);
        let f1 = factors[others[1]].row(e.index(others[1]) as usize);
        let dst = out.row_mut(row);
        for r in 0..r_dim {
            dst[r] += e.v * f0[r] * f1[r];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseTensor3;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_coo(dims: [u64; 3], nnz: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..nnz)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..dims[0]),
                    rng.gen_range(0..dims[1]),
                    rng.gen_range(0..dims[2]),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    #[test]
    fn ttv_matches_dense() {
        let t = random_coo([4, 5, 3], 20, 1);
        let v: Vec<f64> = (0..5).map(|x| x as f64 - 2.0).collect();
        let y = ttv(&t, 1, &v).unwrap();
        let dense = DenseTensor3::from_coo(&t).unwrap();
        for i in 0..4u64 {
            for k in 0..3u64 {
                let expect: f64 = (0..5)
                    .map(|j| dense.get(i as usize, j, k as usize) * v[j])
                    .sum();
                assert!((y.get(i, 0, k) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ttm_matches_dense_ttm() {
        let t = random_coo([4, 5, 3], 25, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let u = Mat::random(2, 5, &mut rng); // Q=2 over mode 1
        let y = ttm(&t, 1, &u).unwrap();
        let dense = DenseTensor3::from_coo(&t).unwrap();
        let expect = dense.ttm(1, &u).unwrap();
        let y_dense = DenseTensor3::from_coo(&y).unwrap();
        assert!(y_dense.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn ttm_is_q_stacked_ttvs() {
        // HaTen2-Naive computes X ×ₙ Bᵀ as Q separate X ×̄ₙ b_q products.
        let t = random_coo([3, 4, 3], 15, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let u = Mat::random(3, 4, &mut rng);
        let y = ttm(&t, 1, &u).unwrap();
        for q in 0..3usize {
            let row: Vec<f64> = u.row(q).to_vec();
            let tq = ttv(&t, 1, &row).unwrap();
            for e in tq.entries() {
                assert!((y.get(e.i, q as u64, e.k) - e.v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn decoupling_identity_hadamard_then_collapse_equals_ttv() {
        // The DNN idea: X ×̄ₙ v = Collapse(X *̄ₙ v)ₙ.
        let t = random_coo([4, 6, 5], 30, 6);
        let v: Vec<f64> = (0..6).map(|x| (x as f64).sin() + 1.5).collect();
        let lhs = ttv(&t, 1, &v).unwrap();
        let rhs = collapse(&mode_hadamard_vec(&t, 1, &v).unwrap(), 1).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn lemma1_cross_merge_equals_sequential_ttm() {
        // Lemma 1: X ×₂ Bᵀ ×₃ Cᵀ == CrossMerge(X *₂ Bᵀ, bin(X) *₃ Cᵀ)₍₁₎.
        let t = random_coo([3, 4, 5], 25, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let q_dim = 2;
        let r_dim = 3;
        let b = Mat::random(q_dim, 4, &mut rng); // Bᵀ: Q×J
        let c = Mat::random(r_dim, 5, &mut rng); // Cᵀ: R×K

        // Left side: sequential n-mode products.
        let lhs = ttm(&ttm(&t, 1, &b).unwrap(), 2, &c).unwrap();

        // Right side: CrossMerge of the two Hadamard expansions.
        let tq = mode_hadamard_mat(&t, 1, &b).unwrap();
        let tr = mode_hadamard_mat(&t.bin(), 2, &c).unwrap();
        let merged = cross_merge(&tq, &tr).unwrap();

        for (idx, v) in merged.iter() {
            let (i, q, r) = (idx[0], idx[1], idx[2]);
            assert!(
                (lhs.get(i, q, r) - v).abs() < 1e-10,
                "mismatch at ({i},{q},{r}): {} vs {v}",
                lhs.get(i, q, r)
            );
        }
        // And the nonzero supports agree.
        assert_eq!(merged.nnz(), lhs.nnz());
    }

    #[test]
    fn lemma2_pairwise_merge_equals_mttkrp() {
        // Lemma 2: X₍₁₎(C ⊙ B) == PairwiseMerge(X *₂ Bᵀ, bin(X) *₃ Cᵀ)₍₁₎.
        let t = random_coo([4, 3, 5], 20, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let r_dim = 3;
        let b = Mat::random(3, r_dim, &mut rng); // B: J×R
        let c = Mat::random(5, r_dim, &mut rng); // C: K×R

        let lhs = mttkrp_dense(&t, 0, [&b, &b, &c]).unwrap();

        let ta = mode_hadamard_mat(&t, 1, &b.transpose()).unwrap();
        let tb = mode_hadamard_mat(&t.bin(), 2, &c.transpose()).unwrap();
        let merged = pairwise_merge(&ta, &tb).unwrap();

        for (idx, v) in merged.iter() {
            let (i, r) = (idx[0] as usize, idx[1] as usize);
            assert!((lhs.get(i, r) - v).abs() < 1e-10);
        }
    }

    #[test]
    fn mttkrp_matches_matricized_khatri_rao() {
        // M = X₍₁₎ (C ⊙ B) computed via the explicit dense Khatri-Rao.
        let t = random_coo([3, 4, 2], 12, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let b = Mat::random(4, 2, &mut rng);
        let c = Mat::random(2, 2, &mut rng);
        let fast = mttkrp_dense(&t, 0, [&b, &b, &c]).unwrap();
        // X₍₁₎ is I×(J·K) with col j + k·J; (C ⊙ B) is (K·J ordered k-major).
        let x1 = t.matricize(0).unwrap().to_dense().unwrap();
        let kr = c.khatri_rao(&b).unwrap(); // rows ordered k*J + j
        let slow = x1.matmul(&kr).unwrap();
        assert!(fast.approx_eq(&slow, 1e-10));
    }

    #[test]
    fn lemma3_nnz_estimate_holds_for_sparse_tensors() {
        // nnz(X ×₂ B) ≈ nnz(X)·Q for sparse X and dense B (first-order
        // Taylor estimate; exact when no two nonzeros share an (i,k) fiber).
        let dims = [200, 200, 200];
        let t = random_coo(dims, 300, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let q_dim = 5;
        let b = Mat::random(q_dim, 200, &mut rng);
        let y = ttm(&t, 1, &b).unwrap();
        let estimate = t.nnz() * q_dim;
        let actual = y.nnz();
        // Collisions only reduce the count, and at this density they are rare.
        assert!(actual <= estimate);
        assert!(
            actual as f64 > 0.9 * estimate as f64,
            "actual={actual} estimate={estimate}"
        );
    }

    #[test]
    fn shape_errors() {
        let t = random_coo([2, 2, 2], 4, 15);
        assert!(ttv(&t, 0, &[1.0]).is_err());
        assert!(ttm(&t, 3, &Mat::zeros(1, 2)).is_err());
        assert!(mode_hadamard_vec(&t, 1, &[1.0, 2.0, 3.0]).is_err());
        assert!(mttkrp_dense(
            &t,
            0,
            [&Mat::zeros(2, 2), &Mat::zeros(3, 2), &Mat::zeros(2, 2)]
        )
        .is_err());
    }

    #[test]
    fn merges_reject_wrong_orders() {
        let t3 = DynTensor::new(vec![2, 2, 2]);
        let t4 = DynTensor::new(vec![2, 2, 2, 2]);
        assert!(cross_merge(&t3, &t4).is_err());
        assert!(pairwise_merge(&t4, &t3).is_err());
    }
}
