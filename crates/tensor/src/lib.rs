//! Sparse tensor algebra for the HaTen2 reproduction.
//!
//! Real-world tensors in the paper (Freebase, NELL, network logs) are
//! extremely sparse — `nnz(X) ~ I` — and every HaTen2 idea leans on that
//! sparsity. This crate provides:
//!
//! * [`CooTensor3`]: the workhorse 3-way sparse tensor in coordinate format,
//! * [`DynTensor`]: N-way coordinate tensors for the paper's N-way
//!   generalizations,
//! * [`DenseTensor3`]: small dense tensors (core tensor `G`, reference
//!   results),
//! * [`SparseMat`]: sparse matricizations `X₍ₙ₎` usable as abstract linear
//!   operators ([`haten2_linalg::LinOp`]) so Tucker's SVD step never
//!   densifies,
//! * reference (single-machine, dense-output) implementations of every
//!   operation the paper defines — `×̄ₙ` (n-mode vector product), `×ₙ`
//!   (n-mode matrix product), `*̄ₙ` (n-mode vector Hadamard product, Def. 1),
//!   `*ₙ` (n-mode matrix Hadamard product, Def. 5), `Collapse` (Def. 2),
//!   Khatri–Rao MTTKRP — used as ground truth by the distributed kernels'
//!   tests,
//! * text I/O in the `i j k value` format HaTen2's Hadoop implementation
//!   consumed.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod coo3;
pub mod dense3;
pub mod dyntensor;
pub mod io;
pub mod ops;
pub mod sparsemat;

pub use coo3::{CooTensor3, Entry3};
pub use dense3::DenseTensor3;
pub use dyntensor::DynTensor;
pub use ops::{collapse, mode_hadamard_mat, mode_hadamard_vec, mttkrp_dense, ttm, ttv};
pub use sparsemat::SparseMat;

/// Error type for tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// An index exceeds the tensor's declared dimensions.
    IndexOutOfBounds {
        /// Offending index tuple rendered as text.
        index: String,
        /// Tensor dimensions rendered as text.
        dims: String,
    },
    /// Operand shapes are incompatible.
    ShapeMismatch(String),
    /// Mode number out of range for the tensor's order.
    InvalidMode {
        /// Requested mode (0-based).
        mode: usize,
        /// Tensor order.
        order: usize,
    },
    /// Parse or I/O failure while reading a tensor file.
    Io(String),
    /// Underlying linear-algebra failure.
    Linalg(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::IndexOutOfBounds { index, dims } => {
                write!(f, "index {index} out of bounds for dims {dims}")
            }
            TensorError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            TensorError::InvalidMode { mode, order } => {
                write!(f, "mode {mode} invalid for order-{order} tensor")
            }
            TensorError::Io(msg) => write!(f, "tensor I/O error: {msg}"),
            TensorError::Linalg(msg) => write!(f, "linear algebra error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

impl From<haten2_linalg::LinalgError> for TensorError {
    fn from(e: haten2_linalg::LinalgError) -> Self {
        TensorError::Linalg(e.to_string())
    }
}

/// Convenience alias for tensor results.
pub type Result<T> = std::result::Result<T, TensorError>;
