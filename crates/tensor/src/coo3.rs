//! Three-way sparse tensors in coordinate (COO) format.

use crate::{Result, SparseMat, TensorError};
use std::collections::HashMap;

/// One nonzero of a 3-way tensor: `X(i, j, k) = v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry3 {
    /// Mode-1 index.
    pub i: u64,
    /// Mode-2 index.
    pub j: u64,
    /// Mode-3 index.
    pub k: u64,
    /// Value.
    pub v: f64,
}

impl Entry3 {
    /// Construct an entry.
    pub fn new(i: u64, j: u64, k: u64, v: f64) -> Self {
        Entry3 { i, j, k, v }
    }

    /// Index along `mode` (0, 1 or 2).
    #[inline]
    pub fn index(&self, mode: usize) -> u64 {
        match mode {
            0 => self.i,
            1 => self.j,
            2 => self.k,
            _ => panic!("mode {mode} out of range for 3-way entry"),
        }
    }
}

/// A 3-way sparse tensor `X ∈ ℝ^{I×J×K}` stored as a coordinate list.
///
/// Invariants: every stored entry is within bounds and has a nonzero value;
/// duplicate coordinates are merged by [`CooTensor3::from_entries`].
///
/// ```
/// use haten2_tensor::{CooTensor3, Entry3};
///
/// let x = CooTensor3::from_entries(
///     [3, 3, 3],
///     vec![Entry3::new(0, 1, 2, 2.0), Entry3::new(2, 0, 1, -1.0)],
/// )
/// .unwrap();
/// assert_eq!(x.nnz(), 2);
/// assert_eq!(x.get(0, 1, 2), 2.0);
/// assert!((x.fro_norm() - 5.0f64.sqrt()).abs() < 1e-12);
/// // bin(X) (paper Table I): all nonzeros become 1.
/// assert_eq!(x.bin().get(2, 0, 1), 1.0);
/// // Mode-0 matricization X(1) is I x (J*K).
/// let m = x.matricize(0).unwrap();
/// assert_eq!((m.rows(), m.cols()), (3, 9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor3 {
    dims: [u64; 3],
    entries: Vec<Entry3>,
}

impl CooTensor3 {
    /// An empty tensor of the given dimensions.
    pub fn new(dims: [u64; 3]) -> Self {
        CooTensor3 {
            dims,
            entries: Vec::new(),
        }
    }

    /// Build from a list of entries. Out-of-bounds entries are rejected,
    /// exact-zero values are dropped, and duplicate coordinates are summed.
    pub fn from_entries(dims: [u64; 3], entries: Vec<Entry3>) -> Result<Self> {
        let mut map: HashMap<(u64, u64, u64), f64> = HashMap::with_capacity(entries.len());
        for e in &entries {
            if e.i >= dims[0] || e.j >= dims[1] || e.k >= dims[2] {
                return Err(TensorError::IndexOutOfBounds {
                    index: format!("({}, {}, {})", e.i, e.j, e.k),
                    dims: format!("{dims:?}"),
                });
            }
            *map.entry((e.i, e.j, e.k)).or_insert(0.0) += e.v;
        }
        let mut merged: Vec<Entry3> = map
            .into_iter()
            .filter(|&(_, v)| v != 0.0)
            .map(|((i, j, k), v)| Entry3 { i, j, k, v })
            .collect();
        merged.sort_by_key(|e| (e.i, e.j, e.k));
        Ok(CooTensor3 {
            dims,
            entries: merged,
        })
    }

    /// Push a single entry without deduplication. The caller promises the
    /// coordinate is fresh; used by generators that sample distinct indices.
    pub fn push_unchecked(&mut self, e: Entry3) {
        debug_assert!(e.i < self.dims[0] && e.j < self.dims[1] && e.k < self.dims[2]);
        if e.v != 0.0 {
            self.entries.push(e);
        }
    }

    /// Tensor dimensions `[I, J, K]`.
    #[inline]
    pub fn dims(&self) -> [u64; 3] {
        self.dims
    }

    /// `nnz(X)` — number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Density `nnz / (I·J·K)`.
    pub fn density(&self) -> f64 {
        let total = self.dims[0] as f64 * self.dims[1] as f64 * self.dims[2] as f64;
        if total == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / total
        }
    }

    /// Stored entries, sorted by `(i, j, k)` when constructed through
    /// [`CooTensor3::from_entries`].
    #[inline]
    pub fn entries(&self) -> &[Entry3] {
        &self.entries
    }

    /// `bin(X)`: every nonzero becomes 1 (paper Table I).
    pub fn bin(&self) -> CooTensor3 {
        CooTensor3 {
            dims: self.dims,
            entries: self
                .entries
                .iter()
                .map(|e| Entry3 { v: 1.0, ..*e })
                .collect(),
        }
    }

    /// Point lookup; O(nnz) scan — use only in tests/small tensors.
    pub fn get(&self, i: u64, j: u64, k: u64) -> f64 {
        self.entries
            .iter()
            .find(|e| e.i == i && e.j == j && e.k == k)
            .map_or(0.0, |e| e.v)
    }

    /// Frobenius norm `‖X‖`.
    pub fn fro_norm(&self) -> f64 {
        self.entries.iter().map(|e| e.v * e.v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn fro_norm_sq(&self) -> f64 {
        self.entries.iter().map(|e| e.v * e.v).sum::<f64>()
    }

    /// Mode-`n` matricization `X₍ₙ₎` as a sparse matrix.
    ///
    /// Follows Kolda's convention: for mode 0 the result is
    /// `I × (J·K)` with column index `j + k·J`; cyclically for the other
    /// modes.
    pub fn matricize(&self, mode: usize) -> Result<SparseMat> {
        if mode > 2 {
            return Err(TensorError::InvalidMode { mode, order: 3 });
        }
        let [i_d, j_d, k_d] = self.dims;
        let cols = match mode {
            0 => j_d.checked_mul(k_d),
            1 => i_d.checked_mul(k_d),
            _ => i_d.checked_mul(j_d),
        }
        .ok_or_else(|| {
            TensorError::ShapeMismatch(format!(
                "matricize mode {mode}: column count overflows u64 for dims {:?}",
                self.dims
            ))
        })?;
        let rows = match mode {
            0 => i_d,
            1 => j_d,
            _ => k_d,
        };
        let mut triples = Vec::with_capacity(self.nnz());
        for e in &self.entries {
            let (r, c) = match mode {
                0 => (e.i, e.j + e.k * j_d),
                1 => (e.j, e.i + e.k * i_d),
                _ => (e.k, e.i + e.j * i_d),
            };
            triples.push((r, c, e.v));
        }
        SparseMat::from_triples(rows, cols, triples)
    }

    /// Iterate over nonzero index triples — `idx(X)` in the paper.
    pub fn idx(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.entries.iter().map(|e| (e.i, e.j, e.k))
    }

    /// Number of distinct indices appearing along `mode`.
    pub fn distinct_along(&self, mode: usize) -> usize {
        let mut seen: Vec<u64> = self.entries.iter().map(|e| e.index(mode)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Scale every value by `s`.
    pub fn scale(&mut self, s: f64) {
        for e in &mut self.entries {
            e.v *= s;
        }
    }

    /// Inner product `⟨X, Y⟩` of two same-shaped sparse tensors.
    pub fn inner(&self, other: &CooTensor3) -> Result<f64> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch(format!(
                "inner: {:?} vs {:?}",
                self.dims, other.dims
            )));
        }
        // Hash the smaller side.
        let (small, large) = if self.nnz() <= other.nnz() {
            (self, other)
        } else {
            (other, self)
        };
        let map: HashMap<(u64, u64, u64), f64> = small
            .entries
            .iter()
            .map(|e| ((e.i, e.j, e.k), e.v))
            .collect();
        Ok(large
            .entries
            .iter()
            .filter_map(|e| map.get(&(e.i, e.j, e.k)).map(|v| v * e.v))
            .sum())
    }

    /// Approximate in-memory footprint in bytes (for memory-budget
    /// accounting in the baseline and the MapReduce cost model).
    pub fn approx_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<Entry3>()
    }

    /// Permute modes: output mode `p` takes input mode `perm[p]`.
    /// `perm` must be a permutation of `{0, 1, 2}`.
    pub fn permute(&self, perm: [usize; 3]) -> Result<CooTensor3> {
        let mut seen = [false; 3];
        for &p in &perm {
            if p > 2 || seen[p] {
                return Err(TensorError::ShapeMismatch(format!(
                    "permute: {perm:?} is not a permutation of modes"
                )));
            }
            seen[p] = true;
        }
        let d = self.dims;
        let dims = [d[perm[0]], d[perm[1]], d[perm[2]]];
        let entries = self
            .entries
            .iter()
            .map(|e| Entry3::new(e.index(perm[0]), e.index(perm[1]), e.index(perm[2]), e.v))
            .collect();
        CooTensor3::from_entries(dims, entries)
    }

    /// Elementwise sum of two same-shaped sparse tensors.
    pub fn add(&self, other: &CooTensor3) -> Result<CooTensor3> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch(format!(
                "add: {:?} vs {:?}",
                self.dims, other.dims
            )));
        }
        let mut entries = self.entries.clone();
        entries.extend_from_slice(&other.entries);
        CooTensor3::from_entries(self.dims, entries)
    }

    /// Elementwise difference `self − other`.
    pub fn sub(&self, other: &CooTensor3) -> Result<CooTensor3> {
        let mut neg = other.clone();
        neg.scale(-1.0);
        self.add(&neg)
    }

    /// Number of nonzeros in each mode-`n` slice, as `(index, count)` pairs
    /// sorted by index — `nnz(X_{i::})` in the paper's notation for
    /// `mode = 0`.
    pub fn slice_nnz(&self, mode: usize) -> Result<Vec<(u64, usize)>> {
        if mode > 2 {
            return Err(TensorError::InvalidMode { mode, order: 3 });
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for e in &self.entries {
            *counts.entry(e.index(mode)).or_insert(0) += 1;
        }
        let mut out: Vec<(u64, usize)> = counts.into_iter().collect();
        out.sort_unstable();
        Ok(out)
    }

    /// The heaviest mode-`n` slice: `(index, nonzero count)`; `None` on an
    /// empty tensor. A proxy for reduce-side skew in the merge jobs.
    pub fn heaviest_slice(&self, mode: usize) -> Result<Option<(u64, usize)>> {
        Ok(self.slice_nnz(mode)?.into_iter().max_by_key(|&(_, c)| c))
    }

    /// Group the entries by their mode-`n` index: returns
    /// `(index, entries-of-that-slice)` pairs sorted by index. This is the
    /// access pattern of MET (slice-at-a-time Tucker) and of the merge
    /// reducers (one target-mode slice per key group).
    pub fn slices(&self, mode: usize) -> Result<Vec<(u64, Vec<Entry3>)>> {
        if mode > 2 {
            return Err(TensorError::InvalidMode { mode, order: 3 });
        }
        let mut sorted: Vec<Entry3> = self.entries.clone();
        sorted.sort_by_key(|e| e.index(mode));
        let mut out: Vec<(u64, Vec<Entry3>)> = Vec::new();
        for e in sorted {
            let idx = e.index(mode);
            match out.last_mut() {
                Some((last_idx, group)) if *last_idx == idx => group.push(e),
                _ => out.push((idx, vec![e])),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CooTensor3 {
        CooTensor3::from_entries(
            [2, 3, 2],
            vec![
                Entry3::new(0, 0, 0, 1.0),
                Entry3::new(0, 2, 1, 2.0),
                Entry3::new(1, 1, 0, -3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_entries_dedups_and_sorts() {
        let t = CooTensor3::from_entries(
            [2, 2, 2],
            vec![
                Entry3::new(1, 1, 1, 2.0),
                Entry3::new(0, 0, 0, 1.0),
                Entry3::new(1, 1, 1, 3.0),
            ],
        )
        .unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.entries()[0].v, 1.0);
        assert_eq!(t.get(1, 1, 1), 5.0);
    }

    #[test]
    fn from_entries_drops_cancelled() {
        let t = CooTensor3::from_entries(
            [1, 1, 1],
            vec![Entry3::new(0, 0, 0, 1.0), Entry3::new(0, 0, 0, -1.0)],
        )
        .unwrap();
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn from_entries_bounds_check() {
        let r = CooTensor3::from_entries([2, 2, 2], vec![Entry3::new(2, 0, 0, 1.0)]);
        assert!(matches!(r, Err(TensorError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn bin_converts_to_ones() {
        let t = small();
        let b = t.bin();
        assert!(b.entries().iter().all(|e| e.v == 1.0));
        assert_eq!(b.nnz(), t.nnz());
    }

    #[test]
    fn density_and_norms() {
        let t = small();
        assert!((t.density() - 3.0 / 12.0).abs() < 1e-15);
        assert!((t.fro_norm() - (1.0f64 + 4.0 + 9.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn matricize_mode0_layout() {
        let t = small();
        let m = t.matricize(0).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 6);
        // (0,2,1) -> row 0, col 2 + 1*3 = 5
        assert!(m.triples().contains(&(0, 5, 2.0)));
        // (1,1,0) -> row 1, col 1
        assert!(m.triples().contains(&(1, 1, -3.0)));
    }

    #[test]
    fn matricize_all_modes_preserve_nnz() {
        let t = small();
        for mode in 0..3 {
            assert_eq!(t.matricize(mode).unwrap().triples().len(), t.nnz());
        }
        assert!(t.matricize(3).is_err());
    }

    #[test]
    fn inner_product() {
        let t = small();
        assert!((t.inner(&t).unwrap() - t.fro_norm_sq()).abs() < 1e-12);
        let b = t.bin();
        // <X, bin(X)> = sum of values
        let s: f64 = t.entries().iter().map(|e| e.v).sum();
        assert!((t.inner(&b).unwrap() - s).abs() < 1e-12);
    }

    #[test]
    fn inner_shape_mismatch() {
        let t = small();
        let u = CooTensor3::new([1, 1, 1]);
        assert!(t.inner(&u).is_err());
    }

    #[test]
    fn distinct_along_modes() {
        let t = small();
        assert_eq!(t.distinct_along(0), 2);
        assert_eq!(t.distinct_along(1), 3);
        assert_eq!(t.distinct_along(2), 2);
    }

    #[test]
    fn scale_applies() {
        let mut t = small();
        t.scale(2.0);
        assert_eq!(t.get(0, 0, 0), 2.0);
    }

    #[test]
    fn permute_roundtrip_and_validation() {
        let t = small();
        let p = t.permute([2, 0, 1]).unwrap();
        assert_eq!(p.dims(), [2, 2, 3]);
        assert_eq!(p.get(1, 0, 2), 2.0); // (0,2,1) -> (k,i,j) = (1,0,2)
                                         // Inverse permutation restores.
        let back = p.permute([1, 2, 0]).unwrap();
        assert_eq!(back, t);
        assert!(t.permute([0, 0, 1]).is_err());
        assert!(t.permute([0, 1, 5]).is_err());
    }

    #[test]
    fn add_and_sub() {
        let t = small();
        let sum = t.add(&t).unwrap();
        assert_eq!(sum.get(0, 0, 0), 2.0);
        assert_eq!(sum.nnz(), t.nnz());
        let zero = t.sub(&t).unwrap();
        assert_eq!(zero.nnz(), 0);
        let other = CooTensor3::new([9, 9, 9]);
        assert!(t.add(&other).is_err());
    }

    #[test]
    fn slices_group_and_cover() {
        let t = small();
        let s0 = t.slices(0).unwrap();
        assert_eq!(s0.len(), 2);
        assert_eq!(s0[0].0, 0);
        assert_eq!(s0[0].1.len(), 2);
        assert_eq!(s0[1].0, 1);
        // Every entry appears in exactly one slice group.
        let total: usize = s0.iter().map(|(_, g)| g.len()).sum();
        assert_eq!(total, t.nnz());
        assert!(t.slices(5).is_err());
    }

    #[test]
    fn slice_nnz_counts() {
        let t = small();
        // entries: (0,0,0), (0,2,1), (1,1,0)
        let s0 = t.slice_nnz(0).unwrap();
        assert_eq!(s0, vec![(0, 2), (1, 1)]);
        assert_eq!(t.heaviest_slice(0).unwrap(), Some((0, 2)));
        assert_eq!(t.heaviest_slice(1).unwrap().unwrap().1, 1);
        assert!(t.slice_nnz(3).is_err());
        assert_eq!(CooTensor3::new([1, 1, 1]).heaviest_slice(0).unwrap(), None);
    }

    #[test]
    fn push_unchecked_skips_zero() {
        let mut t = CooTensor3::new([2, 2, 2]);
        t.push_unchecked(Entry3::new(0, 0, 0, 0.0));
        assert_eq!(t.nnz(), 0);
        t.push_unchecked(Entry3::new(0, 0, 0, 1.5));
        assert_eq!(t.nnz(), 1);
    }
}
