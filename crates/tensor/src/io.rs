//! Text I/O for sparse tensors.
//!
//! HaTen2's Hadoop implementation consumed tensors as plain-text files of
//! whitespace-separated `i j k value` lines (0-based indices); this module
//! reads and writes the same format, plus the N-way generalization
//! (`i1 … iN value`).

use crate::{CooTensor3, DynTensor, Entry3, Result, TensorError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write a 3-way tensor as `i j k value` lines.
pub fn write_coo3<W: Write>(t: &CooTensor3, w: W) -> Result<()> {
    let mut w = BufWriter::new(w);
    for e in t.entries() {
        writeln!(w, "{} {} {} {}", e.i, e.j, e.k, e.v)
            .map_err(|e| TensorError::Io(e.to_string()))?;
    }
    w.flush().map_err(|e| TensorError::Io(e.to_string()))
}

/// Read a 3-way tensor from `i j k value` lines. Blank lines and lines
/// starting with `#` or `%` are skipped. Dimensions are supplied explicitly
/// (use [`read_coo3_infer_dims`] to derive them from the data).
pub fn read_coo3<R: Read>(dims: [u64; 3], r: R) -> Result<CooTensor3> {
    let entries = parse_entries(r)?;
    CooTensor3::from_entries(dims, entries)
}

/// Read a 3-way tensor, inferring each dimension as `max index + 1`.
pub fn read_coo3_infer_dims<R: Read>(r: R) -> Result<CooTensor3> {
    let entries = parse_entries(r)?;
    let mut dims = [0u64; 3];
    for e in &entries {
        dims[0] = dims[0].max(e.i + 1);
        dims[1] = dims[1].max(e.j + 1);
        dims[2] = dims[2].max(e.k + 1);
    }
    CooTensor3::from_entries(dims, entries)
}

fn parse_entries<R: Read>(r: R) -> Result<Vec<Entry3>> {
    let reader = BufReader::new(r);
    let mut entries = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| TensorError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse_u64 = |s: Option<&str>, what: &str| -> Result<u64> {
            s.ok_or_else(|| TensorError::Io(format!("line {}: missing {what}", lineno + 1)))?
                .parse::<u64>()
                .map_err(|e| TensorError::Io(format!("line {}: bad {what}: {e}", lineno + 1)))
        };
        let i = parse_u64(it.next(), "i")?;
        let j = parse_u64(it.next(), "j")?;
        let k = parse_u64(it.next(), "k")?;
        let v: f64 = it
            .next()
            .ok_or_else(|| TensorError::Io(format!("line {}: missing value", lineno + 1)))?
            .parse()
            .map_err(|e| TensorError::Io(format!("line {}: bad value: {e}", lineno + 1)))?;
        if it.next().is_some() {
            return Err(TensorError::Io(format!(
                "line {}: trailing fields (expected `i j k value`)",
                lineno + 1
            )));
        }
        entries.push(Entry3::new(i, j, k, v));
    }
    Ok(entries)
}

/// Write a tensor to a file path.
pub fn save_coo3<P: AsRef<Path>>(t: &CooTensor3, path: P) -> Result<()> {
    let f = std::fs::File::create(path).map_err(|e| TensorError::Io(e.to_string()))?;
    write_coo3(t, f)
}

/// Load a tensor from a file path, inferring dimensions.
pub fn load_coo3<P: AsRef<Path>>(path: P) -> Result<CooTensor3> {
    let f = std::fs::File::open(path).map_err(|e| TensorError::Io(e.to_string()))?;
    read_coo3_infer_dims(f)
}

/// Write an N-way tensor as `i1 … iN value` lines.
pub fn write_dyn<W: Write>(t: &DynTensor, w: W) -> Result<()> {
    let mut w = BufWriter::new(w);
    for (idx, v) in t.iter() {
        for i in idx {
            write!(w, "{i} ").map_err(|e| TensorError::Io(e.to_string()))?;
        }
        writeln!(w, "{v}").map_err(|e| TensorError::Io(e.to_string()))?;
    }
    w.flush().map_err(|e| TensorError::Io(e.to_string()))
}

/// Read an N-way tensor with known dimensions.
pub fn read_dyn<R: Read>(dims: Vec<u64>, r: R) -> Result<DynTensor> {
    let order = dims.len();
    let reader = BufReader::new(r);
    let mut t = DynTensor::new(dims);
    let mut idx = vec![0u64; order];
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| TensorError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != order + 1 {
            return Err(TensorError::Io(format!(
                "line {}: expected {} fields, got {}",
                lineno + 1,
                order + 1,
                fields.len()
            )));
        }
        for (d, f) in fields[..order].iter().enumerate() {
            idx[d] = f
                .parse()
                .map_err(|e| TensorError::Io(format!("line {}: bad index: {e}", lineno + 1)))?;
        }
        let v: f64 = fields[order]
            .parse()
            .map_err(|e| TensorError::Io(format!("line {}: bad value: {e}", lineno + 1)))?;
        t.push(&idx, v)?;
    }
    Ok(t.coalesce())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor3 {
        CooTensor3::from_entries(
            [3, 3, 3],
            vec![Entry3::new(0, 1, 2, 1.5), Entry3::new(2, 0, 1, -2.0)],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_coo3() {
        let t = sample();
        let mut buf = Vec::new();
        write_coo3(&t, &mut buf).unwrap();
        let back = read_coo3([3, 3, 3], &buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn infer_dims() {
        let t = sample();
        let mut buf = Vec::new();
        write_coo3(&t, &mut buf).unwrap();
        let back = read_coo3_infer_dims(&buf[..]).unwrap();
        assert_eq!(back.dims(), [3, 2, 3]);
        assert_eq!(back.nnz(), 2);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n% comment\n0 0 0 1.0\n";
        let t = read_coo3([1, 1, 1], text.as_bytes()).unwrap();
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_coo3([2, 2, 2], "0 0 0".as_bytes()).is_err());
        assert!(read_coo3([2, 2, 2], "0 0 x 1.0".as_bytes()).is_err());
        assert!(read_coo3([2, 2, 2], "0 0 0 1.0 9".as_bytes()).is_err());
        assert!(read_coo3([1, 1, 1], "5 0 0 1.0".as_bytes()).is_err()); // out of bounds
    }

    #[test]
    fn roundtrip_dyn() {
        let mut t = DynTensor::new(vec![2, 3, 2, 2]);
        t.push(&[1, 2, 0, 1], 4.25).unwrap();
        t.push(&[0, 0, 1, 0], -1.0).unwrap();
        let mut buf = Vec::new();
        write_dyn(&t, &mut buf).unwrap();
        let back = read_dyn(vec![2, 3, 2, 2], &buf[..]).unwrap();
        assert_eq!(back.get(&[1, 2, 0, 1]), 4.25);
        assert_eq!(back.get(&[0, 0, 1, 0]), -1.0);
        assert_eq!(back.nnz(), 2);
    }

    #[test]
    fn dyn_field_count_checked() {
        assert!(read_dyn(vec![2, 2], "0 0 0 1.0".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("haten2_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tns");
        let t = sample();
        save_coo3(&t, &path).unwrap();
        let back = load_coo3(&path).unwrap();
        assert_eq!(back.nnz(), t.nnz());
        std::fs::remove_file(&path).ok();
    }
}
