//! Sparse matrices in triplet + CSR form, used for matricized tensors.
//!
//! The Tucker-ALS factor update needs the leading left singular vectors of
//! `Y₍₁₎`, a tall sparse matrix. [`SparseMat`] implements
//! [`haten2_linalg::LinOp`] so the subspace iteration can multiply by it and
//! its transpose without densifying — mirroring how HaTen2 never
//! materializes dense intermediates.

use crate::{Result, TensorError};
use haten2_linalg::{LinOp, LinalgError, Mat};

/// A sparse `rows × cols` matrix stored as sorted triples with a CSR-style
/// row index for fast row-major traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMat {
    rows: u64,
    cols: u64,
    /// Sorted by (row, col); duplicates merged.
    triples: Vec<(u64, u64, f64)>,
    /// row_ptr[r]..row_ptr[r+1] indexes `triples` for row r — only rows that
    /// appear; mapping from row id to dense position kept implicit by
    /// requiring u64 rows to fit usize for the operator application.
    row_ptr: Vec<usize>,
}

impl SparseMat {
    /// Build from unsorted triples; duplicates are summed, zeros dropped.
    pub fn from_triples(rows: u64, cols: u64, mut triples: Vec<(u64, u64, f64)>) -> Result<Self> {
        for &(r, c, _) in &triples {
            if r >= rows || c >= cols {
                return Err(TensorError::IndexOutOfBounds {
                    index: format!("({r}, {c})"),
                    dims: format!("[{rows}, {cols}]"),
                });
            }
        }
        triples.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(u64, u64, f64)> = Vec::with_capacity(triples.len());
        for (r, c, v) in triples {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        merged.retain(|&(_, _, v)| v != 0.0);

        let row_ptr = build_row_ptr(rows, &merged);
        Ok(SparseMat {
            rows,
            cols,
            triples: merged,
            row_ptr,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.triples.len()
    }

    /// Stored triples, sorted by `(row, col)`.
    #[inline]
    pub fn triples(&self) -> &[(u64, u64, f64)] {
        &self.triples
    }

    /// Dense copy (small matrices / tests only).
    pub fn to_dense(&self) -> Result<Mat> {
        let (r, c) = (self.rows as usize, self.cols as usize);
        let mut m = Mat::zeros(r, c);
        for &(i, j, v) in &self.triples {
            m.add_at(i as usize, j as usize, v);
        }
        Ok(m)
    }

    /// Gram matrix `SᵀS` as a dense `cols × cols` matrix. Only valid when
    /// `cols` is small (e.g. a matricized `I × QR` intermediate).
    pub fn gram_dense(&self) -> Result<Mat> {
        let c = self.cols as usize;
        let mut g = Mat::zeros(c, c);
        // Group by row and take outer products of each sparse row.
        let mut start = 0;
        while start < self.triples.len() {
            let row = self.triples[start].0;
            let mut end = start;
            while end < self.triples.len() && self.triples[end].0 == row {
                end += 1;
            }
            for a in start..end {
                let (_, ca, va) = self.triples[a];
                for b in start..end {
                    let (_, cb, vb) = self.triples[b];
                    g.add_at(ca as usize, cb as usize, va * vb);
                }
            }
            start = end;
        }
        Ok(g)
    }
}

fn build_row_ptr(rows: u64, sorted: &[(u64, u64, f64)]) -> Vec<usize> {
    // Sparse row pointer over populated rows only: store (start) offsets by
    // scanning; dense row_ptr would be O(rows) memory which can be huge.
    // We instead store boundaries of row groups: positions where row changes.
    let mut ptr = Vec::new();
    let mut last_row = None;
    for (pos, &(r, _, _)) in sorted.iter().enumerate() {
        if last_row != Some(r) {
            ptr.push(pos);
            last_row = Some(r);
        }
    }
    ptr.push(sorted.len());
    let _ = rows;
    ptr
}

impl LinOp for SparseMat {
    fn nrows(&self) -> usize {
        self.rows as usize
    }

    fn ncols(&self) -> usize {
        self.cols as usize
    }

    /// `S * X` for dense `X ∈ ℝ^{cols×k}`.
    fn apply(&self, x: &Mat) -> haten2_linalg::Result<Mat> {
        if x.rows() != self.cols as usize {
            return Err(LinalgError::DimensionMismatch(format!(
                "sparse apply: {}x{} * {}x{}",
                self.rows,
                self.cols,
                x.rows(),
                x.cols()
            )));
        }
        let mut out = Mat::zeros(self.rows as usize, x.cols());
        for &(r, c, v) in &self.triples {
            let src = x.row(c as usize);
            let dst = out.row_mut(r as usize);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += v * s;
            }
        }
        Ok(out)
    }

    /// `Sᵀ * X` for dense `X ∈ ℝ^{rows×k}`.
    fn apply_transpose(&self, x: &Mat) -> haten2_linalg::Result<Mat> {
        if x.rows() != self.rows as usize {
            return Err(LinalgError::DimensionMismatch(format!(
                "sparse applyᵀ: {}x{} ᵀ * {}x{}",
                self.rows,
                self.cols,
                x.rows(),
                x.cols()
            )));
        }
        let mut out = Mat::zeros(self.cols as usize, x.cols());
        for &(r, c, v) in &self.triples {
            let src = x.row(r as usize);
            let dst = out.row_mut(c as usize);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += v * s;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_linalg::leading_left_singular_vectors;
    use haten2_linalg::SubspaceOptions;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn from_triples_merges_and_drops_zero() {
        let m = SparseMat::from_triples(
            3,
            3,
            vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0), (2, 2, 0.0)],
        )
        .unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.triples()[0], (0, 0, 3.0));
    }

    #[test]
    fn bounds_checked() {
        assert!(SparseMat::from_triples(2, 2, vec![(2, 0, 1.0)]).is_err());
    }

    #[test]
    fn apply_matches_dense() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut triples = Vec::new();
        for _ in 0..30 {
            triples.push((
                rng.gen_range(0..10u64),
                rng.gen_range(0..6u64),
                rng.gen::<f64>(),
            ));
        }
        let s = SparseMat::from_triples(10, 6, triples).unwrap();
        let d = s.to_dense().unwrap();
        let x = Mat::random(6, 3, &mut rng);
        let sparse_out = s.apply(&x).unwrap();
        let dense_out = d.matmul(&x).unwrap();
        assert!(sparse_out.approx_eq(&dense_out, 1e-12));
    }

    #[test]
    fn apply_transpose_matches_dense() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut triples = Vec::new();
        for _ in 0..25 {
            triples.push((
                rng.gen_range(0..8u64),
                rng.gen_range(0..5u64),
                rng.gen::<f64>(),
            ));
        }
        let s = SparseMat::from_triples(8, 5, triples).unwrap();
        let d = s.to_dense().unwrap();
        let x = Mat::random(8, 2, &mut rng);
        let sparse_out = s.apply_transpose(&x).unwrap();
        let dense_out = d.transpose().matmul(&x).unwrap();
        assert!(sparse_out.approx_eq(&dense_out, 1e-12));
    }

    #[test]
    fn gram_dense_matches_dense_gram() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut triples = Vec::new();
        for _ in 0..40 {
            triples.push((
                rng.gen_range(0..12u64),
                rng.gen_range(0..4u64),
                rng.gen::<f64>(),
            ));
        }
        let s = SparseMat::from_triples(12, 4, triples).unwrap();
        let g = s.gram_dense().unwrap();
        let d = s.to_dense().unwrap().gram();
        assert!(g.approx_eq(&d, 1e-12));
    }

    #[test]
    fn subspace_iteration_on_sparse_operator() {
        // The whole point: extract singular vectors without densifying.
        let mut rng = StdRng::seed_from_u64(11);
        let mut triples = Vec::new();
        for r in 0..40u64 {
            for _ in 0..3 {
                triples.push((r, rng.gen_range(0..6u64), rng.gen::<f64>() + 0.1));
            }
        }
        let s = SparseMat::from_triples(40, 6, triples).unwrap();
        let u = leading_left_singular_vectors(&s, 2, &SubspaceOptions::default()).unwrap();
        assert_eq!(u.shape(), (40, 2));
        assert!(u.gram().approx_eq(&Mat::identity(2), 1e-8));
    }

    #[test]
    fn apply_dim_mismatch() {
        let s = SparseMat::from_triples(2, 3, vec![(0, 0, 1.0)]).unwrap();
        assert!(s.apply(&Mat::zeros(2, 1)).is_err());
        assert!(s.apply_transpose(&Mat::zeros(3, 1)).is_err());
    }
}
