//! Small dense 3-way tensors.
//!
//! Used for the Tucker core tensor `G ∈ ℝ^{P×Q×R}` (always tiny) and as the
//! output type of reference computations in tests.

use crate::{CooTensor3, Entry3, Result, TensorError};
use haten2_linalg::Mat;

/// Dense 3-way tensor with row-major-like layout: index `(i, j, k)` maps to
/// `i * (J*K) + j * K + k`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor3 {
    dims: [usize; 3],
    data: Vec<f64>,
}

impl DenseTensor3 {
    /// Zero tensor of the given dimensions.
    pub fn zeros(dims: [usize; 3]) -> Self {
        DenseTensor3 {
            dims,
            data: vec![0.0; dims[0] * dims[1] * dims[2]],
        }
    }

    /// Dimensions `[I, J, K]`.
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    #[inline]
    fn offset(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2]);
        i * self.dims[1] * self.dims[2] + j * self.dims[2] + k
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.offset(i, j, k)]
    }

    /// Set element.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let o = self.offset(i, j, k);
        self.data[o] = v;
    }

    /// Add to element.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let o = self.offset(i, j, k);
        self.data[o] += v;
    }

    /// Backing data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Convert from a sparse tensor (dims must fit in usize; intended for
    /// small reference tensors).
    pub fn from_coo(t: &CooTensor3) -> Result<Self> {
        let dims = t.dims();
        let d = [dims[0] as usize, dims[1] as usize, dims[2] as usize];
        let mut out = DenseTensor3::zeros(d);
        for e in t.entries() {
            out.add_at(e.i as usize, e.j as usize, e.k as usize, e.v);
        }
        Ok(out)
    }

    /// Convert to sparse COO form, dropping exact zeros.
    pub fn to_coo(&self) -> CooTensor3 {
        let mut entries = Vec::new();
        for i in 0..self.dims[0] {
            for j in 0..self.dims[1] {
                for k in 0..self.dims[2] {
                    let v = self.get(i, j, k);
                    if v != 0.0 {
                        entries.push(Entry3::new(i as u64, j as u64, k as u64, v));
                    }
                }
            }
        }
        CooTensor3::from_entries(
            [
                self.dims[0] as u64,
                self.dims[1] as u64,
                self.dims[2] as u64,
            ],
            entries,
        )
        .expect("indices are in range by construction")
    }

    /// Mode-`n` matricization as a dense matrix (Kolda convention, matching
    /// [`CooTensor3::matricize`]).
    pub fn matricize(&self, mode: usize) -> Result<Mat> {
        let [i_d, j_d, k_d] = self.dims;
        let (rows, cols) = match mode {
            0 => (i_d, j_d * k_d),
            1 => (j_d, i_d * k_d),
            2 => (k_d, i_d * j_d),
            _ => return Err(TensorError::InvalidMode { mode, order: 3 }),
        };
        let mut m = Mat::zeros(rows, cols);
        for i in 0..i_d {
            for j in 0..j_d {
                for k in 0..k_d {
                    let v = self.get(i, j, k);
                    match mode {
                        0 => m.set(i, j + k * j_d, v),
                        1 => m.set(j, i + k * i_d, v),
                        _ => m.set(k, i + j * i_d, v),
                    }
                }
            }
        }
        Ok(m)
    }

    /// n-mode matrix product `self ×ₙ U` with dense `U ∈ ℝ^{new×old}`:
    /// replaces dimension `n` (`old`) with `new`.
    pub fn ttm(&self, mode: usize, u: &Mat) -> Result<DenseTensor3> {
        if mode > 2 {
            return Err(TensorError::InvalidMode { mode, order: 3 });
        }
        let old = self.dims[mode];
        if u.cols() != old {
            return Err(TensorError::ShapeMismatch(format!(
                "ttm: matrix is {}x{}, mode-{mode} dim is {old}",
                u.rows(),
                u.cols()
            )));
        }
        let mut dims = self.dims;
        dims[mode] = u.rows();
        let mut out = DenseTensor3::zeros(dims);
        for i in 0..self.dims[0] {
            for j in 0..self.dims[1] {
                for k in 0..self.dims[2] {
                    let v = self.get(i, j, k);
                    if v == 0.0 {
                        continue;
                    }
                    match mode {
                        0 => {
                            for p in 0..u.rows() {
                                out.add_at(p, j, k, v * u.get(p, i));
                            }
                        }
                        1 => {
                            for p in 0..u.rows() {
                                out.add_at(i, p, k, v * u.get(p, j));
                            }
                        }
                        _ => {
                            for p in 0..u.rows() {
                                out.add_at(i, j, p, v * u.get(p, k));
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Reconstruct a dense tensor from a Tucker decomposition
    /// `G ×₁ A ×₂ B ×₃ C` where `A ∈ ℝ^{I×P}` etc.
    pub fn tucker_reconstruct(
        core: &DenseTensor3,
        a: &Mat,
        b: &Mat,
        c: &Mat,
    ) -> Result<DenseTensor3> {
        // ttm expects `new×old`, and A maps P -> I, i.e. A itself is I×P = new×old.
        core.ttm(0, a)?.ttm(1, b)?.ttm(2, c)
    }

    /// True when every element differs by at most `tol`.
    pub fn approx_eq(&self, other: &DenseTensor3, tol: f64) -> bool {
        self.dims == other.dims
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseTensor3 {
        let mut t = DenseTensor3::zeros([2, 2, 2]);
        let mut v = 1.0;
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    t.set(i, j, k, v);
                    v += 1.0;
                }
            }
        }
        t
    }

    #[test]
    fn roundtrip_coo() {
        let t = sample();
        let coo = t.to_coo();
        assert_eq!(coo.nnz(), 8);
        let back = DenseTensor3::from_coo(&coo).unwrap();
        assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    fn matricize_matches_sparse_matricize() {
        let t = sample();
        let coo = t.to_coo();
        for mode in 0..3 {
            let dm = t.matricize(mode).unwrap();
            let sm = coo.matricize(mode).unwrap().to_dense().unwrap();
            assert!(dm.approx_eq(&sm, 0.0), "mode {mode}");
        }
    }

    #[test]
    fn ttm_identity_is_noop() {
        let t = sample();
        let id = Mat::identity(2);
        for mode in 0..3 {
            assert!(t.ttm(mode, &id).unwrap().approx_eq(&t, 0.0));
        }
    }

    #[test]
    fn ttm_mode0_known() {
        // X ×₀ u with u = [1 1] (1x2) sums the two mode-0 slices.
        let t = sample();
        let u = Mat::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let y = t.ttm(0, &u).unwrap();
        assert_eq!(y.dims(), [1, 2, 2]);
        assert_eq!(y.get(0, 0, 0), t.get(0, 0, 0) + t.get(1, 0, 0));
        assert_eq!(y.get(0, 1, 1), t.get(0, 1, 1) + t.get(1, 1, 1));
    }

    #[test]
    fn ttm_shape_mismatch() {
        let t = sample();
        let u = Mat::zeros(1, 3);
        assert!(t.ttm(0, &u).is_err());
        assert!(t.ttm(5, &Mat::zeros(1, 2)).is_err());
    }

    #[test]
    fn ttm_commutes_across_distinct_modes() {
        let t = sample();
        let u = Mat::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let w = Mat::from_rows(&[vec![3.0, -1.0]]).unwrap();
        let a = t.ttm(1, &u).unwrap().ttm(2, &w).unwrap();
        let b = t.ttm(2, &w).unwrap().ttm(1, &u).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn matricize_ttm_consistency() {
        // (X ×₁ U)₍₁₎ = U X₍₁₎ in Kolda convention (mode-0 here).
        let t = sample();
        let u = Mat::from_rows(&[vec![1.0, 2.0], vec![0.5, -1.0], vec![2.0, 0.0]]).unwrap();
        let lhs = t.ttm(0, &u).unwrap().matricize(0).unwrap();
        let rhs = u.matmul(&t.matricize(0).unwrap()).unwrap();
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }
}
