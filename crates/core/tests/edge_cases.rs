//! Edge-case tests for the HaTen2 kernels and drivers: degenerate tensors,
//! extreme shapes, boundary ranks, and minimal cluster geometries.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_core::parafac::mttkrp;
use haten2_core::tucker::{project, ProjectOptions};
use haten2_core::{parafac_als, tucker_als, AlsOptions, Variant};
use haten2_linalg::Mat;
use haten2_mapreduce::{Cluster, ClusterConfig};
use haten2_tensor::{CooTensor3, Entry3};

fn single_machine() -> Cluster {
    Cluster::new(ClusterConfig {
        reducers: Some(1),
        ..ClusterConfig::with_machines(1)
    })
}

#[test]
fn empty_tensor_mttkrp_is_zero() {
    let x = CooTensor3::new([4, 4, 4]);
    let b = Mat::identity(4);
    for variant in Variant::ALL {
        let m = mttkrp(&single_machine(), variant, &x, 0, &b, &b).unwrap();
        assert!(m.max_abs() == 0.0, "{variant}");
    }
}

#[test]
fn empty_tensor_decomposition_terminates() {
    let x = CooTensor3::new([3, 3, 3]);
    let opts = AlsOptions {
        max_iters: 2,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let res = parafac_als(&single_machine(), &x, 2, &opts).unwrap();
    // Zero tensor: fit defined as 1 − ‖X − X̂‖/‖X‖ degenerates; we report 1.
    assert!(res.fits.iter().all(|f| f.is_finite()));
}

#[test]
fn single_entry_tensor_exact_rank_one() {
    let x = CooTensor3::from_entries([5, 4, 3], vec![Entry3::new(2, 1, 0, 7.0)]).unwrap();
    let opts = AlsOptions {
        max_iters: 10,
        tol: 1e-12,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let res = parafac_als(&single_machine(), &x, 1, &opts).unwrap();
    assert!(res.fit() > 0.9999, "fit = {}", res.fit());
    assert!((res.predict(2, 1, 0) - 7.0).abs() < 1e-6);
}

#[test]
fn degenerate_mode_of_size_one() {
    // A 1×J×K tensor is really a matrix; everything must still work.
    let x = CooTensor3::from_entries(
        [1, 5, 4],
        vec![
            Entry3::new(0, 0, 0, 1.0),
            Entry3::new(0, 2, 1, 2.0),
            Entry3::new(0, 4, 3, 3.0),
        ],
    )
    .unwrap();
    for variant in [Variant::Dnn, Variant::Drn, Variant::Dri] {
        let b = Mat::identity(5); // mode-1 factor (5 rows)
        let mut c = Mat::zeros(4, 5); // mode-2 factor (4 rows, same rank)
        for i in 0..4 {
            c.set(i, i, 1.0);
        }
        // mode 0 has dimension 1.
        let m = mttkrp(&single_machine(), variant, &x, 0, &b, &c).unwrap();
        assert_eq!(m.rows(), 1);
        let y = project(
            &single_machine(),
            variant,
            &x,
            0,
            &b.transpose(),
            &c.transpose(),
            &ProjectOptions::default(),
        )
        .unwrap();
        assert_eq!(y.dims()[0], 1);
    }
}

#[test]
fn tucker_with_unit_core() {
    // Core 1×1×1: rank-one Tucker; fit within [0, 1] and factors unit.
    let x = CooTensor3::from_entries(
        [4, 4, 4],
        (0..10)
            .map(|t| Entry3::new(t % 4, (t * 2) % 4, (t * 3) % 4, 1.0 + t as f64))
            .collect(),
    )
    .unwrap();
    let opts = AlsOptions {
        max_iters: 5,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let res = tucker_als(&single_machine(), &x, [1, 1, 1], &opts).unwrap();
    assert!(res.fit >= 0.0 && res.fit <= 1.0);
    for f in &res.factors {
        assert_eq!(f.cols(), 1);
        let n: f64 = (0..f.rows())
            .map(|i| f.get(i, 0).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!((n - 1.0).abs() < 1e-8);
    }
}

#[test]
fn rank_equal_to_smallest_dim() {
    let x = CooTensor3::from_entries(
        [2, 6, 6],
        (0..12)
            .map(|t| Entry3::new(t % 2, t % 6, (t * 5) % 6, (t + 1) as f64))
            .collect(),
    )
    .unwrap();
    let opts = AlsOptions {
        max_iters: 5,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    // rank 2 == dim of mode 0.
    let res = parafac_als(&single_machine(), &x, 2, &opts).unwrap();
    assert!(res.fit().is_finite());
}

#[test]
fn values_with_mixed_signs_and_cancellation() {
    // Entries that cancel inside a merge group: zero outputs are dropped,
    // never emitted as explicit zeros.
    let x = CooTensor3::from_entries(
        [2, 2, 2],
        vec![Entry3::new(0, 0, 0, 1.0), Entry3::new(0, 1, 1, -1.0)],
    )
    .unwrap();
    let ones_b = Mat::from_vec(2, 1, vec![1.0, 1.0]).unwrap();
    let ones_c = Mat::from_vec(2, 1, vec![1.0, 1.0]).unwrap();
    // M(0, 0) = 1·1·1 + (−1)·1·1 = 0 → the row exists but is zero.
    let m = mttkrp(&single_machine(), Variant::Dri, &x, 0, &ones_b, &ones_c).unwrap();
    assert_eq!(m.get(0, 0), 0.0);
}

#[test]
fn huge_indices_near_u64_range() {
    // Indices above 2^32 exercise the full u64 path (the paper's tensors
    // reach 10^8 per mode; composite matricization columns reach ~10^16).
    let big = 1u64 << 40;
    let x = CooTensor3::from_entries(
        [big, big, big],
        vec![
            Entry3::new(big - 1, 0, big - 2, 2.0),
            Entry3::new(7, big - 3, 9, 4.0),
        ],
    )
    .unwrap();
    assert_eq!(x.nnz(), 2);
    // Column count big*big = 2^80 overflows u64: matricize must refuse
    // cleanly, not wrap.
    assert!(x.matricize(0).is_err());
    let y = CooTensor3::from_entries(
        [big, 1 << 10, 1 << 10],
        vec![Entry3::new(big - 1, 1023, 1023, 1.0)],
    )
    .unwrap();
    let m = y.matricize(0).unwrap();
    assert_eq!(m.triples()[0].1, 1023 + 1023 * (1 << 10));
}

#[test]
fn one_reducer_geometry_matches_many() {
    let x = CooTensor3::from_entries(
        [6, 6, 6],
        (0..30)
            .map(|t| Entry3::new(t % 6, (t * 7) % 6, (t * 11) % 6, (t + 1) as f64 * 0.5))
            .collect(),
    )
    .unwrap();
    let b = Mat::identity(6);
    let m1 = mttkrp(&single_machine(), Variant::Dri, &x, 0, &b, &b).unwrap();
    let big = Cluster::new(ClusterConfig {
        reducers: Some(17),
        ..ClusterConfig::with_machines(9)
    });
    let m2 = mttkrp(&big, Variant::Dri, &x, 0, &b, &b).unwrap();
    assert!(m1.approx_eq(&m2, 1e-12));
}

#[test]
fn repeated_decompositions_on_shared_cluster_accumulate_metrics() {
    let x = CooTensor3::from_entries(
        [4, 4, 4],
        (0..12)
            .map(|t| Entry3::new(t % 4, (t * 3) % 4, (t * 5) % 4, 1.0))
            .collect(),
    )
    .unwrap();
    let cluster = single_machine();
    let opts = AlsOptions {
        max_iters: 1,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let r1 = parafac_als(&cluster, &x, 2, &opts).unwrap();
    let r2 = parafac_als(&cluster, &x, 2, &opts).unwrap();
    // Each result's metrics cover only its own jobs…
    assert_eq!(r1.metrics.total_jobs(), 6);
    assert_eq!(r2.metrics.total_jobs(), 6);
    // …while the cluster accumulates both.
    assert_eq!(cluster.metrics().total_jobs(), 12);
}
