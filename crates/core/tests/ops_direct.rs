//! Direct tests of each distributed operation in `haten2_core::ops`
//! against the single-machine references in `haten2_tensor::ops`.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_core::ops::{
    collapse_job, cross_merge_job, hadamard_vec_job, imhp_job, model_inner_product_job,
    naive_ttv_job, pairwise_merge_job,
};
use haten2_core::records::tensor_records;
use haten2_linalg::Mat;
use haten2_mapreduce::{Cluster, ClusterConfig};
use haten2_tensor::ops as reference;
use haten2_tensor::{CooTensor3, Entry3};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::with_machines(3))
}

fn sample(seed: u64) -> CooTensor3 {
    let mut rng = StdRng::seed_from_u64(seed);
    let entries = (0..25)
        .map(|_| {
            Entry3::new(
                rng.gen_range(0..5),
                rng.gen_range(0..6),
                rng.gen_range(0..4),
                rng.gen_range(0.5..2.0),
            )
        })
        .collect();
    CooTensor3::from_entries([5, 6, 4], entries).unwrap()
}

#[test]
fn hadamard_vec_job_matches_reference() {
    let x = sample(1);
    let mut rng = StdRng::seed_from_u64(2);
    let v: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let out = hadamard_vec_job(&cluster(), "t", &tensor_records(&x), 1, &v, None).unwrap();
    let want = reference::mode_hadamard_vec(&x, 1, &v).unwrap();
    assert_eq!(out.len(), want.nnz());
    for (ix, val) in out {
        assert!((want.get(ix.0, ix.1, ix.2) - val).abs() < 1e-12);
    }
}

#[test]
fn hadamard_vec_job_tags_slot3() {
    let x = sample(3);
    let v = vec![1.0; 6];
    let out = hadamard_vec_job(&cluster(), "t", &tensor_records(&x), 1, &v, Some(7)).unwrap();
    assert!(out.iter().all(|(ix, _)| ix.3 == 7));
}

#[test]
fn collapse_job_matches_reference() {
    let x = sample(4);
    let out = collapse_job(&cluster(), "t", &tensor_records(&x), 1, false).unwrap();
    let want = reference::collapse(&x, 1).unwrap();
    assert_eq!(out.len(), want.nnz());
    for (ix, val) in out {
        assert!((want.get(ix.0, ix.1, ix.2) - val).abs() < 1e-12);
    }
}

#[test]
fn collapse_job_combiner_equivalent() {
    let x = sample(5);
    let records = tensor_records(&x);
    let mut a = collapse_job(&cluster(), "t", &records, 2, false).unwrap();
    let mut b = collapse_job(&cluster(), "t", &records, 2, true).unwrap();
    a.sort_by_key(|x| x.0);
    b.sort_by_key(|x| x.0);
    assert_eq!(a.len(), b.len());
    for ((ia, va), (ib, vb)) in a.iter().zip(&b) {
        assert_eq!(ia, ib);
        assert!((va - vb).abs() < 1e-12);
    }
}

#[test]
fn naive_ttv_job_matches_reference() {
    let x = sample(6);
    let mut rng = StdRng::seed_from_u64(7);
    let v: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let dims4 = [5, 6, 4, 1];
    let out = naive_ttv_job(&cluster(), "t", &tensor_records(&x), dims4, 1, &v).unwrap();
    let want = reference::ttv(&x, 1, &v).unwrap();
    let got: HashMap<(u64, u64, u64), f64> = out
        .into_iter()
        .map(|(ix, v)| ((ix.0, ix.1, ix.2), v))
        .collect();
    for e in want.entries() {
        let g = got.get(&(e.i, e.j, e.k)).copied().unwrap_or(0.0);
        assert!(
            (g - e.v).abs() < 1e-10,
            "at ({},{},{}): {g} vs {}",
            e.i,
            e.j,
            e.k,
            e.v
        );
    }
}

#[test]
fn imhp_job_produces_both_expansions() {
    let x = sample(8);
    let mut rng = StdRng::seed_from_u64(9);
    let bt = Mat::random(3, 6, &mut rng); // Q x J
    let ct = Mat::random(2, 4, &mut rng); // R x K
    let (tp, tdp) = imhp_job(&cluster(), "t", &tensor_records(&x), &bt, &ct).unwrap();
    // T' = X *₂ Bᵀ (values multiplied), T'' = bin(X) *₃ Cᵀ (coefs only).
    let want_tp = reference::mode_hadamard_mat(&x, 1, &bt).unwrap();
    let want_tdp = reference::mode_hadamard_mat(&x.bin(), 2, &ct).unwrap();
    assert_eq!(tp.len(), want_tp.nnz());
    assert_eq!(tdp.len(), want_tdp.nnz());
    for (ix, v) in &tp {
        assert!((want_tp.get(&[ix.0, ix.1, ix.2, ix.3]) - v).abs() < 1e-12);
    }
    for (ix, v) in &tdp {
        assert!((want_tdp.get(&[ix.0, ix.1, ix.2, ix.3]) - v).abs() < 1e-12);
    }
    // Exactly one job ran.
    // (Cluster is fresh per call in this test harness, so re-run and count.)
    let c = cluster();
    imhp_job(&c, "count", &tensor_records(&x), &bt, &ct).unwrap();
    assert_eq!(c.metrics().total_jobs(), 1);
}

#[test]
fn cross_merge_job_matches_reference() {
    let x = sample(10);
    let mut rng = StdRng::seed_from_u64(11);
    let bt = Mat::random(3, 6, &mut rng);
    let ct = Mat::random(2, 4, &mut rng);
    let c = cluster();
    let (tp, tdp) = imhp_job(&c, "imhp", &tensor_records(&x), &bt, &ct).unwrap();
    let merged = cross_merge_job(&c, "merge", &tp, &tdp).unwrap();
    let want = reference::cross_merge(
        &reference::mode_hadamard_mat(&x, 1, &bt).unwrap(),
        &reference::mode_hadamard_mat(&x.bin(), 2, &ct).unwrap(),
    )
    .unwrap();
    assert_eq!(merged.len(), want.nnz());
    for (ix, v) in merged {
        assert!((want.get(&[ix.0, ix.1, ix.2]) - v).abs() < 1e-10);
    }
}

#[test]
fn pairwise_merge_job_matches_reference() {
    let x = sample(12);
    let mut rng = StdRng::seed_from_u64(13);
    let r = 3;
    let bt = Mat::random(r, 6, &mut rng);
    let ct = Mat::random(r, 4, &mut rng);
    let c = cluster();
    let (tp, tdp) = imhp_job(&c, "imhp", &tensor_records(&x), &bt, &ct).unwrap();
    let merged = pairwise_merge_job(&c, "merge", &tp, &tdp).unwrap();
    let want = reference::pairwise_merge(
        &reference::mode_hadamard_mat(&x, 1, &bt).unwrap(),
        &reference::mode_hadamard_mat(&x.bin(), 2, &ct).unwrap(),
    )
    .unwrap();
    let got: HashMap<(u64, u64), f64> = merged
        .into_iter()
        .map(|(ix, v)| ((ix.0, ix.1), v))
        .collect();
    for (idx, v) in want.iter() {
        let g = got.get(&(idx[0], idx[1])).copied().unwrap_or(0.0);
        assert!((g - v).abs() < 1e-10);
    }
}

#[test]
fn model_inner_product_job_matches_driver() {
    let x = sample(14);
    let mut rng = StdRng::seed_from_u64(15);
    let rank = 3;
    let a = Mat::random(5, rank, &mut rng);
    let b = Mat::random(6, rank, &mut rng);
    let cm = Mat::random(4, rank, &mut rng);
    let lambda: Vec<f64> = (0..rank).map(|_| rng.gen_range(0.5..2.0)).collect();

    let got = model_inner_product_job(
        &cluster(),
        "fit",
        &tensor_records(&x),
        [&a, &b, &cm],
        &lambda,
    )
    .unwrap();

    let mut want = 0.0;
    for e in x.entries() {
        for (r, &l) in lambda.iter().enumerate() {
            want +=
                e.v * l * a.get(e.i as usize, r) * b.get(e.j as usize, r) * cm.get(e.k as usize, r);
        }
    }
    assert!((got - want).abs() < 1e-10, "{got} vs {want}");
}

#[test]
fn merge_jobs_shuffle_exactly_table_costs() {
    // CrossMerge shuffles nnz(Q+R); PairwiseMerge shuffles 2·nnz·R.
    let x = sample(16);
    let mut rng = StdRng::seed_from_u64(17);
    let (q, r) = (3usize, 2usize);
    let bt = Mat::random(q, 6, &mut rng);
    let ct = Mat::random(r, 4, &mut rng);
    let c = cluster();
    let (tp, tdp) = imhp_job(&c, "imhp", &tensor_records(&x), &bt, &ct).unwrap();
    let mark = c.jobs_run();
    cross_merge_job(&c, "cross", &tp, &tdp).unwrap();
    let m = c.metrics_since(mark);
    assert_eq!(m.jobs[0].map_output_records, x.nnz() * (q + r));

    let bt = Mat::random(r, 6, &mut rng);
    let (tp2, tdp2) = imhp_job(&c, "imhp2", &tensor_records(&x), &bt, &ct).unwrap();
    let mark = c.jobs_run();
    pairwise_merge_job(&c, "pair", &tp2, &tdp2).unwrap();
    let m = c.metrics_since(mark);
    assert_eq!(m.jobs[0].map_output_records, 2 * x.nnz() * r);
}
