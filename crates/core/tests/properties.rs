//! Property-based tests: the distributed kernels agree with the dense
//! reference implementations on arbitrary sparse tensors, for every
//! variant, every mode, and any cluster geometry.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_core::parafac::mttkrp;
use haten2_core::tucker::{project, ProjectOptions};
use haten2_core::Variant;
use haten2_linalg::Mat;
use haten2_mapreduce::{Cluster, ClusterConfig};
use haten2_tensor::ops::{mttkrp_dense, ttm};
use haten2_tensor::{CooTensor3, Entry3};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn coo_strategy() -> impl Strategy<Value = CooTensor3> {
    (2u64..6, 2u64..6, 2u64..6, 1usize..20, any::<u64>()).prop_map(|(i, j, k, n, seed)| {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..n)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..i),
                    rng.gen_range(0..j),
                    rng.gen_range(0..k),
                    rng.gen_range(-2.0..2.0f64),
                )
            })
            .collect();
        CooTensor3::from_entries([i, j, k], entries).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mttkrp_all_variants_match_reference(
        t in coo_strategy(),
        mode in 0usize..3,
        machines in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = 2usize;
        let a = Mat::random(t.dims()[0] as usize, r, &mut rng);
        let b = Mat::random(t.dims()[1] as usize, r, &mut rng);
        let c = Mat::random(t.dims()[2] as usize, r, &mut rng);
        let factors = [&a, &b, &c];
        let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
        let want = mttkrp_dense(&t, mode, [&a, &b, &c]).unwrap();
        for variant in Variant::ALL {
            let cluster = Cluster::new(ClusterConfig::with_machines(machines));
            let got = mttkrp(&cluster, variant, &t, mode, factors[others[0]], factors[others[1]])
                .unwrap();
            prop_assert!(got.approx_eq(&want, 1e-8), "{variant} mode {mode}");
        }
    }

    #[test]
    fn tucker_project_all_variants_match_reference(
        t in coo_strategy(),
        mode in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
        let u1 = Mat::random(2, t.dims()[others[0]] as usize, &mut rng);
        let u2 = Mat::random(2, t.dims()[others[1]] as usize, &mut rng);
        // Reference: sequential sparse ttm, then put target mode first.
        let ref_y = ttm(&ttm(&t, others[0], &u1).unwrap(), others[1], &u2).unwrap();
        for variant in Variant::ALL {
            let cluster = Cluster::new(ClusterConfig::with_machines(3));
            let y = project(&cluster, variant, &t, mode, &u1, &u2, &ProjectOptions::default())
                .unwrap();
            for e in y.entries() {
                // y is (target, q, r); map back to the reference layout.
                let mut idx = [0u64; 3];
                idx[mode] = e.i;
                idx[others[0]] = e.j;
                idx[others[1]] = e.k;
                let want = ref_y.get(idx[0], idx[1], idx[2]);
                prop_assert!((e.v - want).abs() < 1e-8, "{variant} mode {mode}");
            }
            prop_assert_eq!(y.nnz(), ref_y.nnz(), "{} mode {}", variant, mode);
        }
    }

    #[test]
    fn job_counts_invariant_to_cluster_geometry(
        t in coo_strategy(),
        machines in 1usize..8,
        threads in 1usize..4,
    ) {
        // Job count is an algorithm property, not an execution property.
        let mut rng = StdRng::seed_from_u64(7);
        let r = 2usize;
        let f1 = Mat::random(t.dims()[1] as usize, r, &mut rng);
        let f2 = Mat::random(t.dims()[2] as usize, r, &mut rng);
        for variant in Variant::ALL {
            let cfg = ClusterConfig { threads, ..ClusterConfig::with_machines(machines) };
            let cluster = Cluster::new(cfg);
            mttkrp(&cluster, variant, &t, 0, &f1, &f2).unwrap();
            prop_assert_eq!(
                cluster.metrics().total_jobs(),
                haten2_core::parafac::expected_jobs(variant, r),
                "{}", variant
            );
        }
    }

    #[test]
    fn combiner_does_not_change_tucker_result(t in coo_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u1 = Mat::random(2, t.dims()[1] as usize, &mut rng);
        let u2 = Mat::random(2, t.dims()[2] as usize, &mut rng);
        let run = |use_combiner: bool| {
            let cluster = Cluster::new(ClusterConfig::with_machines(3));
            project(
                &cluster,
                Variant::Dnn,
                &t,
                0,
                &u1,
                &u2,
                &ProjectOptions { use_combiner },
            )
            .unwrap()
        };
        let plain = run(false);
        let combined = run(true);
        prop_assert_eq!(plain.nnz(), combined.nnz());
        for e in plain.entries() {
            prop_assert!((combined.get(e.i, e.j, e.k) - e.v).abs() < 1e-10);
        }
    }

    #[test]
    fn intermediate_records_scale_with_rank_for_dri(
        t in coo_strategy(),
        r1 in 1usize..3,
    ) {
        // DRI's merge job maps exactly 2·nnz·R records (Table IV). (The
        // IMHP job can emit more on tiny tensors where the factor rows
        // outnumber nonzeros, so look at the merge job specifically.)
        let r2 = r1 * 2;
        let rng = StdRng::seed_from_u64(3);
        let run = |r: usize| {
            let f1 = Mat::random(t.dims()[1] as usize, r, &mut rng.clone());
            let f2 = Mat::random(t.dims()[2] as usize, r, &mut rng.clone());
            let cluster = Cluster::new(ClusterConfig::with_machines(2));
            mttkrp(&cluster, Variant::Dri, &t, 0, &f1, &f2).unwrap();
            let m = cluster.metrics();
            m.jobs
                .iter()
                .find(|j| j.name.contains("pairwisemerge"))
                .expect("merge job ran")
                .map_output_records
        };
        let m1 = run(r1);
        let m2 = run(r2);
        prop_assert_eq!(m1, 2 * t.nnz() * r1);
        prop_assert_eq!(m2, 2 * t.nnz() * r2);
    }
}
