//! Generated property tests for every reducer the plans declare
//! commutative-associative (`PlanJob::comm_assoc`, backed by
//! `COMM_ASSOC_REDUCERS`). The determinism pass allows these reducers to
//! fold floats *because* of that declaration, so each entry's fold is
//! property-checked here: over exactly-representable inputs it must be
//! invariant, bit-for-bit, under any permutation and any reassociation of
//! its value stream — precisely what Hadoop's unordered shuffle and
//! combiner splits can do to it.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_core::{comm_assoc_annotation, COMM_ASSOC_REDUCERS};
use proptest::prelude::*;

/// Integer-valued `f64`s: exact under addition as long as partial sums
/// stay far below 2^53, so reorderings that change *rounding* (the thing
/// the annotation rules out) cannot hide behind tolerance.
fn exact_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1_000_000i64..1_000_000, 0..40)
        .prop_map(|xs| xs.into_iter().map(|x| x as f64).collect())
}

/// Assert the registered fold at `site` is permutation- and
/// reassociation-invariant on `xs`, bit-exactly.
fn check_site(site: &str, xs: &[f64], cut: usize, rot: usize) {
    let ann = comm_assoc_annotation(site)
        .unwrap_or_else(|| panic!("site '{site}' missing from COMM_ASSOC_REDUCERS"));
    let reduce = ann.reduce;
    let base = reduce(xs);

    // Permutation: rotate then reverse — together these generate enough of
    // the symmetric group to catch order-dependent folds.
    let mut perm = xs.to_vec();
    if !perm.is_empty() {
        let r = rot % perm.len();
        perm.rotate_left(r);
    }
    perm.reverse();
    assert_eq!(
        base.to_bits(),
        reduce(&perm).to_bits(),
        "{site}: fold is order-dependent on {xs:?}"
    );

    // Reassociation: a combiner may pre-fold any prefix on the map side
    // and hand the reducer [fold(prefix), rest...].
    let c = cut.min(xs.len());
    let (a, b) = xs.split_at(c);
    let split = [reduce(a), reduce(b)];
    assert_eq!(
        base.to_bits(),
        reduce(&split).to_bits(),
        "{site}: fold is association-dependent on {xs:?} split at {c}"
    );
}

/// One generated property test per annotated reducer site. The
/// completeness test below pins this list to the registry, so adding an
/// annotation without a property test fails CI.
macro_rules! comm_assoc_properties {
    ($($name:ident => $site:expr),+ $(,)?) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            $(
                #[test]
                fn $name(xs in exact_values(), cut in 0usize..40, rot in 0usize..40) {
                    check_site($site, &xs, cut, rot);
                }
            )+
        }
        const GENERATED_SITES: &[&str] = &[$($site),+];
    };
}

comm_assoc_properties! {
    naive_ttv_fold_is_comm_assoc => "naive_ttv_job",
    collapse_fold_is_comm_assoc => "collapse_job",
    cross_merge_fold_is_comm_assoc => "cross_merge_job",
    cross_merge_split_fold_is_comm_assoc => "cross_merge_split_job",
    pairwise_merge_fold_is_comm_assoc => "pairwise_merge_job",
    pairwise_merge_split_fold_is_comm_assoc => "pairwise_merge_split_job",
    model_inner_product_fold_is_comm_assoc => "model_inner_product_job",
    nway_pairwisemerge_fold_is_comm_assoc => "nway-pairwisemerge-mode{}",
    nway_crossmerge_fold_is_comm_assoc => "nway-crossmerge-mode{}",
}

#[test]
fn every_registered_reducer_has_a_generated_test() {
    let mut registered: Vec<&str> = COMM_ASSOC_REDUCERS.iter().map(|a| a.site).collect();
    let mut generated: Vec<&str> = GENERATED_SITES.to_vec();
    registered.sort_unstable();
    generated.sort_unstable();
    assert_eq!(
        registered, generated,
        "COMM_ASSOC_REDUCERS and the generated property tests disagree"
    );
}

#[test]
fn negative_control_an_order_dependent_fold_fails_the_property() {
    // A fold that halves the accumulator before each add is neither
    // commutative nor associative; the harness must be able to tell.
    fn leaky(xs: &[f64]) -> f64 {
        let mut acc = 0.0;
        for x in xs {
            acc = acc * 0.5 + x;
        }
        acc
    }
    let xs = [1.0, 2.0];
    let mut rev = xs;
    rev.reverse();
    assert_ne!(leaky(&xs).to_bits(), leaky(&rev).to_bits());
}
