//! Property-based tests: the N-way kernels specialize exactly to the 3-way
//! kernels and to the dense references on arbitrary sparse tensors.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_core::nway::{nway_mttkrp, nway_tucker_project};
use haten2_core::tucker::{project, ProjectOptions};
use haten2_core::Variant;
use haten2_linalg::Mat;
use haten2_mapreduce::{Cluster, ClusterConfig};
use haten2_tensor::ops::mttkrp_dense;
use haten2_tensor::{CooTensor3, DynTensor, Entry3};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn coo_strategy() -> impl Strategy<Value = CooTensor3> {
    (2u64..6, 2u64..6, 2u64..6, 1usize..16, any::<u64>()).prop_map(|(i, j, k, n, seed)| {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..n)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..i),
                    rng.gen_range(0..j),
                    rng.gen_range(0..k),
                    rng.gen_range(-2.0..2.0f64),
                )
            })
            .collect();
        CooTensor3::from_entries([i, j, k], entries).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn nway_mttkrp_specializes_to_dense_reference(
        t in coo_strategy(),
        mode in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = 2usize;
        let a = Mat::random(t.dims()[0] as usize, r, &mut rng);
        let b = Mat::random(t.dims()[1] as usize, r, &mut rng);
        let c = Mat::random(t.dims()[2] as usize, r, &mut rng);
        let x = DynTensor::from_coo3(&t);
        let cluster = Cluster::new(ClusterConfig::with_machines(3));
        let got = nway_mttkrp(&cluster, &x, mode, &[&a, &b, &c]).unwrap();
        let want = mttkrp_dense(&t, mode, [&a, &b, &c]).unwrap();
        prop_assert!(got.approx_eq(&want, 1e-8), "mode {mode}");
        prop_assert_eq!(cluster.metrics().total_jobs(), 2);
    }

    #[test]
    fn nway_tucker_project_specializes_to_3way_dri(
        t in coo_strategy(),
        mode in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
        let dims = t.dims();
        let factors: Vec<Mat> = (0..3)
            .map(|m| Mat::random(dims[m] as usize, 2, &mut rng))
            .collect();
        let refs: Vec<&Mat> = factors.iter().collect();
        let x = DynTensor::from_coo3(&t);

        let cluster = Cluster::new(ClusterConfig::with_machines(3));
        let got = nway_tucker_project(&cluster, &x, mode, &refs).unwrap();

        let cluster2 = Cluster::new(ClusterConfig::with_machines(3));
        let want = project(
            &cluster2,
            Variant::Dri,
            &t,
            mode,
            &factors[others[0]].transpose(),
            &factors[others[1]].transpose(),
            &ProjectOptions::default(),
        )
        .unwrap();

        prop_assert_eq!(got.nnz(), want.nnz());
        for (idx, v) in got.iter() {
            prop_assert!((want.get(idx[0], idx[1], idx[2]) - v).abs() < 1e-8);
        }
    }

    #[test]
    fn nway_mttkrp_linear_in_tensor_values(t in coo_strategy(), seed in any::<u64>()) {
        // M(2·X) = 2·M(X): the kernel is linear in the tensor.
        let mut rng = StdRng::seed_from_u64(seed);
        let r = 2usize;
        let a = Mat::random(t.dims()[0] as usize, r, &mut rng);
        let b = Mat::random(t.dims()[1] as usize, r, &mut rng);
        let c = Mat::random(t.dims()[2] as usize, r, &mut rng);
        let x1 = DynTensor::from_coo3(&t);
        let mut t2 = t.clone();
        t2.scale(2.0);
        let x2 = DynTensor::from_coo3(&t2);
        let cluster = Cluster::new(ClusterConfig::with_machines(2));
        let m1 = nway_mttkrp(&cluster, &x1, 0, &[&a, &b, &c]).unwrap();
        let m2 = nway_mttkrp(&cluster, &x2, 0, &[&a, &b, &c]).unwrap();
        for i in 0..m1.rows() {
            for rr in 0..r {
                prop_assert!((2.0 * m1.get(i, rr) - m2.get(i, rr)).abs() < 1e-8);
            }
        }
    }
}
