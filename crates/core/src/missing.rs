//! PARAFAC with missing values (tensor completion) on the HaTen2 kernels.
//!
//! The paper's other named future-work direction. The algorithm is EM-ALS:
//! treat the tensor's stored cells as the *observed* set Ω and everything
//! else as missing (not zero). Each sweep solves the ordinary ALS update
//! against the imputed tensor `X_filled = X on Ω, X̂ elsewhere`, using the
//! decomposition
//!
//! ```text
//! MTTKRP(X_filled) = MTTKRP(Δ) + MTTKRP(X̂),   Δ = (X − X̂) restricted to Ω
//! ```
//!
//! `Δ` is sparse with `|Ω|` nonzeros, so its MTTKRP runs on the same
//! distributed HaTen2 kernels as everything else; `MTTKRP(X̂)` has the
//! closed dense form `A (BᵀB ⊛ CᵀC)` (for mode 0) and never materializes
//! the dense model. Intermediate data and job counts therefore follow
//! Table IV per sweep, same as plain PARAFAC.

use crate::als::AlsOptions;
use crate::{parafac, CoreError, Result};
use haten2_linalg::{pinv, Mat};
use haten2_mapreduce::{Cluster, RunMetrics};
use haten2_tensor::{CooTensor3, Entry3};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of [`parafac_missing`].
#[derive(Debug, Clone)]
pub struct MissingParafacResult {
    /// Factor matrices (unnormalized: the scale lives in the factors).
    pub factors: [Mat; 3],
    /// Fit over the observed cells, `1 − ‖X − X̂‖_Ω / ‖X‖_Ω`, per sweep.
    pub fits: Vec<f64>,
    /// Sweeps executed.
    pub iterations: usize,
    /// MapReduce metrics.
    pub metrics: RunMetrics,
}

impl MissingParafacResult {
    /// Final observed-cell fit.
    pub fn fit(&self) -> f64 {
        self.fits.last().copied().unwrap_or(0.0)
    }

    /// Completed value at any cell (observed or missing).
    pub fn predict(&self, i: u64, j: u64, k: u64) -> f64 {
        let [a, b, c] = &self.factors;
        (0..a.cols())
            .map(|r| a.get(i as usize, r) * b.get(j as usize, r) * c.get(k as usize, r))
            .sum()
    }
}

/// EM-ALS PARAFAC over the observed cells of `x` (its stored entries form
/// the observation set Ω; absent cells are *missing*, not zero).
pub fn parafac_missing(
    cluster: &Cluster,
    x: &CooTensor3,
    rank: usize,
    opts: &AlsOptions,
) -> Result<MissingParafacResult> {
    if rank == 0 {
        return Err(CoreError::InvalidArgument("rank must be positive".into()));
    }
    if x.nnz() == 0 {
        return Err(CoreError::InvalidArgument("no observed cells".into()));
    }
    let dims = x.dims();
    let mark = cluster.jobs_run();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut factors = [
        Mat::random(dims[0] as usize, rank, &mut rng),
        Mat::random(dims[1] as usize, rank, &mut rng),
        Mat::random(dims[2] as usize, rank, &mut rng),
    ];
    let norm_obs_sq = x.fro_norm_sq();
    let norm_obs = norm_obs_sq.sqrt();

    let mut fits = Vec::new();
    let mut iterations = 0;
    for _ in 0..opts.max_iters {
        iterations += 1;
        for mode in 0..3 {
            let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();

            // Δ = (X − X̂) on Ω — sparse, same support as X.
            let delta = residual_on_support(x, &factors);

            // Distributed MTTKRP of the sparse correction.
            let m_delta = parafac::mttkrp(
                cluster,
                opts.variant,
                &delta,
                mode,
                &factors[others[0]],
                &factors[others[1]],
            )?;

            // Closed-form MTTKRP of the dense model: F_mode (G₁ ⊛ G₂).
            let g = factors[others[0]]
                .gram()
                .hadamard(&factors[others[1]].gram())
                .map_err(CoreError::Linalg)?;
            let m_model = factors[mode].matmul(&g).map_err(CoreError::Linalg)?;
            let m_filled = m_delta.add(&m_model).map_err(CoreError::Linalg)?;

            factors[mode] = m_filled.matmul(&pinv(&g)?).map_err(CoreError::Linalg)?;
        }

        // Observed-cell fit.
        let mut err_sq = 0.0;
        for e in x.entries() {
            let model: f64 = (0..rank)
                .map(|r| {
                    factors[0].get(e.i as usize, r)
                        * factors[1].get(e.j as usize, r)
                        * factors[2].get(e.k as usize, r)
                })
                .sum();
            let d = e.v - model;
            err_sq += d * d;
        }
        let fit = if norm_obs > 0.0 {
            1.0 - err_sq.sqrt() / norm_obs
        } else {
            1.0
        };
        let prev = fits.last().copied();
        fits.push(fit);
        if let Some(p) = prev {
            if (fit - p).abs() < opts.tol {
                break;
            }
        }
    }

    Ok(MissingParafacResult {
        factors,
        fits,
        iterations,
        metrics: cluster.metrics_since(mark),
    })
}

/// `(X − X̂)` restricted to the support of `X`.
fn residual_on_support(x: &CooTensor3, factors: &[Mat; 3]) -> CooTensor3 {
    let rank = factors[0].cols();
    let entries: Vec<Entry3> = x
        .entries()
        .iter()
        .map(|e| {
            let model: f64 = (0..rank)
                .map(|r| {
                    factors[0].get(e.i as usize, r)
                        * factors[1].get(e.j as usize, r)
                        * factors[2].get(e.k as usize, r)
                })
                .sum();
            Entry3::new(e.i, e.j, e.k, e.v - model)
        })
        .collect();
    CooTensor3::from_entries(x.dims(), entries).expect("same support as x")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variant;
    use haten2_mapreduce::ClusterConfig;
    use rand::Rng;

    /// Low-rank dense tensor split into observed / held-out cells.
    fn completion_setup(
        dims: [u64; 3],
        rank: usize,
        observe_frac: f64,
        seed: u64,
    ) -> (CooTensor3, Vec<Entry3>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(dims[0] as usize, rank, &mut rng);
        let b = Mat::random(dims[1] as usize, rank, &mut rng);
        let c = Mat::random(dims[2] as usize, rank, &mut rng);
        let mut observed = Vec::new();
        let mut held_out = Vec::new();
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    let v: f64 = (0..rank)
                        .map(|r| a.get(i as usize, r) * b.get(j as usize, r) * c.get(k as usize, r))
                        .sum();
                    let e = Entry3::new(i, j, k, v);
                    if rng.gen::<f64>() < observe_frac {
                        observed.push(e);
                    } else {
                        held_out.push(e);
                    }
                }
            }
        }
        (CooTensor3::from_entries(dims, observed).unwrap(), held_out)
    }

    #[test]
    fn completes_held_out_cells_of_low_rank_tensor() {
        let (x, held_out) = completion_setup([7, 6, 5], 2, 0.7, 91);
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        let opts = AlsOptions {
            max_iters: 60,
            tol: 1e-10,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = parafac_missing(&cluster, &x, 2, &opts).unwrap();
        assert!(res.fit() > 0.99, "observed fit = {}", res.fit());

        // The held-out cells — never seen by the solver — are recovered.
        let norm: f64 = held_out.iter().map(|e| e.v * e.v).sum::<f64>().sqrt();
        let err: f64 = held_out
            .iter()
            .map(|e| {
                let d = res.predict(e.i, e.j, e.k) - e.v;
                d * d
            })
            .sum::<f64>()
            .sqrt();
        assert!(
            err / norm.max(1e-12) < 0.05,
            "held-out rel err {}",
            err / norm
        );
    }

    #[test]
    fn fit_monotone_on_observed() {
        let (x, _) = completion_setup([6, 6, 6], 2, 0.6, 92);
        let cluster = Cluster::new(ClusterConfig::with_machines(3));
        let opts = AlsOptions {
            max_iters: 10,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = parafac_missing(&cluster, &x, 2, &opts).unwrap();
        for w in res.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "fits {:?}", res.fits);
        }
    }

    #[test]
    fn rejects_empty_observation_set() {
        let x = CooTensor3::new([3, 3, 3]);
        let cluster = Cluster::with_defaults();
        assert!(parafac_missing(&cluster, &x, 2, &AlsOptions::default()).is_err());
    }

    #[test]
    fn em_beats_zero_filling_on_held_out_cells() {
        // Treating missing cells as zeros biases the model toward zero;
        // EM should complete the held-out cells strictly better.
        let (x, held_out) = completion_setup([6, 5, 5], 2, 0.55, 93);
        let cluster = Cluster::new(ClusterConfig::with_machines(3));
        let opts = AlsOptions {
            max_iters: 40,
            tol: 1e-10,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let em = parafac_missing(&cluster, &x, 2, &opts).unwrap();
        let zf = crate::als::parafac_als(&cluster, &x, 2, &opts).unwrap();

        let err = |pred: &dyn Fn(u64, u64, u64) -> f64| -> f64 {
            held_out
                .iter()
                .map(|e| {
                    let d = pred(e.i, e.j, e.k) - e.v;
                    d * d
                })
                .sum::<f64>()
                .sqrt()
        };
        let em_err = err(&|i, j, k| em.predict(i, j, k));
        let zf_err = err(&|i, j, k| zf.predict(i, j, k));
        assert!(
            em_err < zf_err,
            "EM held-out err {em_err} should beat zero-filled {zf_err}"
        );
    }

    #[test]
    fn per_sweep_job_count_matches_plain_parafac() {
        // EM adds no extra distributed jobs: MTTKRP(X̂) is closed-form.
        let (x, _) = completion_setup([5, 5, 5], 2, 0.6, 94);
        let cluster = Cluster::new(ClusterConfig::with_machines(2));
        let opts = AlsOptions {
            max_iters: 2,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = parafac_missing(&cluster, &x, 2, &opts).unwrap();
        assert_eq!(res.metrics.total_jobs(), 12); // 2 jobs x 3 modes x 2 sweeps
    }
}
