//! Alternating-least-squares drivers: PARAFAC-ALS (Algorithm 1) and
//! Tucker-ALS (Algorithm 2) on top of the distributed HaTen2 kernels.
//!
//! The distributed work — MTTKRP for PARAFAC, the two-sided projection for
//! Tucker — goes through [`crate::parafac::mttkrp`] / [`crate::tucker::project`]
//! with the configured [`Variant`]. Each kernel invocation submits its jobs
//! as one [`haten2_mapreduce::Batch`], so the per-column jobs of a sweep
//! run concurrently on the shared worker pool when the cluster's
//! [`haten2_mapreduce::SchedulerMode`] is `Dag` (the default) — with
//! outputs, DFS traffic, and metrics bit-identical to sequential
//! execution. The small dense driver-side steps (pseudoinverse of the
//! `R×R` Hadamard Gram matrix, leading singular vectors of the `Iₙ×QR`
//! matricized projection, column normalization) use `haten2-linalg`,
//! mirroring how the Hadoop implementation kept these on the master; the
//! optional distributed fit job runs cluster-direct, outside any batch.

use crate::tucker::ProjectOptions;
use crate::{parafac, tucker, CoreError, Result, Variant};
use haten2_linalg::{leading_left_singular_vectors, pinv, thin_qr, Mat, SubspaceOptions};
use haten2_mapreduce::{Cluster, RunMetrics};
use haten2_tensor::{CooTensor3, DenseTensor3};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Options shared by both ALS drivers.
#[derive(Debug, Clone)]
pub struct AlsOptions {
    /// Which HaTen2 variant performs the distributed kernels.
    pub variant: Variant,
    /// Maximum outer (sweep) iterations `T`.
    pub max_iters: usize,
    /// Convergence tolerance: stop when the fit (PARAFAC) or `‖G‖`
    /// (Tucker) changes by less than this between sweeps.
    pub tol: f64,
    /// Seed for factor initialization.
    pub seed: u64,
    /// Use a map-side combiner in Collapse jobs (ablation knob).
    pub use_combiner: bool,
    /// Evaluate the PARAFAC fit's inner product `⟨X, X̂⟩` as a MapReduce
    /// job (as the Hadoop implementation does) instead of on the driver.
    /// Adds one job per sweep; results are identical.
    pub distributed_fit: bool,
    /// When set, save a checkpoint (factors + sweep marker) under this
    /// path prefix after every [`AlsOptions::checkpoint_every`]-th
    /// completed sweep, so a mid-run crash can resume via
    /// [`crate::checkpoint::parafac_als_checkpointed`] /
    /// [`crate::checkpoint::tucker_als_checkpointed`].
    pub checkpoint_prefix: Option<String>,
    /// Checkpoint cadence in sweeps (values below 1 behave as 1).
    pub checkpoint_every: usize,
    /// Absolute index of the first sweep this call runs (non-zero when
    /// resuming from a checkpoint). Keeps sweep-seeded randomness — the
    /// Tucker subspace-iteration seeds — aligned with the uninterrupted
    /// run, which is what makes resumed results bit-identical.
    pub first_sweep: usize,
}

impl Default for AlsOptions {
    fn default() -> Self {
        AlsOptions {
            variant: Variant::Dri,
            max_iters: 20,
            tol: 1e-4,
            seed: 0x5eed,
            use_combiner: false,
            distributed_fit: false,
            checkpoint_prefix: None,
            checkpoint_every: 1,
            first_sweep: 0,
        }
    }
}

impl AlsOptions {
    /// Options running a specific variant with defaults otherwise.
    pub fn with_variant(variant: Variant) -> Self {
        AlsOptions {
            variant,
            ..Default::default()
        }
    }
}

/// Result of [`parafac_als`].
#[derive(Debug, Clone)]
pub struct ParafacResult {
    /// Column norms `λ ∈ ℝ^R` (Algorithm 1's normalization weights).
    pub lambda: Vec<f64>,
    /// Factor matrices `A ∈ ℝ^{I×R}`, `B ∈ ℝ^{J×R}`, `C ∈ ℝ^{K×R}` with
    /// unit-norm columns.
    pub factors: [Mat; 3],
    /// Fit `1 − ‖X − X̂‖/‖X‖` after each sweep.
    pub fits: Vec<f64>,
    /// Sweeps executed.
    pub iterations: usize,
    /// MapReduce metrics for the whole decomposition.
    pub metrics: RunMetrics,
}

impl ParafacResult {
    /// Final fit (0 when no sweep ran).
    pub fn fit(&self) -> f64 {
        self.fits.last().copied().unwrap_or(0.0)
    }

    /// Model value `X̂(i,j,k) = Σ_r λ_r A(i,r) B(j,r) C(k,r)`.
    pub fn predict(&self, i: u64, j: u64, k: u64) -> f64 {
        let [a, b, c] = &self.factors;
        (0..self.lambda.len())
            .map(|r| {
                self.lambda[r] * a.get(i as usize, r) * b.get(j as usize, r) * c.get(k as usize, r)
            })
            .sum()
    }
}

/// 3-way PARAFAC-ALS (paper Algorithm 1).
///
/// Each sweep updates the three factors in turn:
/// `A ← X₍₁₎(C ⊙ B)(CᵀC * BᵀB)†` (and cyclically), with the MTTKRP
/// executed distributedly by the configured variant, then normalizes
/// columns into `λ`.
///
/// ```
/// use haten2_core::{parafac_als, AlsOptions, Variant};
/// use haten2_mapreduce::{Cluster, ClusterConfig};
/// use haten2_tensor::{CooTensor3, Entry3};
///
/// // A rank-1 tensor: X(i,j,k) = a_i b_j c_k.
/// let mut entries = Vec::new();
/// for i in 0..4u64 {
///     for j in 0..3u64 {
///         for k in 0..2u64 {
///             let v = (i + 1) as f64 * (j + 1) as f64 * (k + 1) as f64;
///             entries.push(Entry3::new(i, j, k, v));
///         }
///     }
/// }
/// let x = CooTensor3::from_entries([4, 3, 2], entries).unwrap();
///
/// let cluster = Cluster::new(ClusterConfig::with_machines(4));
/// let opts = AlsOptions { max_iters: 10, tol: 1e-10, ..AlsOptions::with_variant(Variant::Dri) };
/// let res = parafac_als(&cluster, &x, 1, &opts).unwrap();
/// assert!(res.fit() > 0.9999);
/// assert!((res.predict(3, 2, 1) - 24.0).abs() < 1e-6);
/// ```
pub fn parafac_als(
    cluster: &Cluster,
    x: &CooTensor3,
    rank: usize,
    opts: &AlsOptions,
) -> Result<ParafacResult> {
    parafac_als_with_init(cluster, x, rank, opts, None)
}

/// [`parafac_als`] with an optional warm start: when `init` is given, the
/// sweeps continue from those factors instead of a random initialization
/// (checkpoint/resume, or refining a compressed solution).
pub fn parafac_als_with_init(
    cluster: &Cluster,
    x: &CooTensor3,
    rank: usize,
    opts: &AlsOptions,
    init: Option<[Mat; 3]>,
) -> Result<ParafacResult> {
    if rank == 0 {
        return Err(CoreError::InvalidArgument("rank must be positive".into()));
    }
    let dims = x.dims();
    if let Some(init) = &init {
        for (n, f) in init.iter().enumerate() {
            if f.rows() != dims[n] as usize || f.cols() != rank {
                return Err(CoreError::InvalidArgument(format!(
                    "init factor {n} is {}x{}, expected {}x{rank}",
                    f.rows(),
                    f.cols(),
                    dims[n]
                )));
            }
        }
    }
    let mark = cluster.jobs_run();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut factors = init.unwrap_or_else(|| {
        [
            Mat::random(dims[0] as usize, rank, &mut rng),
            Mat::random(dims[1] as usize, rank, &mut rng),
            Mat::random(dims[2] as usize, rank, &mut rng),
        ]
    });
    let mut lambda = vec![1.0; rank];
    let norm_x_sq = x.fro_norm_sq();
    let norm_x = norm_x_sq.sqrt();

    let mut fits: Vec<f64> = Vec::new();
    let mut iterations = 0;
    for sweep in 0..opts.max_iters {
        iterations += 1;
        let mut last_mttkrp: Option<Mat> = None;
        for mode in 0..3 {
            let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            let m = parafac::mttkrp(
                cluster,
                opts.variant,
                x,
                mode,
                &factors[others[0]],
                &factors[others[1]],
            )?;
            // (F₁ᵀF₁ * F₂ᵀF₂)†
            let g = factors[others[0]]
                .gram()
                .hadamard(&factors[others[1]].gram())
                .map_err(CoreError::Linalg)?;
            let updated = m.matmul(&pinv(&g)?).map_err(CoreError::Linalg)?;
            factors[mode] = updated;
            lambda = factors[mode].normalize_columns();
            if mode == 2 {
                last_mttkrp = Some(m);
            }
        }

        // Fit: ⟨X, X̂⟩ either from the last MTTKRP (driver-side, free) or
        // recomputed as a MapReduce job when configured.
        let inner = if opts.distributed_fit {
            let x_records = crate::records::tensor_records(x);
            crate::ops::model_inner_product_job(
                cluster,
                "parafac-fit",
                &x_records,
                [&factors[0], &factors[1], &factors[2]],
                &lambda,
            )?
        } else {
            let m = last_mttkrp.as_ref().expect("three modes were swept");
            let c = &factors[2];
            let mut inner = 0.0;
            for k in 0..c.rows() {
                for (r, &l) in lambda.iter().enumerate() {
                    inner += m.get(k, r) * c.get(k, r) * l;
                }
            }
            inner
        };
        // ‖X̂‖² = λᵀ (AᵀA * BᵀB * CᵀC) λ.
        let g_all = factors[0]
            .gram()
            .hadamard(&factors[1].gram())
            .and_then(|g| g.hadamard(&factors[2].gram()))
            .map_err(CoreError::Linalg)?;
        let mut norm_model_sq = 0.0;
        for r in 0..rank {
            for s in 0..rank {
                norm_model_sq += lambda[r] * lambda[s] * g_all.get(r, s);
            }
        }
        let err_sq = (norm_x_sq + norm_model_sq - 2.0 * inner).max(0.0);
        let fit = if norm_x > 0.0 {
            1.0 - err_sq.sqrt() / norm_x
        } else {
            1.0
        };
        let prev = fits.last().copied();
        fits.push(fit);
        crate::checkpoint::maybe_save_parafac(cluster, opts, sweep, &lambda, &factors)?;
        if let Some(p) = prev {
            if (fit - p).abs() < opts.tol {
                break;
            }
        }
    }

    Ok(ParafacResult {
        lambda,
        factors,
        fits,
        iterations,
        metrics: cluster.metrics_since(mark),
    })
}

/// Result of [`tucker_als`].
#[derive(Debug, Clone)]
pub struct TuckerResult {
    /// Core tensor `G ∈ ℝ^{P×Q×R}`.
    pub core: DenseTensor3,
    /// Orthonormal factor matrices `A ∈ ℝ^{I×P}`, `B ∈ ℝ^{J×Q}`,
    /// `C ∈ ℝ^{K×R}`.
    pub factors: [Mat; 3],
    /// `‖G‖` after each sweep (Algorithm 2's convergence quantity).
    pub core_norms: Vec<f64>,
    /// Sweeps executed.
    pub iterations: usize,
    /// Fit `1 − ‖X − X̂‖/‖X‖` (uses `‖X̂‖ = ‖G‖`, valid for orthonormal
    /// factors).
    pub fit: f64,
    /// MapReduce metrics for the whole decomposition.
    pub metrics: RunMetrics,
}

/// 3-way Tucker-ALS (paper Algorithm 2), HOOI-style.
///
/// Each sweep recomputes, for every mode, the projection of `X` onto the
/// other two factors (distributed, per the configured variant) and takes
/// the leading left singular vectors of its matricization (driver-side
/// subspace iteration over the sparse matricized operator — never
/// densified). Terminates when `‖G‖` stops increasing.
pub fn tucker_als(
    cluster: &Cluster,
    x: &CooTensor3,
    core_dims: [usize; 3],
    opts: &AlsOptions,
) -> Result<TuckerResult> {
    tucker_als_with_init(cluster, x, core_dims, opts, None)
}

/// [`tucker_als`] with an optional warm start for the mode-1/mode-2
/// factors `[B, C]` (mode-0 is recomputed first in every sweep, so only
/// the trailing factors seed the iteration).
pub fn tucker_als_with_init(
    cluster: &Cluster,
    x: &CooTensor3,
    core_dims: [usize; 3],
    opts: &AlsOptions,
    init_bc: Option<[Mat; 2]>,
) -> Result<TuckerResult> {
    let dims = x.dims();
    let [p_dim, q_dim, r_dim] = core_dims;
    for (n, (&cd, &d)) in core_dims.iter().zip(dims.iter()).enumerate() {
        if cd == 0 || cd as u64 > d {
            return Err(CoreError::InvalidArgument(format!(
                "core dim {cd} invalid for mode {n} of size {d}"
            )));
        }
    }
    // Leading-left-singular-vector extraction needs core_dims[n] ≤ product
    // of the other two core dims (columns of the matricized projection).
    let products = [q_dim * r_dim, p_dim * r_dim, p_dim * q_dim];
    for n in 0..3 {
        if core_dims[n] > products[n] {
            return Err(CoreError::InvalidArgument(format!(
                "core dim {} for mode {n} exceeds the {} columns of the matricized projection",
                core_dims[n], products[n]
            )));
        }
    }

    if let Some(init) = &init_bc {
        let expect = [(dims[1] as usize, q_dim), (dims[2] as usize, r_dim)];
        for (n, (f, &(rows, cols))) in init.iter().zip(expect.iter()).enumerate() {
            if f.rows() != rows || f.cols() != cols {
                return Err(CoreError::InvalidArgument(format!(
                    "init factor {} is {}x{}, expected {rows}x{cols}",
                    n + 1,
                    f.rows(),
                    f.cols()
                )));
            }
        }
    }
    let mark = cluster.jobs_run();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    // Initialize B and C with orthonormal columns (A is computed first).
    let mut factors = match init_bc {
        Some([b, c]) => [Mat::zeros(dims[0] as usize, p_dim), b, c],
        None => [
            Mat::zeros(dims[0] as usize, p_dim),
            thin_qr(&Mat::random(dims[1] as usize, q_dim, &mut rng))?,
            thin_qr(&Mat::random(dims[2] as usize, r_dim, &mut rng))?,
        ],
    };
    let norm_x_sq = x.fro_norm_sq();
    let norm_x = norm_x_sq.sqrt();
    let project_opts = ProjectOptions {
        use_combiner: opts.use_combiner,
    };

    let mut core_norms: Vec<f64> = Vec::new();
    let mut core = DenseTensor3::zeros(core_dims);
    let mut iterations = 0;

    for sweep in 0..opts.max_iters {
        iterations += 1;
        let mut last_y: Option<CooTensor3> = None;
        for mode in 0..3 {
            let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            let u1 = factors[others[0]].transpose();
            let u2 = factors[others[1]].transpose();
            let y = tucker::project(cluster, opts.variant, x, mode, &u1, &u2, &project_opts)?;
            // Leading left singular vectors of Y₍₁₎ (canonical mode 0).
            let y_mat = y.matricize(0)?;
            // Seed by the *absolute* sweep index so a checkpoint-resumed
            // run (first_sweep > 0) replays the identical seed sequence.
            let abs_sweep = (opts.first_sweep + sweep) as u64;
            let sub_opts = SubspaceOptions {
                seed: opts.seed ^ (abs_sweep << 8 | mode as u64),
                ..Default::default()
            };
            factors[mode] = leading_left_singular_vectors(&y_mat, core_dims[mode], &sub_opts)?;
            if mode == 2 {
                last_y = Some(y);
            }
        }

        // Core: G(p,q,r) = Σ_k Y(k,p,q)·C(k,r), from the final projection
        // Y = X ×₁ Aᵀ ×₂ Bᵀ in canonical (k, p, q) orientation.
        let y = last_y.expect("three modes were swept");
        let c = &factors[2];
        core = DenseTensor3::zeros(core_dims);
        for e in y.entries() {
            let (k, p, q) = (e.i as usize, e.j as usize, e.k as usize);
            for r in 0..r_dim {
                core.add_at(p, q, r, e.v * c.get(k, r));
            }
        }

        let norm_g = core.fro_norm();
        let prev = core_norms.last().copied();
        core_norms.push(norm_g);
        crate::checkpoint::maybe_save_tucker(cluster, opts, sweep, &core, &factors)?;
        if let Some(p) = prev {
            if (norm_g - p).abs() < opts.tol * norm_x.max(1.0) {
                break;
            }
        }
    }

    let norm_g = core_norms.last().copied().unwrap_or(0.0);
    let err_sq = (norm_x_sq - norm_g * norm_g).max(0.0);
    let fit = if norm_x > 0.0 {
        1.0 - err_sq.sqrt() / norm_x
    } else {
        1.0
    };

    Ok(TuckerResult {
        core,
        factors,
        core_norms,
        iterations,
        fit,
        metrics: cluster.metrics_since(mark),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_mapreduce::ClusterConfig;
    use haten2_tensor::Entry3;
    use rand::Rng;

    /// A low-rank tensor: X = Σ_r a_r ∘ b_r ∘ c_r with known rank.
    fn low_rank_tensor(dims: [u64; 3], rank: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(dims[0] as usize, rank, &mut rng);
        let b = Mat::random(dims[1] as usize, rank, &mut rng);
        let c = Mat::random(dims[2] as usize, rank, &mut rng);
        let mut entries = Vec::new();
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    let v: f64 = (0..rank)
                        .map(|r| a.get(i as usize, r) * b.get(j as usize, r) * c.get(k as usize, r))
                        .sum();
                    entries.push(Entry3::new(i, j, k, v));
                }
            }
        }
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    fn sparse_random(dims: [u64; 3], nnz: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..nnz)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..dims[0]),
                    rng.gen_range(0..dims[1]),
                    rng.gen_range(0..dims[2]),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    #[test]
    fn parafac_recovers_low_rank_tensor() {
        let x = low_rank_tensor([6, 5, 4], 2, 31);
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        let opts = AlsOptions {
            max_iters: 60,
            tol: 1e-9,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = parafac_als(&cluster, &x, 2, &opts).unwrap();
        assert!(res.fit() > 0.999, "fit = {}", res.fit());
        // Model reproduces entries.
        for e in x.entries().iter().take(10) {
            assert!((res.predict(e.i, e.j, e.k) - e.v).abs() < 0.05 * e.v.abs().max(0.1));
        }
    }

    #[test]
    fn parafac_fit_nondecreasing_mostly() {
        let x = sparse_random([8, 8, 8], 60, 33);
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        let opts = AlsOptions {
            max_iters: 10,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = parafac_als(&cluster, &x, 3, &opts).unwrap();
        // ALS fit is monotone up to tiny numerical noise.
        for w in res.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "fits decreased: {:?}", res.fits);
        }
    }

    #[test]
    fn parafac_variants_agree() {
        let x = sparse_random([5, 4, 4], 25, 35);
        let mut results = Vec::new();
        for variant in Variant::ALL {
            let cluster = Cluster::new(ClusterConfig::with_machines(3));
            let opts = AlsOptions {
                max_iters: 4,
                tol: 0.0,
                ..AlsOptions::with_variant(variant)
            };
            let res = parafac_als(&cluster, &x, 2, &opts).unwrap();
            results.push((variant, res));
        }
        // Same seed + exact same math => identical trajectories.
        let reference = &results[0].1;
        for (variant, res) in &results[1..] {
            for (f1, f2) in reference.fits.iter().zip(&res.fits) {
                assert!(
                    (f1 - f2).abs() < 1e-8,
                    "{variant} fit trajectory diverged: {f1} vs {f2}"
                );
            }
        }
    }

    #[test]
    fn tucker_exact_on_low_multilinear_rank() {
        let x = low_rank_tensor([6, 5, 4], 2, 37);
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        let opts = AlsOptions {
            max_iters: 30,
            tol: 1e-10,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = tucker_als(&cluster, &x, [2, 2, 2], &opts).unwrap();
        assert!(res.fit > 0.999, "fit = {}", res.fit);
        // Factors orthonormal.
        for f in &res.factors {
            let g = f.gram();
            assert!(g.approx_eq(&Mat::identity(g.rows()), 1e-8));
        }
        // Reconstruction matches.
        let recon = DenseTensor3::tucker_reconstruct(
            &res.core,
            &res.factors[0],
            &res.factors[1],
            &res.factors[2],
        )
        .unwrap();
        let dense = DenseTensor3::from_coo(&x).unwrap();
        assert!(recon.approx_eq(&dense, 1e-6 * x.fro_norm()));
    }

    #[test]
    fn tucker_core_norm_nondecreasing() {
        let x = sparse_random([8, 7, 6], 50, 39);
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        let opts = AlsOptions {
            max_iters: 8,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = tucker_als(&cluster, &x, [2, 2, 2], &opts).unwrap();
        for w in res.core_norms.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6,
                "core norms decreased: {:?}",
                res.core_norms
            );
        }
        assert!(res.fit <= 1.0 && res.fit >= 0.0);
    }

    #[test]
    fn tucker_variants_agree() {
        let x = sparse_random([5, 5, 5], 30, 41);
        let mut norms = Vec::new();
        for variant in [Variant::Dnn, Variant::Drn, Variant::Dri] {
            let cluster = Cluster::new(ClusterConfig::with_machines(3));
            let opts = AlsOptions {
                max_iters: 3,
                tol: 0.0,
                ..AlsOptions::with_variant(variant)
            };
            let res = tucker_als(&cluster, &x, [2, 2, 2], &opts).unwrap();
            norms.push((variant, res.core_norms));
        }
        let reference = norms[0].1.clone();
        for (variant, ns) in &norms[1..] {
            for (a, b) in reference.iter().zip(ns) {
                assert!((a - b).abs() < 1e-8, "{variant}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn invalid_arguments_rejected() {
        let x = sparse_random([4, 4, 4], 10, 43);
        let cluster = Cluster::with_defaults();
        assert!(parafac_als(&cluster, &x, 0, &AlsOptions::default()).is_err());
        assert!(tucker_als(&cluster, &x, [0, 2, 2], &AlsOptions::default()).is_err());
        assert!(tucker_als(&cluster, &x, [5, 2, 2], &AlsOptions::default()).is_err());
    }

    #[test]
    fn distributed_fit_matches_driver_fit() {
        let x = sparse_random([6, 5, 5], 30, 47);
        let run = |distributed: bool| {
            let cluster = Cluster::new(ClusterConfig::with_machines(3));
            let opts = AlsOptions {
                max_iters: 3,
                tol: 0.0,
                distributed_fit: distributed,
                ..AlsOptions::with_variant(Variant::Dri)
            };
            parafac_als(&cluster, &x, 2, &opts).unwrap()
        };
        let driver = run(false);
        let dist = run(true);
        for (a, b) in driver.fits.iter().zip(&dist.fits) {
            assert!((a - b).abs() < 1e-10, "driver {a} vs distributed {b}");
        }
        // One extra job per sweep for the fit computation.
        assert_eq!(
            dist.metrics.total_jobs(),
            driver.metrics.total_jobs() + dist.iterations
        );
    }

    #[test]
    fn metrics_attributed_to_decomposition() {
        let x = sparse_random([4, 4, 4], 10, 45);
        let cluster = Cluster::new(ClusterConfig::with_machines(2));
        let opts = AlsOptions {
            max_iters: 2,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = parafac_als(&cluster, &x, 2, &opts).unwrap();
        // DRI: 2 jobs per MTTKRP × 3 modes × 2 sweeps.
        assert_eq!(res.metrics.total_jobs(), 12);
    }
}
