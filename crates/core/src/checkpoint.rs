//! Checkpointing: persist decomposition results to disk and resume ALS
//! from them.
//!
//! Long Hadoop decompositions checkpoint their factor matrices to HDFS
//! between sweeps so a lost job does not restart from scratch; this module
//! provides the same workflow against the local filesystem, in the text
//! formats the CLI uses (`<prefix>.A.mat`, …, `<prefix>.lambda.txt`,
//! `<prefix>.core.tns`).
//!
//! Small checkpoint files (`λ`, sweep markers) are written through
//! [`haten2_blockstore::localfs::write_atomic`] — staged, fsynced, and
//! renamed into place — so a crash mid-checkpoint can never leave a
//! half-written marker: a restarted driver sees either the previous
//! consistent checkpoint or the new one, nothing in between. On clusters
//! with a durable DFS backend the sweep loop *also* snapshots the factor
//! state into [`haten2_mapreduce::Cluster::dfs`] (see [`crate::store`]),
//! and the checkpointed drivers resume from that store copy first.

use crate::als::{
    parafac_als_with_init, tucker_als_with_init, AlsOptions, ParafacResult, TuckerResult,
};
use crate::{CoreError, Result};
use haten2_blockstore::localfs;
use haten2_linalg::{load_mat, save_mat, Mat};
use haten2_mapreduce::Cluster;
use haten2_tensor::{CooTensor3, DenseTensor3};
use std::path::Path;

const FACTOR_NAMES: [&str; 3] = ["A", "B", "C"];

fn io_err(e: impl std::fmt::Display) -> CoreError {
    CoreError::InvalidArgument(format!("checkpoint I/O: {e}"))
}

fn ensure_parent(prefix: &str) -> Result<()> {
    if let Some(parent) = Path::new(prefix).parent() {
        if !parent.as_os_str().is_empty() {
            localfs::create_dir_all(parent).map_err(io_err)?;
        }
    }
    Ok(())
}

/// Write a PARAFAC result: `<prefix>.{A,B,C}.mat` + `<prefix>.lambda.txt`.
pub fn save_parafac(res: &ParafacResult, prefix: &str) -> Result<()> {
    save_parafac_state(&res.lambda, &res.factors, prefix)
}

/// Write mid-run PARAFAC state (`λ` + factors) under `prefix`. All text
/// formats use shortest-roundtrip `f64` display, so a load reproduces the
/// exact bits — the property the crash-resume tests rely on.
pub fn save_parafac_state(lambda: &[f64], factors: &[Mat; 3], prefix: &str) -> Result<()> {
    ensure_parent(prefix)?;
    for (f, name) in factors.iter().zip(FACTOR_NAMES) {
        save_mat(f, format!("{prefix}.{name}.mat")).map_err(io_err)?;
    }
    let lambda_text = lambda
        .iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    localfs::write_atomic(
        Path::new(&format!("{prefix}.lambda.txt")),
        lambda_text.as_bytes(),
    )
    .map_err(io_err)?;
    Ok(())
}

/// Record that `sweeps_done` sweeps (absolute count) are reflected in the
/// checkpoint at `prefix`. Written *after* the factor files, so a crash
/// between the two leaves the previous consistent marker in place.
fn save_sweep_marker(prefix: &str, sweeps_done: usize) -> Result<()> {
    localfs::write_atomic(
        Path::new(&format!("{prefix}.sweep.txt")),
        format!("{sweeps_done}\n").as_bytes(),
    )
    .map_err(io_err)
}

/// Completed-sweep count recorded at `prefix`, or `None` when no
/// checkpoint marker exists.
pub fn load_sweep_marker(prefix: &str) -> Result<Option<usize>> {
    let path = format!("{prefix}.sweep.txt");
    if !localfs::exists(Path::new(&path)) {
        return Ok(None);
    }
    let text = localfs::read_to_string(Path::new(&path)).map_err(io_err)?;
    Ok(Some(text.trim().parse().map_err(io_err)?))
}

/// Checkpoint hook called by the PARAFAC sweep loop: saves state + sweep
/// marker when `opts` enables checkpointing and the cadence hits. On a
/// durable cluster the factor state is also snapshotted into the DFS
/// block store *before* the marker commits, so a restarted driver that
/// sees the marker is guaranteed to find the matching durable state.
pub(crate) fn maybe_save_parafac(
    cluster: &Cluster,
    opts: &AlsOptions,
    sweep: usize,
    lambda: &[f64],
    factors: &[Mat; 3],
) -> Result<()> {
    let Some(prefix) = &opts.checkpoint_prefix else {
        return Ok(());
    };
    if !(sweep + 1).is_multiple_of(opts.checkpoint_every.max(1)) {
        return Ok(());
    }
    save_parafac_state(lambda, factors, prefix)?;
    if cluster.dfs().is_durable() {
        crate::store::persist_parafac_state(cluster, prefix, lambda, factors)?;
    }
    save_sweep_marker(prefix, opts.first_sweep + sweep + 1)
}

/// Checkpoint hook called by the Tucker sweep loop.
pub(crate) fn maybe_save_tucker(
    cluster: &Cluster,
    opts: &AlsOptions,
    sweep: usize,
    core: &DenseTensor3,
    factors: &[Mat; 3],
) -> Result<()> {
    let Some(prefix) = &opts.checkpoint_prefix else {
        return Ok(());
    };
    if !(sweep + 1).is_multiple_of(opts.checkpoint_every.max(1)) {
        return Ok(());
    }
    save_tucker_state(core, factors, prefix)?;
    if cluster.dfs().is_durable() {
        crate::store::persist_tucker_state(cluster, prefix, core, factors)?;
    }
    save_sweep_marker(prefix, opts.first_sweep + sweep + 1)
}

/// Fold `λ` into the first factor so `[A·diag(λ), B, C]` represents the
/// same model with implicit unit weights. Exact for resuming PARAFAC-ALS:
/// the first resumed update (mode 0) reads only `B` and `C` and overwrites
/// `A`, so the folded values never enter the arithmetic.
fn fold_lambda(lambda: &[f64], factors: &mut [Mat; 3]) {
    let a = &mut factors[0];
    for (r, &l) in lambda.iter().enumerate() {
        for i in 0..a.rows() {
            let v = a.get(i, r) * l;
            a.set(i, r, v);
        }
    }
}

/// Read a PARAFAC checkpoint back: `(λ, [A, B, C])`.
pub fn load_parafac(prefix: &str) -> Result<(Vec<f64>, [Mat; 3])> {
    let mut factors = Vec::with_capacity(3);
    for name in FACTOR_NAMES {
        factors.push(load_mat(format!("{prefix}.{name}.mat")).map_err(io_err)?);
    }
    let lambda_text =
        localfs::read_to_string(Path::new(&format!("{prefix}.lambda.txt"))).map_err(io_err)?;
    let lambda: Vec<f64> = lambda_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.trim().parse().map_err(io_err))
        .collect::<Result<_>>()?;
    let [a, b, c]: [Mat; 3] = factors.try_into().expect("exactly three factors were read");
    if lambda.len() != a.cols() {
        return Err(CoreError::InvalidArgument(format!(
            "checkpoint rank mismatch: {} lambdas for {} columns",
            lambda.len(),
            a.cols()
        )));
    }
    Ok((lambda, [a, b, c]))
}

/// Resume PARAFAC-ALS from a checkpoint: loads `<prefix>` and continues
/// sweeping on `x`. The stored λ is folded back into the factors before
/// resuming (ALS re-normalizes each sweep).
pub fn resume_parafac(
    cluster: &Cluster,
    x: &CooTensor3,
    prefix: &str,
    opts: &AlsOptions,
) -> Result<ParafacResult> {
    let (lambda, mut factors) = load_parafac(prefix)?;
    // Fold λ into the first factor so the model is unchanged.
    fold_lambda(&lambda, &mut factors);
    let rank = factors[0].cols();
    parafac_als_with_init(cluster, x, rank, opts, Some(factors))
}

/// Crash-resumable PARAFAC-ALS.
///
/// `opts.checkpoint_prefix` must be set. When a sweep marker already
/// exists there, the run resumes from the checkpoint: the remaining
/// `max_iters − done` sweeps run with `first_sweep = done`, which makes
/// the final factors **bit-identical** to an uninterrupted run (assuming
/// the same tensor, options, and a tolerance that would not have stopped
/// earlier). With no checkpoint present it is a plain [`parafac_als`]
/// that saves checkpoints as it goes.
pub fn parafac_als_checkpointed(
    cluster: &Cluster,
    x: &CooTensor3,
    rank: usize,
    opts: &AlsOptions,
) -> Result<ParafacResult> {
    let prefix = opts.checkpoint_prefix.as_deref().ok_or_else(|| {
        CoreError::InvalidArgument("parafac_als_checkpointed needs checkpoint_prefix".into())
    })?;
    match load_sweep_marker(prefix)? {
        None => crate::als::parafac_als(cluster, x, rank, opts),
        Some(done) => {
            // Durable clusters resume from the block-store snapshot (raw
            // f64 bits); the text files are the fallback. Both encodings
            // are bit-exact, so the resumed factors are identical either
            // way.
            let state = if cluster.dfs().is_durable() {
                crate::store::load_parafac_state(cluster, prefix)?
            } else {
                None
            };
            let (lambda, mut factors) = match state {
                Some(state) => state,
                None => load_parafac(prefix)?,
            };
            if done >= opts.max_iters {
                // Nothing left to sweep: report the checkpointed model.
                return Ok(ParafacResult {
                    lambda,
                    factors,
                    fits: Vec::new(),
                    iterations: 0,
                    metrics: Default::default(),
                });
            }
            fold_lambda(&lambda, &mut factors);
            let resumed = AlsOptions {
                max_iters: opts.max_iters - done,
                first_sweep: opts.first_sweep + done,
                ..opts.clone()
            };
            parafac_als_with_init(cluster, x, rank, &resumed, Some(factors))
        }
    }
}

/// Crash-resumable Tucker-ALS; the Tucker counterpart of
/// [`parafac_als_checkpointed`]. Resume seeds the mode-1/mode-2 factors
/// from the checkpoint and offsets `first_sweep` so the sweep-seeded
/// subspace iterations replay identically — the resumed decomposition is
/// bit-identical to the uninterrupted one.
pub fn tucker_als_checkpointed(
    cluster: &Cluster,
    x: &CooTensor3,
    core_dims: [usize; 3],
    opts: &AlsOptions,
) -> Result<TuckerResult> {
    let prefix = opts.checkpoint_prefix.as_deref().ok_or_else(|| {
        CoreError::InvalidArgument("tucker_als_checkpointed needs checkpoint_prefix".into())
    })?;
    match load_sweep_marker(prefix)? {
        None => crate::als::tucker_als(cluster, x, core_dims, opts),
        Some(done) => {
            let state = if cluster.dfs().is_durable() {
                crate::store::load_tucker_state(cluster, prefix)?
            } else {
                None
            };
            let (core, [a, b, c]) = match state {
                Some(state) => state,
                None => load_tucker(prefix)?,
            };
            if done >= opts.max_iters {
                let fit = {
                    let norm_x_sq = x.fro_norm_sq();
                    let norm_g = core.fro_norm();
                    let err_sq = (norm_x_sq - norm_g * norm_g).max(0.0);
                    if norm_x_sq > 0.0 {
                        1.0 - err_sq.sqrt() / norm_x_sq.sqrt()
                    } else {
                        1.0
                    }
                };
                return Ok(TuckerResult {
                    core,
                    factors: [a, b, c],
                    core_norms: Vec::new(),
                    iterations: 0,
                    fit,
                    metrics: Default::default(),
                });
            }
            let resumed = AlsOptions {
                max_iters: opts.max_iters - done,
                first_sweep: opts.first_sweep + done,
                ..opts.clone()
            };
            tucker_als_with_init(cluster, x, core_dims, &resumed, Some([b, c]))
        }
    }
}

/// Resume Tucker-ALS from a checkpoint: seeds the mode-1/mode-2 factors
/// from `<prefix>` and continues sweeping on `x` (mode-0 is recomputed
/// first, per Algorithm 2).
pub fn resume_tucker(
    cluster: &Cluster,
    x: &CooTensor3,
    prefix: &str,
    opts: &AlsOptions,
) -> Result<TuckerResult> {
    let (core, [a, b, c]) = load_tucker(prefix)?;
    let core_dims = core.dims();
    let _ = a;
    tucker_als_with_init(cluster, x, core_dims, opts, Some([b, c]))
}

/// Write a Tucker result: `<prefix>.{A,B,C}.mat` + `<prefix>.core.tns`.
pub fn save_tucker(res: &TuckerResult, prefix: &str) -> Result<()> {
    save_tucker_state(&res.core, &res.factors, prefix)
}

/// Write mid-run Tucker state (core + factors) under `prefix`.
pub fn save_tucker_state(core: &DenseTensor3, factors: &[Mat; 3], prefix: &str) -> Result<()> {
    ensure_parent(prefix)?;
    for (f, name) in factors.iter().zip(FACTOR_NAMES) {
        save_mat(f, format!("{prefix}.{name}.mat")).map_err(io_err)?;
    }
    haten2_tensor::io::save_coo3(&core.to_coo(), format!("{prefix}.core.tns")).map_err(io_err)?;
    Ok(())
}

/// Read a Tucker checkpoint back: `(core, [A, B, C])`. The core's dense
/// dimensions are taken from the factor column counts (trailing all-zero
/// core slices are preserved).
pub fn load_tucker(prefix: &str) -> Result<(DenseTensor3, [Mat; 3])> {
    let mut factors = Vec::with_capacity(3);
    for name in FACTOR_NAMES {
        factors.push(load_mat(format!("{prefix}.{name}.mat")).map_err(io_err)?);
    }
    let [a, b, c]: [Mat; 3] = factors.try_into().expect("exactly three factors were read");
    let dims = [a.cols(), b.cols(), c.cols()];
    let sparse_core = haten2_tensor::io::load_coo3(format!("{prefix}.core.tns")).map_err(io_err)?;
    let mut core = DenseTensor3::zeros(dims);
    for e in sparse_core.entries() {
        if e.i as usize >= dims[0] || e.j as usize >= dims[1] || e.k as usize >= dims[2] {
            return Err(CoreError::InvalidArgument(format!(
                "core entry ({}, {}, {}) outside factor ranks {dims:?}",
                e.i, e.j, e.k
            )));
        }
        core.set(e.i as usize, e.j as usize, e.k as usize, e.v);
    }
    Ok((core, [a, b, c]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::{parafac_als, tucker_als};
    use crate::Variant;
    use haten2_mapreduce::ClusterConfig;
    use haten2_tensor::Entry3;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sparse_random(dims: [u64; 3], nnz: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..nnz)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..dims[0]),
                    rng.gen_range(0..dims[1]),
                    rng.gen_range(0..dims[2]),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    fn tmp_prefix(name: &str) -> String {
        let dir = std::env::temp_dir().join("haten2_ckpt_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).display().to_string()
    }

    #[test]
    fn parafac_checkpoint_roundtrip() {
        let x = sparse_random([7, 6, 5], 35, 201);
        let cluster = Cluster::new(ClusterConfig::with_machines(3));
        let opts = AlsOptions {
            max_iters: 3,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = parafac_als(&cluster, &x, 2, &opts).unwrap();
        let prefix = tmp_prefix("cp");
        save_parafac(&res, &prefix).unwrap();
        let (lambda, factors) = load_parafac(&prefix).unwrap();
        assert_eq!(lambda.len(), 2);
        for (orig, loaded) in res.factors.iter().zip(&factors) {
            assert!(orig.approx_eq(loaded, 1e-12));
        }
    }

    #[test]
    fn resume_continues_improving() {
        let x = sparse_random([8, 7, 6], 60, 202);
        let cluster = Cluster::new(ClusterConfig::with_machines(3));
        let opts = AlsOptions {
            max_iters: 2,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let first = parafac_als(&cluster, &x, 3, &opts).unwrap();
        let prefix = tmp_prefix("resume");
        save_parafac(&first, &prefix).unwrap();

        let more = AlsOptions {
            max_iters: 4,
            tol: 0.0,
            ..opts.clone()
        };
        let resumed = resume_parafac(&cluster, &x, &prefix, &more).unwrap();
        // The resumed run starts from the checkpoint, so its first-sweep fit
        // is already at (or above) the checkpoint's final fit.
        assert!(
            resumed.fits[0] >= first.fit() - 1e-9,
            "resumed first fit {} below checkpoint fit {}",
            resumed.fits[0],
            first.fit()
        );
        // And keeps being monotone.
        for w in resumed.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-6);
        }
    }

    #[test]
    fn tucker_checkpoint_roundtrip() {
        let x = sparse_random([7, 6, 5], 35, 203);
        let cluster = Cluster::new(ClusterConfig::with_machines(3));
        let opts = AlsOptions {
            max_iters: 2,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = tucker_als(&cluster, &x, [2, 3, 2], &opts).unwrap();
        let prefix = tmp_prefix("tk");
        save_tucker(&res, &prefix).unwrap();
        let (core, factors) = load_tucker(&prefix).unwrap();
        assert_eq!(core.dims(), [2, 3, 2]);
        assert!(core.approx_eq(&res.core, 1e-12));
        for (orig, loaded) in res.factors.iter().zip(&factors) {
            assert!(orig.approx_eq(loaded, 1e-12));
        }
    }

    #[test]
    fn resume_tucker_continues_from_checkpoint() {
        let x = sparse_random([8, 7, 6], 50, 205);
        let cluster = Cluster::new(ClusterConfig::with_machines(3));
        let opts = AlsOptions {
            max_iters: 2,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let first = tucker_als(&cluster, &x, [2, 2, 2], &opts).unwrap();
        let prefix = tmp_prefix("tk_resume");
        save_tucker(&first, &prefix).unwrap();
        let resumed = resume_tucker(&cluster, &x, &prefix, &opts).unwrap();
        // Warm start: the first resumed core norm is at least the
        // checkpoint's final one (ALS is monotone in ‖G‖).
        assert!(
            resumed.core_norms[0] >= first.core_norms.last().unwrap() - 1e-9,
            "resumed {} vs checkpoint {}",
            resumed.core_norms[0],
            first.core_norms.last().unwrap()
        );
    }

    /// Remove every checkpoint file a previous test run may have left.
    fn clear_checkpoint(prefix: &str) {
        for suffix in [
            "A.mat",
            "B.mat",
            "C.mat",
            "lambda.txt",
            "core.tns",
            "sweep.txt",
        ] {
            let _ = std::fs::remove_file(format!("{prefix}.{suffix}"));
        }
    }

    fn crashing_cluster(kill_at_job: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            fault_plan: Some(haten2_mapreduce::FaultPlan::kill_at_job(kill_at_job)),
            ..ClusterConfig::with_machines(3)
        })
    }

    #[test]
    fn parafac_crash_resume_is_bit_identical() {
        let x = sparse_random([7, 6, 5], 40, 301);
        let base = AlsOptions {
            max_iters: 4,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let clean =
            parafac_als(&Cluster::new(ClusterConfig::with_machines(3)), &x, 2, &base).unwrap();

        // Jobs per sweep, to aim the crash inside sweep 2.
        let probe = Cluster::new(ClusterConfig::with_machines(3));
        parafac_als(
            &probe,
            &x,
            2,
            &AlsOptions {
                max_iters: 1,
                ..base.clone()
            },
        )
        .unwrap();
        let per_sweep = probe.metrics().total_jobs();

        let prefix = tmp_prefix("crash_resume_pf");
        clear_checkpoint(&prefix);
        let opts = AlsOptions {
            checkpoint_prefix: Some(prefix.clone()),
            ..base
        };

        // Crash during sweep 2: sweep 1 is checkpointed, the run dies.
        let err =
            parafac_als_checkpointed(&crashing_cluster(per_sweep + 1), &x, 2, &opts).unwrap_err();
        assert!(err.to_string().contains("retry budget"), "got: {err}");
        assert_eq!(load_sweep_marker(&prefix).unwrap(), Some(1));

        // Resume on a healthy cluster: remaining sweeps replay exactly.
        let resumed =
            parafac_als_checkpointed(&Cluster::new(ClusterConfig::with_machines(3)), &x, 2, &opts)
                .unwrap();
        assert_eq!(resumed.iterations, 3, "3 of 4 sweeps remained");
        assert_eq!(resumed.lambda, clean.lambda, "lambda must be bit-identical");
        assert_eq!(
            resumed.factors, clean.factors,
            "factors must be bit-identical"
        );
        clear_checkpoint(&prefix);
    }

    #[test]
    fn tucker_crash_resume_is_bit_identical() {
        let x = sparse_random([8, 7, 6], 50, 302);
        let base = AlsOptions {
            max_iters: 3,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let clean = tucker_als(
            &Cluster::new(ClusterConfig::with_machines(3)),
            &x,
            [2, 2, 2],
            &base,
        )
        .unwrap();

        let probe = Cluster::new(ClusterConfig::with_machines(3));
        tucker_als(
            &probe,
            &x,
            [2, 2, 2],
            &AlsOptions {
                max_iters: 1,
                ..base.clone()
            },
        )
        .unwrap();
        let per_sweep = probe.metrics().total_jobs();

        let prefix = tmp_prefix("crash_resume_tk");
        clear_checkpoint(&prefix);
        let opts = AlsOptions {
            checkpoint_prefix: Some(prefix.clone()),
            ..base
        };

        let err = tucker_als_checkpointed(&crashing_cluster(per_sweep + 1), &x, [2, 2, 2], &opts)
            .unwrap_err();
        assert!(err.to_string().contains("retry budget"), "got: {err}");
        assert_eq!(load_sweep_marker(&prefix).unwrap(), Some(1));

        let resumed = tucker_als_checkpointed(
            &Cluster::new(ClusterConfig::with_machines(3)),
            &x,
            [2, 2, 2],
            &opts,
        )
        .unwrap();
        assert_eq!(resumed.iterations, 2, "2 of 3 sweeps remained");
        assert_eq!(
            resumed.factors, clean.factors,
            "factors must be bit-identical"
        );
        assert_eq!(resumed.core, clean.core, "core must be bit-identical");
        clear_checkpoint(&prefix);
    }

    #[test]
    fn checkpointed_driver_requires_prefix() {
        let x = sparse_random([5, 5, 5], 10, 303);
        let cluster = Cluster::with_defaults();
        let err = parafac_als_checkpointed(&cluster, &x, 2, &AlsOptions::default()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidArgument(_)));
    }

    #[test]
    fn load_missing_checkpoint_fails_cleanly() {
        assert!(load_parafac("/nonexistent/prefix").is_err());
        assert!(load_tucker("/nonexistent/prefix").is_err());
    }

    #[test]
    fn init_shape_validation() {
        let x = sparse_random([5, 5, 5], 10, 204);
        let cluster = Cluster::with_defaults();
        let bad = [Mat::zeros(4, 2), Mat::zeros(5, 2), Mat::zeros(5, 2)];
        let err =
            crate::als::parafac_als_with_init(&cluster, &x, 2, &AlsOptions::default(), Some(bad))
                .unwrap_err();
        assert!(matches!(err, CoreError::InvalidArgument(_)));
    }
}
