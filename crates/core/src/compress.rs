//! Compression-accelerated PARAFAC (CANDELINC-style).
//!
//! The paper's related work (§V-C, Bro & Sidiropoulos) describes a standard
//! trick the HaTen2 framework composes naturally with: **compress** the
//! tensor with a Tucker decomposition, run PARAFAC on the (tiny, dense)
//! core, and **decompress** the factors back through the orthonormal Tucker
//! bases:
//!
//! ```text
//! X ≈ G ×₁ U₁ ×₂ U₂ ×₃ U₃          (Tucker, distributed — expensive part)
//! G ≈ Σ_r λ_r p_r ∘ q_r ∘ s_r      (PARAFAC on the P×Q×R core — cheap)
//! X ≈ Σ_r λ_r (U₁p_r) ∘ (U₂q_r) ∘ (U₃s_r)
//! ```
//!
//! Because the Tucker bases are orthonormal, the PARAFAC solution in the
//! compressed space decompresses to a PARAFAC solution of the projected
//! tensor; when the multilinear rank of `X` is captured by the core size,
//! the result matches direct PARAFAC at a fraction of the distributed work
//! (one Tucker decomposition instead of `T` full-size MTTKRP sweeps).

use crate::als::{parafac_als, tucker_als, AlsOptions, ParafacResult};
use crate::{CoreError, Result};
use haten2_mapreduce::Cluster;
use haten2_tensor::CooTensor3;

/// PARAFAC via Tucker compression.
///
/// * `core_dims` — the compression size (must dominate `rank` in each mode
///   for the decompressed model to express the rank-`rank` PARAFAC).
/// * The Tucker stage runs distributed with `opts.variant`; the core
///   PARAFAC runs through the same driver on the tiny core tensor.
///
/// Returns an ordinary [`ParafacResult`] whose factors live in the original
/// space; `metrics` covers both stages.
pub fn parafac_via_compression(
    cluster: &Cluster,
    x: &CooTensor3,
    rank: usize,
    core_dims: [usize; 3],
    opts: &AlsOptions,
) -> Result<ParafacResult> {
    for (n, &cd) in core_dims.iter().enumerate() {
        if cd < rank {
            return Err(CoreError::InvalidArgument(format!(
                "core dim {cd} (mode {n}) must be >= rank {rank} for lossless decompression"
            )));
        }
    }
    let mark = cluster.jobs_run();

    // Stage 1: distributed Tucker compression.
    let tucker = tucker_als(cluster, x, core_dims, opts)?;

    // Stage 2: PARAFAC on the dense core (tiny; still exercised through the
    // same ALS driver so the framework is uniform).
    let core_coo = tucker.core.to_coo();
    if core_coo.nnz() == 0 {
        return Err(CoreError::InvalidArgument(
            "Tucker core collapsed to zero; cannot compress".into(),
        ));
    }
    // The core is tiny, so generous sweep counts cost nothing; ALS on
    // random low-rank cores can need many sweeps to escape swamps.
    let core_opts = AlsOptions {
        max_iters: opts.max_iters.max(200),
        ..opts.clone()
    };
    let cp = parafac_als(cluster, &core_coo, rank, &core_opts)?;

    // Stage 3: decompress — factors = U_n · P_n.
    let factors = [
        tucker.factors[0]
            .matmul(&cp.factors[0])
            .map_err(CoreError::Linalg)?,
        tucker.factors[1]
            .matmul(&cp.factors[1])
            .map_err(CoreError::Linalg)?,
        tucker.factors[2]
            .matmul(&cp.factors[2])
            .map_err(CoreError::Linalg)?,
    ];
    // Orthonormal bases preserve column norms, so λ carries over; the fit
    // against X must be recomputed (cp.fits measured fit against G).
    let lambda = cp.lambda.clone();
    let norm_x_sq = x.fro_norm_sq();
    let norm_x = norm_x_sq.sqrt();
    let mut inner = 0.0;
    for e in x.entries() {
        let mut model = 0.0;
        for (r, &l) in lambda.iter().enumerate() {
            model += l
                * factors[0].get(e.i as usize, r)
                * factors[1].get(e.j as usize, r)
                * factors[2].get(e.k as usize, r);
        }
        inner += e.v * model;
    }
    let g_all = factors[0]
        .gram()
        .hadamard(&factors[1].gram())
        .and_then(|g| g.hadamard(&factors[2].gram()))
        .map_err(CoreError::Linalg)?;
    let mut norm_model_sq = 0.0;
    for r in 0..rank {
        for s in 0..rank {
            norm_model_sq += lambda[r] * lambda[s] * g_all.get(r, s);
        }
    }
    let err_sq = (norm_x_sq + norm_model_sq - 2.0 * inner).max(0.0);
    let fit = if norm_x > 0.0 {
        1.0 - err_sq.sqrt() / norm_x
    } else {
        1.0
    };

    Ok(ParafacResult {
        lambda,
        factors,
        fits: vec![fit],
        iterations: tucker.iterations + cp.iterations,
        metrics: cluster.metrics_since(mark),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variant;
    use haten2_linalg::Mat;
    use haten2_mapreduce::ClusterConfig;
    use haten2_tensor::Entry3;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn low_rank(dims: [u64; 3], rank: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(dims[0] as usize, rank, &mut rng);
        let b = Mat::random(dims[1] as usize, rank, &mut rng);
        let c = Mat::random(dims[2] as usize, rank, &mut rng);
        let mut entries = Vec::new();
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    let v: f64 = (0..rank)
                        .map(|r| a.get(i as usize, r) * b.get(j as usize, r) * c.get(k as usize, r))
                        .sum();
                    entries.push(Entry3::new(i, j, k, v));
                }
            }
        }
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    #[test]
    fn compressed_parafac_recovers_low_rank_tensor() {
        let x = low_rank([8, 7, 6], 2, 101);
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        let opts = AlsOptions {
            max_iters: 40,
            tol: 1e-10,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = parafac_via_compression(&cluster, &x, 2, [3, 3, 3], &opts).unwrap();
        assert!(res.fit() > 0.98, "fit = {}", res.fit());
        // Factor shapes live in the original space.
        assert_eq!(res.factors[0].shape(), (8, 2));
        assert_eq!(res.factors[2].shape(), (6, 2));
        // Predictions track the data.
        for e in x.entries().iter().take(5) {
            let p = res.predict(e.i, e.j, e.k);
            assert!((p - e.v).abs() < 0.2 * e.v.abs().max(0.2), "{p} vs {}", e.v);
        }
    }

    #[test]
    fn compression_reduces_fullsize_distributed_work() {
        // The point of the trick: the full-size tensor is touched only by
        // the Tucker stage; the PARAFAC sweeps run on the tiny core.
        let x = low_rank([10, 9, 8], 2, 102);
        let opts = AlsOptions {
            max_iters: 12,
            tol: 1e-10,
            ..AlsOptions::with_variant(Variant::Dri)
        };

        let c_direct = Cluster::new(ClusterConfig::with_machines(4));
        parafac_als(&c_direct, &x, 2, &opts).unwrap();
        let direct_bytes = c_direct.metrics().total_map_input_bytes();

        let c_comp = Cluster::new(ClusterConfig::with_machines(4));
        parafac_via_compression(&c_comp, &x, 2, [3, 3, 3], &opts).unwrap();
        // Bytes touched by full-size jobs only (core jobs are negligible but
        // counted; the comparison still holds by a wide margin).
        let comp_bytes = c_comp.metrics().total_map_input_bytes();
        assert!(
            comp_bytes < direct_bytes,
            "compressed {comp_bytes} B vs direct {direct_bytes} B"
        );
    }

    #[test]
    fn rejects_core_smaller_than_rank() {
        let x = low_rank([5, 5, 5], 2, 103);
        let cluster = Cluster::with_defaults();
        let err = parafac_via_compression(&cluster, &x, 3, [2, 3, 3], &AlsOptions::default())
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidArgument(_)));
    }
}
