//! Declarative plans for the eight HaTen2 pipelines.
//!
//! Each (decomposition × variant) pipeline registers a
//! [`JobGraph`] describing exactly what its driver in [`crate::tucker`] /
//! [`crate::parafac`] submits at runtime: the job templates in execution
//! order (with the same names the metered [`haten2_mapreduce::Cluster`]
//! records), the datasets flowing between them, and symbolic per-job
//! intermediate-data expressions over `(nnz, I, J, K, Q, R)`.
//!
//! The `haten2-analyze` crate consumes these graphs to verify the paper's
//! Tables III/IV statically; `haten2-bench` cross-checks the expanded
//! predictions against metered runs (exactly, for the DRI pipelines).
//!
//! **Conventions.** Dimensions are the *canonical* orientation of
//! [`crate::canon::canonicalize`]: `I` is the target-mode dimension, `J`
//! and `K` the remaining modes in ascending original order. For PARAFAC,
//! `Q = R =` the CP rank. Byte expressions reconstruct the engine's exact
//! accounting — per-record key/value sizes come from the very
//! [`EstimateSize`] impls in [`crate::records`] plus the engine's framing
//! constant, so a change to the wire format breaks the cross-check tests
//! rather than silently invalidating the analyzer.
//!
//! **Exactness.** A job's `records`/`bytes` are *exact in generic
//! position* (no zero factor entries, no cancellation — [`PlanJob::exact`]
//! = `true`) or a worst-case upper bound (`false`). All DRI jobs are
//! exact; bounds appear only downstream of a `Collapse`, whose output
//! support (`distinct (i,k) pairs`) is data-dependent.

use crate::records::{HadVal, ImhpVal, MergeVal, NaiveVal};
use crate::Variant;
use haten2_mapreduce::{
    Env, EstimateSize, JobGraph, PlanJob, RecoverySpec, SymExpr, RECORD_FRAMING_BYTES,
};

/// Which decomposition a plan describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decomp {
    /// Tucker projection `Y ← X ×₂ Bᵀ ×₃ Cᵀ` ([`crate::tucker::project`]).
    Tucker,
    /// PARAFAC MTTKRP `M ← X₍ₙ₎ (C ⊙ B)` ([`crate::parafac::mttkrp`]).
    Parafac,
}

impl Decomp {
    /// Both decompositions, Tucker first (paper order).
    pub const ALL: [Decomp; 2] = [Decomp::Tucker, Decomp::Parafac];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Decomp::Tucker => "Tucker",
            Decomp::Parafac => "PARAFAC",
        }
    }
}

impl std::fmt::Display for Decomp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The [`Env`] for one concrete pipeline invocation on a tensor with
/// canonical `dims`, `nnz` nonzeros, core sizes / ranks `q`, `r`, and
/// `machines` machines.
pub fn env_for(dims: [u64; 3], nnz: usize, q: usize, r: usize, machines: usize) -> Env {
    Env {
        nnz: nnz as u64,
        dim_i: dims[0],
        dim_j: dims[1],
        dim_k: dims[2],
        rank_q: q as u64,
        rank_r: r as u64,
        machines: machines as u64,
        // A single-fault budget is the default contract the recoverability
        // pass certifies (and the chaos sweeps inject).
        faults: 1,
        // Default per-reducer memory budget: 1 MiB, matching the order of
        // the spill benchmark's per-machine budgets. Comfortably above the
        // `Mr ≥ 8·max(Q, R)` regime floor the communication bounds assume;
        // callers needing a specific budget override the field directly.
        reducer_memory: 1 << 20,
    }
}

// ---- Per-record byte constants, reconstructed from the real wire sizes ----

fn frame() -> u64 {
    RECORD_FRAMING_BYTES as u64
}

fn ix4_key_bytes() -> u64 {
    (0u64, 0u64, 0u64, 0u64).est_bytes() as u64
}

/// Hadamard job, tensor-entry emission: `u64` key + `HadVal::Ent`.
pub fn had_ent_bytes() -> u64 {
    8 + HadVal::Ent((0, 0, 0, 0), 0.0).est_bytes() as u64 + frame()
}

/// Hadamard job, coefficient emission: `u64` key + `HadVal::Coef`.
pub fn had_coef_bytes() -> u64 {
    8 + HadVal::Coef(0.0).est_bytes() as u64 + frame()
}

/// Collapse job emission: `Ix4` key + `f64` value.
pub fn collapse_bytes() -> u64 {
    ix4_key_bytes() + 0.0f64.est_bytes() as u64 + frame()
}

/// Naive broadcast job emission (entry and coefficient emissions size
/// identically): `Ix4` key + `NaiveVal`.
pub fn naive_bytes() -> u64 {
    ix4_key_bytes() + NaiveVal::Ent(0, 0.0).est_bytes() as u64 + frame()
}

/// IMHP tensor-entry emission: `(u8, u64)` key + `ImhpVal::Ent`.
pub fn imhp_ent_bytes() -> u64 {
    (0u8, 0u64).est_bytes() as u64 + ImhpVal::Ent((0, 0, 0, 0), 0.0).est_bytes() as u64 + frame()
}

/// IMHP factor-row emission, excluding the per-element payload: `(u8,
/// u64)` key + empty `ImhpVal::Row`.
pub fn imhp_row_base_bytes() -> u64 {
    (0u8, 0u64).est_bytes() as u64 + ImhpVal::Row(Vec::new()).est_bytes() as u64 + frame()
}

/// Per-element payload of an IMHP factor row.
pub fn imhp_row_elem_bytes() -> u64 {
    0.0f64.est_bytes() as u64
}

/// CrossMerge / PairwiseMerge emission: `u64` key + `MergeVal`.
pub fn merge_bytes() -> u64 {
    8 + MergeVal {
        side: 0,
        i: 0,
        j: 0,
        k: 0,
        d: 0,
        v: 0.0,
    }
    .est_bytes() as u64
        + frame()
}

// ---- Expression shorthands -------------------------------------------------

fn n() -> SymExpr {
    SymExpr::nnz()
}
fn di() -> SymExpr {
    SymExpr::dim_i()
}
fn dj() -> SymExpr {
    SymExpr::dim_j()
}
fn dk() -> SymExpr {
    SymExpr::dim_k()
}
fn q() -> SymExpr {
    SymExpr::rank_q()
}
fn r() -> SymExpr {
    SymExpr::rank_r()
}
fn c(v: u64) -> SymExpr {
    SymExpr::c(v)
}

/// IMHP job template shared by both DRI pipelines: reads the tensor once,
/// writes both expanded sides. Emits 2 records per nonzero plus one row
/// record per column of each factor; `q_len`/`r_len` are the row lengths
/// (Q and R for Tucker, R and R for PARAFAC).
fn imhp_job(name: &str, q_len: SymExpr, r_len: SymExpr) -> PlanJob {
    let records = c(2) * n() + dj() + dk();
    let bytes = c(2 * imhp_ent_bytes()) * n()
        + (c(imhp_row_base_bytes()) + c(imhp_row_elem_bytes()) * q_len) * dj()
        + (c(imhp_row_base_bytes()) + c(imhp_row_elem_bytes()) * r_len) * dk();
    PlanJob::new(name)
        .reads(["x"])
        .writes(["t_prime", "t_dprime"])
        .op("imhp_job")
        .emits(records, bytes)
}

/// The registered plan for one (decomposition × variant) pipeline.
///
/// Job names, order, counts, and dataset wiring mirror the runtime
/// drivers exactly; the cross-check tests in `haten2-bench` fail if they
/// drift.
pub fn plan_for(decomp: Decomp, variant: Variant) -> JobGraph {
    match (decomp, variant) {
        // -- Tucker (Algorithms 3, 5, 7, 9; Table III) ---------------------
        (Decomp::Tucker, Variant::Naive) => JobGraph::new("tucker-naive", [])
            .big_input("x")
            .output("y")
            .job(
                // Broadcast n-mode vector product per column of B: every
                // coefficient of the length-J vector is shuffled to all
                // I·K fibers — the paper's nnz + I·J·K blowup.
                PlanJob::new("tucker-naive-xv-b{}")
                    .repeat(q())
                    .reads(["x"])
                    .writes(["t"])
                    .op("naive_ttv_job")
                    .comm_assoc()
                    .emits(
                        n() + di() * dj() * dk(),
                        c(naive_bytes()) * (n() + di() * dj() * dk()),
                    ),
            )
            .job(
                PlanJob::new("tucker-naive-tv-c{}")
                    .repeat(r())
                    .reads(["t"])
                    .writes(["y"])
                    .op("naive_ttv_job")
                    .comm_assoc()
                    .emits(
                        n() * q() + di() * q() * dk(),
                        c(naive_bytes()) * (n() * q() + di() * q() * dk()),
                    )
                    // |T| = Q · (distinct (i,k) pairs) ≤ Q·nnz.
                    .upper_bound(),
            ),
        (Decomp::Tucker, Variant::Dnn) => JobGraph::new("tucker-dnn", [])
            .big_input("x")
            .output("y")
            .job(
                PlanJob::new("tucker-dnn-had-b{}")
                    .repeat(q())
                    .reads(["x"])
                    .writes(["t_prime"])
                    .op("hadamard_vec_job")
                    .emits(
                        n() + dj(),
                        c(had_ent_bytes()) * n() + c(had_coef_bytes()) * dj(),
                    ),
            )
            .job(
                PlanJob::new("tucker-dnn-collapse-j")
                    .reads(["t_prime"])
                    .writes(["t"])
                    .op("collapse_job")
                    .comm_assoc()
                    .emits(n() * q(), c(collapse_bytes()) * n() * q()),
            )
            .job(
                PlanJob::new("tucker-dnn-had-c{}")
                    .repeat(r())
                    .reads(["t"])
                    .writes(["y_prime"])
                    .op("hadamard_vec_job")
                    .emits(
                        n() * q() + dk(),
                        c(had_ent_bytes()) * n() * q() + c(had_coef_bytes()) * dk(),
                    )
                    .upper_bound(),
            )
            .job(
                // The nnz·Q·R blowup that makes DNN the intermediate-data
                // worst case of the decoupled variants (Table III row 2).
                PlanJob::new("tucker-dnn-collapse-k")
                    .reads(["y_prime"])
                    .writes(["y"])
                    .op("collapse_job")
                    .comm_assoc()
                    .emits(n() * q() * r(), c(collapse_bytes()) * n() * q() * r())
                    .upper_bound(),
            ),
        (Decomp::Tucker, Variant::Drn) => JobGraph::new("tucker-drn", [])
            .big_input("x")
            .big_input("x_bin")
            .output("y")
            .job(
                PlanJob::new("tucker-drn-had-b{}")
                    .repeat(q())
                    .reads(["x"])
                    .writes(["t_prime"])
                    .op("hadamard_vec_job")
                    .emits(
                        n() + dj(),
                        c(had_ent_bytes()) * n() + c(had_coef_bytes()) * dj(),
                    ),
            )
            .job(
                PlanJob::new("tucker-drn-had-c{}")
                    .repeat(r())
                    .reads(["x_bin"])
                    .writes(["t_dprime"])
                    .op("hadamard_vec_job")
                    .emits(
                        n() + dk(),
                        c(had_ent_bytes()) * n() + c(had_coef_bytes()) * dk(),
                    ),
            )
            .job(
                PlanJob::new("tucker-drn-crossmerge")
                    .reads(["t_prime", "t_dprime"])
                    .writes(["y"])
                    .op("cross_merge_job")
                    .comm_assoc()
                    .emits(n() * (q() + r()), c(merge_bytes()) * n() * (q() + r())),
            ),
        (Decomp::Tucker, Variant::Dri) => JobGraph::new("tucker-dri", [])
            .big_input("x")
            .output("y")
            .job(imhp_job("tucker-dri-imhp", q(), r()))
            .job(
                PlanJob::new("tucker-dri-crossmerge")
                    .reads(["t_prime", "t_dprime"])
                    .writes(["y"])
                    .op("cross_merge_job")
                    .comm_assoc()
                    .emits(n() * (q() + r()), c(merge_bytes()) * n() * (q() + r())),
            ),

        // -- PARAFAC (Algorithms 4, 6, 8, 10; Table IV) --------------------
        (Decomp::Parafac, Variant::Naive) => JobGraph::new("parafac-naive", [])
            .big_input("x")
            .output("y")
            .job(
                PlanJob::new("parafac-naive-xb{}")
                    .repeat(r())
                    .reads(["x"])
                    .writes(["t"])
                    .op("naive_ttv_job")
                    .comm_assoc()
                    .emits(
                        n() + di() * dj() * dk(),
                        c(naive_bytes()) * (n() + di() * dj() * dk()),
                    ),
            )
            .job(
                PlanJob::new("parafac-naive-tc{}")
                    .repeat(r())
                    .reads(["t"])
                    .writes(["y"])
                    .op("naive_ttv_job")
                    .comm_assoc()
                    .emits(n() + di() * dk(), c(naive_bytes()) * (n() + di() * dk()))
                    // |T_r| = distinct (i,k) pairs ≤ nnz.
                    .upper_bound(),
            ),
        (Decomp::Parafac, Variant::Dnn) => JobGraph::new("parafac-dnn", [])
            .big_input("x")
            .output("y")
            .job(
                PlanJob::new("parafac-dnn-had-b{}")
                    .repeat(r())
                    .reads(["x"])
                    .writes(["h_b"])
                    .op("hadamard_vec_job")
                    .emits(
                        n() + dj(),
                        c(had_ent_bytes()) * n() + c(had_coef_bytes()) * dj(),
                    ),
            )
            .job(
                PlanJob::new("parafac-dnn-col-j{}")
                    .repeat(r())
                    .reads(["h_b"])
                    .writes(["t"])
                    .op("collapse_job")
                    .comm_assoc()
                    .emits(n(), c(collapse_bytes()) * n()),
            )
            .job(
                PlanJob::new("parafac-dnn-had-c{}")
                    .repeat(r())
                    .reads(["t"])
                    .writes(["h_c"])
                    .op("hadamard_vec_job")
                    .emits(
                        n() + dk(),
                        c(had_ent_bytes()) * n() + c(had_coef_bytes()) * dk(),
                    )
                    .upper_bound(),
            )
            .job(
                PlanJob::new("parafac-dnn-col-k{}")
                    .repeat(r())
                    .reads(["h_c"])
                    .writes(["y"])
                    .op("collapse_job")
                    .comm_assoc()
                    .emits(n(), c(collapse_bytes()) * n())
                    .upper_bound(),
            ),
        (Decomp::Parafac, Variant::Drn) => JobGraph::new("parafac-drn", [])
            .big_input("x")
            .big_input("x_bin")
            .output("y")
            .job(
                PlanJob::new("parafac-drn-had-b{}")
                    .repeat(r())
                    .reads(["x"])
                    .writes(["t_prime"])
                    .op("hadamard_vec_job")
                    .emits(
                        n() + dj(),
                        c(had_ent_bytes()) * n() + c(had_coef_bytes()) * dj(),
                    ),
            )
            .job(
                PlanJob::new("parafac-drn-had-c{}")
                    .repeat(r())
                    .reads(["x_bin"])
                    .writes(["t_dprime"])
                    .op("hadamard_vec_job")
                    .emits(
                        n() + dk(),
                        c(had_ent_bytes()) * n() + c(had_coef_bytes()) * dk(),
                    ),
            )
            .job(
                PlanJob::new("parafac-drn-pairwisemerge")
                    .reads(["t_prime", "t_dprime"])
                    .writes(["y"])
                    .op("pairwise_merge_job")
                    .comm_assoc()
                    .emits(c(2) * n() * r(), c(2 * merge_bytes()) * n() * r()),
            ),
        (Decomp::Parafac, Variant::Dri) => JobGraph::new("parafac-dri", [])
            .big_input("x")
            .output("y")
            .job(imhp_job("parafac-dri-imhp", r(), r()))
            .job(
                PlanJob::new("parafac-dri-pairwisemerge")
                    .reads(["t_prime", "t_dprime"])
                    .writes(["y"])
                    .op("pairwise_merge_job")
                    .comm_assoc()
                    .emits(c(2) * n() * r(), c(2 * merge_bytes()) * n() * r()),
            ),
    }
}

/// The static recovery contract of one pipeline: every graph-produced
/// dataset is covered by a lineage recipe (the drivers register one per
/// intermediate when run through [`crate::tucker`]/[`crate::parafac`] with
/// recovery enabled), and iterative (ALS) invocations checkpoint after
/// every sweep — [`crate::als::AlsOptions::checkpoint_every`] defaults to
/// 1, which is exactly the policy published here. The recoverability pass
/// in `haten2-analyze` certifies this spec against the [`plan_for`] graph.
pub fn recovery_for(decomp: Decomp, variant: Variant, sweeps: usize) -> RecoverySpec {
    let graph = plan_for(decomp, variant);
    let mut spec = RecoverySpec::new();
    for ds in graph.produced_datasets() {
        spec = spec.cover(&ds);
    }
    if sweeps > 0 {
        spec = spec.checkpoint(1, sweeps);
    }
    spec
}

/// Communication-bound metadata one pipeline registers: the parameters
/// that instantiate the Ballard–Rouse MTTKRP communication lower bounds
/// (arXiv:1708.07401) for it. The analyzer's `comm` pass combines these
/// with the graph-derived [`JobGraph::shuffle_bytes`] to certify each
/// pipeline's shuffle volume against a principled yardstick.
#[derive(Debug, Clone)]
pub struct CommSpec {
    /// Effective rank: how many factor words combine with each tensor
    /// nonzero per sweep — `Q + R` for the Tucker pipelines (both factor
    /// sides), `2·R` for PARAFAC (the B and C sides of the Khatri–Rao
    /// product). Drives the memory-dependent bound
    /// `nnz · rank_eff · 8 / Mr`.
    pub rank_eff: SymExpr,
    /// Width of the smallest wire record the engine ever shuffles (a
    /// Hadamard coefficient emission: 8-byte key + 8-byte value + record
    /// framing). Drives the memory-independent floor `nnz · w_min`: in
    /// the engine's stateless-mapper, combiner-free model every
    /// contributing nonzero crosses the shuffle at least once, as at
    /// least one record.
    pub min_record_bytes: u64,
}

/// The communication-bound registration for one pipeline. Every variant
/// of a decomposition shares the decomposition's effective rank: the
/// bound is a property of the MTTKRP computation, not of the job layout
/// a variant chooses — that is what makes it a fair yardstick across
/// variants.
pub fn comm_for(decomp: Decomp, _variant: Variant) -> CommSpec {
    let rank_eff = match decomp {
        Decomp::Tucker => q() + r(),
        Decomp::Parafac => c(2) * r(),
    };
    CommSpec {
        rank_eff,
        min_record_bytes: had_coef_bytes(),
    }
}

/// One commutative-associative reducer annotation: the purity-pass site
/// label it covers, plus a pure reference fold the generated property
/// tests exercise (permutation and reassociation invariance, bit-exact on
/// integer-valued inputs).
pub struct ReducerAnnotation {
    /// Site label the determinism pass reports for this reducer: the
    /// enclosing function name for jobs named dynamically, or the job-name
    /// template with `{…}` normalized to `{}`.
    pub site: &'static str,
    /// What the reducer folds, for the report.
    pub summary: &'static str,
    /// The reference fold (all registered reducers accumulate sums of
    /// products; the products are per-record and order-free, so the fold
    /// under test is addition).
    pub reduce: fn(&[f64]) -> f64,
}

fn sum_fold(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Every reducer the plans declare commutative-associative
/// ([`PlanJob::comm_assoc`]). The generated property tests in
/// `crates/core/tests/reducer_properties.rs` derive one proptest per entry
/// here; the determinism pass checks the set agrees with the `comm_assoc`
/// flags on every registered graph.
pub const COMM_ASSOC_REDUCERS: &[ReducerAnnotation] = &[
    ReducerAnnotation {
        site: "naive_ttv_job",
        summary: "dot-product accumulation of entry×coefficient per fiber",
        reduce: sum_fold,
    },
    ReducerAnnotation {
        site: "collapse_job",
        summary: "sum of coinciding entries after dropping one mode",
        reduce: sum_fold,
    },
    ReducerAnnotation {
        site: "cross_merge_job",
        summary: "sum over (j,k) of T'·T'' products per (i,q,r)",
        reduce: sum_fold,
    },
    ReducerAnnotation {
        site: "pairwise_merge_job",
        summary: "sum over (j,k) of matched T'·T'' products per (i,r)",
        reduce: sum_fold,
    },
    ReducerAnnotation {
        site: "cross_merge_split_job",
        summary: "per-slice partial of the CrossMerge fold (heavy-key-split phase 1)",
        reduce: sum_fold,
    },
    ReducerAnnotation {
        site: "pairwise_merge_split_job",
        summary: "per-slice partial of the PairwiseMerge fold (heavy-key-split phase 1)",
        reduce: sum_fold,
    },
    ReducerAnnotation {
        site: "model_inner_product_job",
        summary: "partial inner products ⟨X, X̂⟩ per target-mode slice",
        reduce: sum_fold,
    },
    ReducerAnnotation {
        site: "nway-pairwisemerge-mode{}",
        summary: "sum of complete side-products per (index, column)",
        reduce: sum_fold,
    },
    ReducerAnnotation {
        site: "nway-crossmerge-mode{}",
        summary: "sum of cartesian side-products per (index, columns)",
        reduce: sum_fold,
    },
];

/// Whether the plan metadata declares the reducer at `site` (a purity-pass
/// site label) commutative-associative.
pub fn is_comm_assoc_site(site: &str) -> bool {
    COMM_ASSOC_REDUCERS.iter().any(|a| a.site == site)
}

/// The annotation registered for `site`, when there is one.
pub fn comm_assoc_annotation(site: &str) -> Option<&'static ReducerAnnotation> {
    COMM_ASSOC_REDUCERS.iter().find(|a| a.site == site)
}

/// Certification records for runtime-applicable plan rewrites: every
/// `(graph name, rewrite name)` pair a pipeline is allowed to submit
/// rewritten. An entry asserts that `cargo xtask analyze` certifies the
/// rewrite on that graph (dataflow-sound, race-free, shuffle volume within
/// the declared inflation) — the analyzer's coverage test applies
/// `certify_rewrite` to every row of this table, so an uncertifiable
/// entry cannot land. Only the four merge-final pipelines are listed: the
/// Naive/DNN finals are per-rank job families, on which `heavy-key-split`
/// is the identity.
pub const CERTIFIED_REWRITES: &[(&str, &str)] = &[
    ("tucker-drn", "heavy-key-split"),
    ("tucker-dri", "heavy-key-split"),
    ("parafac-drn", "heavy-key-split"),
    ("parafac-dri", "heavy-key-split"),
];

/// Apply a certified rewrite to `graph` at submission time. Returns the
/// rewritten graph only when `(graph.name, rewrite)` has a certification
/// record in [`CERTIFIED_REWRITES`]; `None` means the rewrite is not
/// certified for this pipeline and the caller must submit the original
/// plan. This is the **only** sanctioned path from a pipeline to a
/// rewritten graph — the `no-uncertified-rewrite` source lint rejects
/// direct calls to the raw transform outside the certification machinery.
pub fn certified_rewrite_for(graph: &JobGraph, rewrite: &str) -> Option<JobGraph> {
    let certified = CERTIFIED_REWRITES
        .iter()
        .any(|&(g, r)| g == graph.name && r == rewrite);
    if !certified {
        return None;
    }
    match rewrite {
        "heavy-key-split" => Some(haten2_mapreduce::rewrite::heavy_key_split(graph)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parafac, tucker};

    fn sample_envs() -> Vec<Env> {
        let mut envs = Vec::new();
        for s in 1..6u64 {
            envs.push(Env {
                nnz: 1000 * s,
                dim_i: 10 + s,
                dim_j: 20 + s,
                dim_k: 30 + s,
                rank_q: 1 + s,
                rank_r: 2 + s,
                machines: 4 * s,
                faults: 1,
                reducer_memory: 1 << 20,
            });
        }
        envs
    }

    #[test]
    fn job_counts_agree_with_driver_formulas() {
        for env in sample_envs() {
            let (qv, rv) = (env.rank_q as usize, env.rank_r as usize);
            for variant in Variant::ALL {
                let g = plan_for(Decomp::Tucker, variant);
                assert_eq!(
                    g.total_jobs().eval(&env),
                    tucker::expected_jobs(variant, qv, rv) as u128,
                    "tucker {variant}"
                );
                let g = plan_for(Decomp::Parafac, variant);
                // PARAFAC plans use R for the rank.
                assert_eq!(
                    g.total_jobs().eval(&env),
                    parafac::expected_jobs(variant, rv) as u128,
                    "parafac {variant}"
                );
            }
        }
    }

    #[test]
    fn expansion_matches_runtime_job_names() {
        let env = env_for([4, 5, 6], 20, 2, 3, 4);
        let g = plan_for(Decomp::Tucker, Variant::Naive);
        let names: Vec<String> = g.expand(&env).into_iter().map(|j| j.name).collect();
        assert_eq!(names[0], "tucker-naive-xv-b0");
        assert_eq!(names[1], "tucker-naive-xv-b1");
        assert_eq!(names[2], "tucker-naive-tv-c0");
        assert_eq!(names.len(), 5);
        let g = plan_for(Decomp::Parafac, Variant::Dri);
        let names: Vec<String> = g.expand(&env).into_iter().map(|j| j.name).collect();
        assert_eq!(names, ["parafac-dri-imhp", "parafac-dri-pairwisemerge"]);
    }

    #[test]
    fn dri_jobs_are_all_exact() {
        let env = env_for([4, 5, 6], 20, 2, 3, 4);
        for decomp in Decomp::ALL {
            for inst in plan_for(decomp, Variant::Dri).expand(&env) {
                assert!(inst.exact, "{decomp} DRI job {} must be exact", inst.name);
            }
        }
    }

    #[test]
    fn comm_assoc_flags_agree_with_registry() {
        // Plan-side `comm_assoc` and the annotation registry must declare
        // the same set: a flag without a registry entry would dodge the
        // generated property test, a registry entry without a flag would
        // leave the determinism pass trusting an unpublished claim.
        for decomp in Decomp::ALL {
            for variant in Variant::ALL {
                for job in &plan_for(decomp, variant).jobs {
                    let op = job.op.as_deref().expect("every planned job names its op");
                    assert_eq!(
                        job.comm_assoc,
                        is_comm_assoc_site(op),
                        "{decomp} {variant} job {} (op {op})",
                        job.name
                    );
                }
            }
        }
    }

    #[test]
    fn derived_emit_hints_match_deleted_manual_hints() {
        // The drivers used to hard-code map-emit hints (1 everywhere, 2
        // for IMHP); the hints are now derived from the plan IR's emit
        // expressions and must reproduce those values for every job of
        // every registered pipeline.
        for decomp in Decomp::ALL {
            for variant in Variant::ALL {
                let g = plan_for(decomp, variant);
                for job in &g.jobs {
                    let concrete = job.name.replace("{}", "0");
                    let hint = g.emit_hint(&concrete).unwrap_or_else(|| {
                        panic!("{decomp} {variant} {}: no derived hint", job.name)
                    });
                    let want = if job.op.as_deref() == Some("imhp_job") {
                        2
                    } else {
                        1
                    };
                    assert_eq!(hint, want, "{decomp} {variant} {}", job.name);
                }
            }
        }
    }

    #[test]
    fn critical_path_depths_are_constant_per_variant() {
        // Under the DAG scheduler the Table III/IV job counts become
        // critical-path depths: Naive/DRN/DRI collapse to 2 and DNN to 4,
        // independent of tensor size, ranks, or machine count.
        for env in sample_envs() {
            for decomp in Decomp::ALL {
                for (variant, depth) in [
                    (Variant::Naive, 2),
                    (Variant::Dnn, 4),
                    (Variant::Drn, 2),
                    (Variant::Dri, 2),
                ] {
                    assert_eq!(
                        plan_for(decomp, variant).critical_path_jobs().eval(&env),
                        depth,
                        "{decomp} {variant}"
                    );
                }
            }
        }
    }

    #[test]
    fn recovery_spec_covers_every_intermediate_read() {
        for decomp in Decomp::ALL {
            for variant in Variant::ALL {
                let g = plan_for(decomp, variant);
                let spec = recovery_for(decomp, variant, 3);
                for ds in g.intermediate_reads() {
                    assert!(
                        spec.covered.contains(&ds),
                        "{decomp} {variant}: intermediate read '{ds}' uncovered"
                    );
                }
                let cp = spec.checkpoint.expect("sweeps > 0 implies a policy");
                assert_eq!(cp.every, 1);
                assert_eq!(cp.sweeps, 3);
            }
        }
    }

    #[test]
    fn certified_rewrite_gate_admits_only_recorded_pairs() {
        // Every recorded pair rewrites its graph into split + mergeparts…
        for &(graph_name, rewrite) in CERTIFIED_REWRITES {
            let (decomp, variant) = match graph_name {
                "tucker-drn" => (Decomp::Tucker, Variant::Drn),
                "tucker-dri" => (Decomp::Tucker, Variant::Dri),
                "parafac-drn" => (Decomp::Parafac, Variant::Drn),
                "parafac-dri" => (Decomp::Parafac, Variant::Dri),
                other => panic!("unmapped certification record '{other}'"),
            };
            let g = plan_for(decomp, variant);
            let rw = certified_rewrite_for(&g, rewrite)
                .unwrap_or_else(|| panic!("{graph_name}: certified rewrite refused"));
            assert_eq!(rw.jobs.len(), g.jobs.len() + 1, "{graph_name}");
            assert!(
                rw.jobs.iter().any(|j| j.name.ends_with("-mergeparts")),
                "{graph_name}"
            );
        }
        // …and unrecorded pairs are refused, whatever the graph shape.
        let naive = plan_for(Decomp::Tucker, Variant::Naive);
        assert!(certified_rewrite_for(&naive, "heavy-key-split").is_none());
        let dri = plan_for(Decomp::Tucker, Variant::Dri);
        assert!(certified_rewrite_for(&dri, "no-such-rewrite").is_none());
    }

    #[test]
    fn byte_constants_match_wire_format() {
        // Pin the reconstructed constants to the EstimateSize impls; if a
        // record type changes shape, this localizes the breakage.
        assert_eq!(super::had_ent_bytes(), 57);
        assert_eq!(super::had_coef_bytes(), 25);
        assert_eq!(super::collapse_bytes(), 48);
        assert_eq!(super::naive_bytes(), 57);
        assert_eq!(super::imhp_ent_bytes(), 58);
        assert_eq!(super::imhp_row_base_bytes(), 22);
        assert_eq!(super::imhp_row_elem_bytes(), 8);
        assert_eq!(super::merge_bytes(), 49);
    }
}
