//! The distributed operations of HaTen2, as MapReduce jobs.
//!
//! Every function here submits exactly one MapReduce job (the unit the
//! paper's job counts are stated in) and returns its output as `(Ix4, f64)`
//! records in the canonical orientation of [`crate::canon`]:
//!
//! * [`naive_ttv_job`] — the broadcast n-mode vector product of
//!   HaTen2-Naive (§III-B1). Intermediate data `nnz + |v|·(fibers)`.
//! * [`hadamard_vec_job`] — `X *̄ₙ v` (Definition 1), the multiply half of
//!   Hadamard-and-Merge (§III-B2). Intermediate data `nnz + |v|`.
//! * [`collapse_job`] — `Collapse(·)ₙ` (Definition 2), the add half.
//! * [`imhp_job`] — the integrated n-mode **matrix** Hadamard products
//!   `IMHP(X, B, C)` of HaTen2-DRI (§III-B4): computes `T' = X *₁ Bᵀ` and
//!   `T'' = bin(X) *₂ Cᵀ` in a single job, reading `X` once.
//! * [`cross_merge_job`] — `CrossMerge(T', T'')₍₀₎` (Definition 3/Lemma 1).
//! * [`pairwise_merge_job`] — `PairwiseMerge(T', T'')₍₀₎` (Definition
//!   4/Lemma 2).
//!
//! Mode positions refer to slots of [`Ix4`]; 3-way tensors keep slot 3 = 0,
//! and the Hadamard expansions write the factor-column index into slot 3.
//!
//! Every function takes a [`JobSite`] — either a [`Cluster`] directly (ad
//! hoc runs, unit tests) or a [`haten2_mapreduce::JobCtx`] when the job is
//! submitted as part of a scheduled [`haten2_mapreduce::Batch`], which is
//! how the ALS drivers run them. Map-emit hints are no longer hard-coded
//! here: inside a batch the scheduler derives them from the plan IR's
//! symbolic emit expressions ([`haten2_mapreduce::JobGraph::emit_hint`]),
//! so the sizing can never drift from the cost model. A
//! [`JobSpec::with_map_emit_hint`] call still overrides the derivation —
//! see [`crate::nway`] for graphless jobs that use the override.
//!
//! [`JobSite`]: haten2_mapreduce::JobSite
//! [`Cluster`]: haten2_mapreduce::Cluster

use crate::records::{HadVal, ImhpRec, ImhpVal, Ix4, MergeVal, NaiveVal, TvRec};
use haten2_linalg::Mat;
use haten2_mapreduce::{
    key_slice, run_job, run_job_streaming, EstimateSize, JobSite, JobSpec, MrError, Result,
};
use std::collections::{BTreeMap, HashMap};

/// Tensor records in the canonical `(Ix4, f64)` form.
pub type TensorRecords = Vec<(Ix4, f64)>;

#[inline]
fn slot(ix: &Ix4, pos: usize) -> u64 {
    match pos {
        0 => ix.0,
        1 => ix.1,
        2 => ix.2,
        3 => ix.3,
        _ => panic!("slot {pos} out of range"),
    }
}

#[inline]
fn with_slot(mut ix: Ix4, pos: usize, v: u64) -> Ix4 {
    match pos {
        0 => ix.0 = v,
        1 => ix.1 = v,
        2 => ix.2 = v,
        3 => ix.3 = v,
        _ => panic!("slot {pos} out of range"),
    }
    ix
}

/// n-mode vector Hadamard product `X *̄ₚₒₛ v` (Definition 1) as one job.
///
/// Joins tensor entries with vector elements on slot `join_pos`; each entry
/// is multiplied by its coefficient. When `tag_slot3` is set, the output
/// entries carry that value in slot 3 — this is how the per-column jobs of
/// DNN/DRN assemble the 4-way tensors `T'`/`T''` of Lemmas 1–2.
pub fn hadamard_vec_job(
    site: &impl JobSite,
    name: &str,
    entries: &[(Ix4, f64)],
    join_pos: usize,
    v: &[f64],
    tag_slot3: Option<u64>,
) -> Result<Vec<(Ix4, f64)>> {
    let input = crate::records::tv_input(entries, v);
    let out = run_job(
        site,
        JobSpec::named(name.to_string()),
        &input,
        move |_, rec: &TvRec, emit| match rec {
            TvRec::Ent(ix, val) => emit(slot(ix, join_pos), HadVal::Ent(*ix, *val)),
            TvRec::Coef(i, c) => emit(*i, HadVal::Coef(*c)),
        },
        move |_, vals, emit| {
            let mut coef = None;
            for v in &vals {
                if let HadVal::Coef(c) = v {
                    coef = Some(*c);
                }
            }
            let Some(c) = coef else { return };
            for v in vals {
                if let HadVal::Ent(ix, val) = v {
                    let out_ix = match tag_slot3 {
                        Some(t) => with_slot(ix, 3, t),
                        None => ix,
                    };
                    let prod = val * c;
                    if prod != 0.0 {
                        emit(out_ix, prod);
                    }
                }
            }
        },
    )?;
    Ok(out)
}

/// `Collapse(X)ₚₒₛ` (Definition 2) as one job: zero out slot `drop_pos` and
/// sum coinciding entries. `use_combiner` enables map-side pre-aggregation
/// (an ablation knob — the paper's accounting assumes no combiner).
///
/// The reducer streams: summing a key group needs one pass and no state
/// beyond the accumulator, so the engine's merge never materializes the
/// group's values — the collapse of a dense fiber costs O(1) reducer
/// memory on the host regardless of fiber length.
pub fn collapse_job(
    site: &impl JobSite,
    name: &str,
    entries: &[(Ix4, f64)],
    drop_pos: usize,
    use_combiner: bool,
) -> Result<Vec<(Ix4, f64)>> {
    let combiner = |_: &Ix4, vals: Vec<f64>| vec![vals.iter().sum::<f64>()];
    let spec = if use_combiner {
        JobSpec::named(name.to_string()).with_combiner(&combiner)
    } else {
        JobSpec::named(name.to_string())
    };
    let out = run_job_streaming(
        site,
        spec,
        entries,
        move |ix: &Ix4, val: &f64, emit| emit(with_slot(*ix, drop_pos, 0), *val),
        |ix, vals, emit| {
            let s: f64 = vals.sum::<f64>();
            if s != 0.0 {
                emit(*ix, s);
            }
        },
    )?;
    Ok(out)
}

/// The naive broadcast n-mode vector product (§III-B1): contract slot
/// `contract_pos` against `v`, shuffling the **entire vector to every
/// fiber** of the remaining modes, exactly as HaTen2-Naive does. `dims`
/// are the 4-slot dimensions of `entries` (slot 3 = 1 for 3-way tensors).
///
/// Intermediate data is `nnz + |v| · Π(other dims)` — `nnz(X) + IJK` in the
/// paper's Table III/IV — so before running, the cost is estimated against
/// the cluster capacity and the job aborts with
/// [`MrError::ClusterCapacityExceeded`] when it cannot fit (the paper's
/// "o.o.m."). This pre-check is what lets the simulation *report* the
/// failure the paper observed without materializing petabytes.
pub fn naive_ttv_job(
    site: &impl JobSite,
    name: &str,
    entries: &[(Ix4, f64)],
    dims: [u64; 4],
    contract_pos: usize,
    v: &[f64],
) -> Result<Vec<(Ix4, f64)>> {
    // Feasibility pre-check against cluster capacity.
    let fibers: u128 = (0..4)
        .filter(|&p| p != contract_pos)
        .map(|p| dims[p].max(1) as u128)
        .product();
    let broadcast_records = fibers.saturating_mul(v.len() as u128);
    let est_record_bytes = (NaiveVal::Coef(0, 0.0).est_bytes() + 24 + 8) as u128;
    let est_bytes = broadcast_records
        .saturating_add(entries.len() as u128)
        .saturating_mul(est_record_bytes);
    if let Some(cap) = site.cluster().config().cluster_capacity_bytes {
        if est_bytes > cap as u128 {
            return Err(MrError::ClusterCapacityExceeded {
                job: name.to_string(),
                intermediate_bytes: est_bytes.min(usize::MAX as u128) as usize,
                capacity_bytes: cap,
            });
        }
    }

    let input = crate::records::tv_input(entries, v);
    // Enumerate the cross product of the non-contracted dims for broadcast.
    let other_pos: Vec<usize> = (0..4).filter(|&p| p != contract_pos).collect();
    let other_dims: Vec<u64> = other_pos.iter().map(|&p| dims[p].max(1)).collect();

    let out = run_job(
        site,
        JobSpec::named(name.to_string()),
        &input,
        |_, rec: &TvRec, emit| match rec {
            TvRec::Ent(ix, val) => {
                let key = with_slot(*ix, contract_pos, 0);
                emit(key, NaiveVal::Ent(slot(ix, contract_pos), *val));
            }
            TvRec::Coef(i, c) => {
                // Broadcast this vector element to every fiber.
                for a in 0..other_dims[0] {
                    for b in 0..other_dims[1] {
                        for d in 0..other_dims[2] {
                            let mut key = (0, 0, 0, 0);
                            key = with_slot(key, other_pos[0], a);
                            key = with_slot(key, other_pos[1], b);
                            key = with_slot(key, other_pos[2], d);
                            emit(key, NaiveVal::Coef(*i, *c));
                        }
                    }
                }
            }
        },
        |key, vals, emit| {
            let mut coefs: HashMap<u64, f64> = HashMap::new();
            for v in &vals {
                if let NaiveVal::Coef(i, c) = v {
                    coefs.insert(*i, *c);
                }
            }
            let mut dot = 0.0;
            let mut any = false;
            for v in &vals {
                if let NaiveVal::Ent(i, val) = v {
                    any = true;
                    if let Some(c) = coefs.get(i) {
                        dot += val * c;
                    }
                }
            }
            if any && dot != 0.0 {
                emit(*key, dot);
            }
        },
    )?;
    Ok(out)
}

/// The integrated n-mode matrix Hadamard products `IMHP(X, B, C)`
/// (§III-B4) as **one** job: returns `(T', T'')` where
/// `T'[i,j,k,q] = X[i,j,k]·Bᵀ[q,j]` and `T''[i,j,k,r] = Cᵀ[r,k]` on the
/// support of `X` (the `bin(X)` side of Lemmas 1–2). `bt ∈ ℝ^{Q×d₁}`,
/// `ct ∈ ℝ^{R×d₂}` in canonical orientation.
pub fn imhp_job(
    site: &impl JobSite,
    name: &str,
    entries: &[(Ix4, f64)],
    bt: &Mat,
    ct: &Mat,
) -> Result<(TensorRecords, TensorRecords)> {
    let mut input: Vec<((), ImhpRec)> = entries
        .iter()
        .map(|&(ix, v)| ((), ImhpRec::Ent(ix, v)))
        .collect();
    for j in 0..bt.cols() {
        let col: Vec<f64> = (0..bt.rows()).map(|q| bt.get(q, j)).collect();
        input.push(((), ImhpRec::Row(0, j as u64, col)));
    }
    for k in 0..ct.cols() {
        let col: Vec<f64> = (0..ct.rows()).map(|r| ct.get(r, k)).collect();
        input.push(((), ImhpRec::Row(1, k as u64, col)));
    }

    let out = run_job(
        site,
        JobSpec::named(name.to_string()),
        &input,
        |_, rec: &ImhpRec, emit| match rec {
            ImhpRec::Ent(ix, v) => {
                emit((0u8, ix.1), ImhpVal::Ent(*ix, *v));
                emit((1u8, ix.2), ImhpVal::Ent(*ix, *v));
            }
            ImhpRec::Row(side, idx, row) => emit((*side, *idx), ImhpVal::Row(row.clone())),
        },
        |key, vals, emit| {
            let (side, _) = *key;
            let mut row: Option<&Vec<f64>> = None;
            for v in &vals {
                if let ImhpVal::Row(r) = v {
                    row = Some(r);
                }
            }
            let Some(row) = row else { return };
            for v in &vals {
                if let ImhpVal::Ent(ix, val) = v {
                    for (d, &coef) in row.iter().enumerate() {
                        if coef == 0.0 {
                            continue;
                        }
                        let out_ix = with_slot(*ix, 3, d as u64);
                        // T' carries X·B; T'' carries only C (bin(X) side).
                        let out_v = if side == 0 { val * coef } else { coef };
                        emit((side, out_ix), out_v);
                    }
                }
            }
        },
    )?;

    let mut t_prime = Vec::new();
    let mut t_dprime = Vec::new();
    for ((side, ix), v) in out {
        if side == 0 {
            t_prime.push((ix, v));
        } else {
            t_dprime.push((ix, v));
        }
    }
    Ok((t_prime, t_dprime))
}

/// `CrossMerge(T', T'')₍₀₎` (Definition 3) as one job: produces
/// `Y(i, q, r) = Σ_{j,k} T'(i,j,k,q)·T''(i,j,k,r)` as records
/// `((i, q, r, 0), y)`.
///
/// Keys on the target-mode index `i`, so the shuffle volume is
/// `nnz·(Q+R)` — the Table III cost of HaTen2-DRN/DRI.
pub fn cross_merge_job(
    site: &impl JobSite,
    name: &str,
    t_prime: &[(Ix4, f64)],
    t_dprime: &[(Ix4, f64)],
) -> Result<Vec<(Ix4, f64)>> {
    let input = merge_input(t_prime, t_dprime);
    let out = run_job(
        site,
        JobSpec::named(name.to_string()),
        &input,
        |_, rec: &MergeVal, emit| emit(rec.i, rec.clone()),
        |i, vals, emit| {
            // Group T'' by (j, k) -> [(r, v)].
            let mut by_jk: HashMap<(u64, u64), Vec<(u64, f64)>> = HashMap::new();
            for v in &vals {
                if v.side == 1 {
                    by_jk.entry((v.j, v.k)).or_default().push((v.d, v.v));
                }
            }
            // BTreeMap, not HashMap: the accumulator is *iterated* into
            // emits, so its order must not depend on hasher state (the
            // determinism pass rejects unordered iteration feeding emits).
            let mut acc: BTreeMap<(u64, u64), f64> = BTreeMap::new();
            for v in &vals {
                if v.side == 0 {
                    if let Some(rs) = by_jk.get(&(v.j, v.k)) {
                        for &(r, w) in rs {
                            *acc.entry((v.d, r)).or_insert(0.0) += v.v * w;
                        }
                    }
                }
            }
            for ((q, r), y) in acc {
                if y != 0.0 {
                    emit((*i, q, r, 0u64), y);
                }
            }
        },
    )?;
    Ok(out)
}

/// `PairwiseMerge(T', T'')₍₀₎` (Definition 4) as one job: produces
/// `Y(i, r) = Σ_{j,k} T'(i,j,k,r)·T''(i,j,k,r)` as records
/// `((i, r, 0, 0), y)`. Shuffle volume `2·nnz·R` — the Table IV cost of
/// HaTen2-PARAFAC-DRN/DRI.
pub fn pairwise_merge_job(
    site: &impl JobSite,
    name: &str,
    t_prime: &[(Ix4, f64)],
    t_dprime: &[(Ix4, f64)],
) -> Result<Vec<(Ix4, f64)>> {
    let input = merge_input(t_prime, t_dprime);
    let out = run_job(
        site,
        JobSpec::named(name.to_string()),
        &input,
        |_, rec: &MergeVal, emit| emit(rec.i, rec.clone()),
        |i, vals, emit| {
            let mut by_jkr: HashMap<(u64, u64, u64), f64> = HashMap::new();
            for v in &vals {
                if v.side == 1 {
                    *by_jkr.entry((v.j, v.k, v.d)).or_insert(0.0) += v.v;
                }
            }
            // BTreeMap: iterated into emits below (see cross_merge_job).
            let mut acc: BTreeMap<u64, f64> = BTreeMap::new();
            for v in &vals {
                if v.side == 0 {
                    if let Some(&w) = by_jkr.get(&(v.j, v.k, v.d)) {
                        *acc.entry(v.d).or_insert(0.0) += v.v * w;
                    }
                }
            }
            for (r, y) in acc {
                if y != 0.0 {
                    emit((*i, r, 0u64, 0u64), y);
                }
            }
        },
    )?;
    Ok(out)
}

/// One split instance of the `heavy-key-split` two-phase rewrite of
/// [`cross_merge_job`]: maps the **full** merge input but emits only the
/// records whose target-mode index hashes to `slice` (of `slices`,
/// assigned by [`key_slice`] — the same FNV-1a the shuffle partitioner
/// uses), then runs the unmodified cross-merge reduce on those whole key
/// groups. Because slices are whole groups, every group is still reduced
/// in one piece with the same value order as the unrewritten job, so the
/// `…__part#slice` shards concatenated in slice order reassemble
/// (via [`merge_parts_job`]) to the bit-identical unrewritten output.
pub fn cross_merge_split_job(
    site: &impl JobSite,
    name: &str,
    t_prime: &[(Ix4, f64)],
    t_dprime: &[(Ix4, f64)],
    slice: usize,
    slices: usize,
) -> Result<Vec<(Ix4, f64)>> {
    let input = merge_input(t_prime, t_dprime);
    let out = run_job(
        site,
        JobSpec::named(name.to_string()),
        &input,
        move |_, rec: &MergeVal, emit| {
            if key_slice(&rec.i, slices) == slice {
                emit(rec.i, rec.clone());
            }
        },
        |i, vals, emit| {
            // Identical to cross_merge_job's reducer: whole-group
            // reduction keeps f64 accumulation order, and with it
            // bit-identity.
            let mut by_jk: HashMap<(u64, u64), Vec<(u64, f64)>> = HashMap::new();
            for v in &vals {
                if v.side == 1 {
                    by_jk.entry((v.j, v.k)).or_default().push((v.d, v.v));
                }
            }
            // BTreeMap: iterated into emits below (see cross_merge_job).
            let mut acc: BTreeMap<(u64, u64), f64> = BTreeMap::new();
            for v in &vals {
                if v.side == 0 {
                    if let Some(rs) = by_jk.get(&(v.j, v.k)) {
                        for &(r, w) in rs {
                            *acc.entry((v.d, r)).or_insert(0.0) += v.v * w;
                        }
                    }
                }
            }
            for ((q, r), y) in acc {
                if y != 0.0 {
                    emit((*i, q, r, 0u64), y);
                }
            }
        },
    )?;
    Ok(out)
}

/// One split instance of the `heavy-key-split` rewrite of
/// [`pairwise_merge_job`] — see [`cross_merge_split_job`] for the slicing
/// and bit-identity argument.
pub fn pairwise_merge_split_job(
    site: &impl JobSite,
    name: &str,
    t_prime: &[(Ix4, f64)],
    t_dprime: &[(Ix4, f64)],
    slice: usize,
    slices: usize,
) -> Result<Vec<(Ix4, f64)>> {
    let input = merge_input(t_prime, t_dprime);
    let out = run_job(
        site,
        JobSpec::named(name.to_string()),
        &input,
        move |_, rec: &MergeVal, emit| {
            if key_slice(&rec.i, slices) == slice {
                emit(rec.i, rec.clone());
            }
        },
        |i, vals, emit| {
            // Identical to pairwise_merge_job's reducer.
            let mut by_jkr: HashMap<(u64, u64, u64), f64> = HashMap::new();
            for v in &vals {
                if v.side == 1 {
                    *by_jkr.entry((v.j, v.k, v.d)).or_insert(0.0) += v.v;
                }
            }
            // BTreeMap: iterated into emits below (see cross_merge_job).
            let mut acc: BTreeMap<u64, f64> = BTreeMap::new();
            for v in &vals {
                if v.side == 0 {
                    if let Some(&w) = by_jkr.get(&(v.j, v.k, v.d)) {
                        *acc.entry(v.d).or_insert(0.0) += v.v * w;
                    }
                }
            }
            for (r, y) in acc {
                if y != 0.0 {
                    emit((*i, r, 0u64, 0u64), y);
                }
            }
        },
    )?;
    Ok(out)
}

/// The `mergeparts` reassembly pass of the `heavy-key-split` rewrite:
/// re-keys the concatenated per-slice partials on the target-mode index
/// and re-emits every record **in arrival order**. All records of one
/// reduce key live in exactly one slice (the hash assigns whole groups),
/// arrive contiguous in that slice's emission order, and leave the same
/// way; with the same partitioner and key ordering as the original merge,
/// the reassembled dataset is byte-for-byte the unrewritten job's output.
pub fn merge_parts_job(
    site: &impl JobSite,
    name: &str,
    parts: &[(Ix4, f64)],
) -> Result<Vec<(Ix4, f64)>> {
    let out = run_job(
        site,
        JobSpec::named(name.to_string()),
        parts,
        |ix: &Ix4, v: &f64, emit| emit(ix.0, (*ix, *v)),
        |_, vals, emit| {
            for (ix, v) in vals {
                emit(ix, v);
            }
        },
    )?;
    Ok(out)
}

/// Distributed model inner product `⟨X, X̂⟩` for a PARAFAC model
/// `X̂ = Σ_r λ_r a_r ∘ b_r ∘ c_r`, as one MapReduce job.
///
/// The Hadoop implementation evaluates the fit on the cluster; mirroring
/// that, the tensor slices and the factor-A rows are joined reduce-side on
/// the mode-0 index (shuffle `nnz + I` records), while the B/C factors ride
/// along as the job's broadcast small side (captured state, the map-side
/// join idiom). Returns the scalar `Σ X(i,j,k)·X̂(i,j,k)`.
pub fn model_inner_product_job(
    site: &impl JobSite,
    name: &str,
    x: &TensorRecords,
    factors: [&Mat; 3],
    lambda: &[f64],
) -> Result<f64> {
    let (a, b, c) = (factors[0], factors[1], factors[2]);
    let rank = a.cols();
    let mut input: Vec<((), ImhpRec)> =
        x.iter().map(|&(ix, v)| ((), ImhpRec::Ent(ix, v))).collect();
    for i in 0..a.rows() {
        input.push(((), ImhpRec::Row(0, i as u64, a.row(i).to_vec())));
    }
    let out = run_job(
        site,
        JobSpec::named(name.to_string()),
        &input,
        |_, rec: &ImhpRec, emit| match rec {
            ImhpRec::Ent(ix, v) => emit(ix.0, ImhpVal::Ent(*ix, *v)),
            ImhpRec::Row(_, i, row) => emit(*i, ImhpVal::Row(row.clone())),
        },
        move |_, vals, emit| {
            let mut a_row: Option<&Vec<f64>> = None;
            for v in &vals {
                if let ImhpVal::Row(r) = v {
                    a_row = Some(r);
                }
            }
            let Some(a_row) = a_row else { return };
            let mut partial = 0.0;
            for v in &vals {
                if let ImhpVal::Ent(ix, val) = v {
                    let mut model = 0.0;
                    for r in 0..rank {
                        model += lambda[r]
                            * a_row[r]
                            * b.get(ix.1 as usize, r)
                            * c.get(ix.2 as usize, r);
                    }
                    partial += val * model;
                }
            }
            if partial != 0.0 {
                emit(0u8, partial);
            }
        },
    )?;
    Ok(out.into_iter().map(|(_, v)| v).sum())
}

fn merge_input(t_prime: &[(Ix4, f64)], t_dprime: &[(Ix4, f64)]) -> Vec<((), MergeVal)> {
    let mut input = Vec::with_capacity(t_prime.len() + t_dprime.len());
    for &(ix, v) in t_prime {
        input.push((
            (),
            MergeVal {
                side: 0,
                i: ix.0,
                j: ix.1,
                k: ix.2,
                d: ix.3,
                v,
            },
        ));
    }
    for &(ix, v) in t_dprime {
        input.push((
            (),
            MergeVal {
                side: 1,
                i: ix.0,
                j: ix.1,
                k: ix.2,
                d: ix.3,
                v,
            },
        ));
    }
    input
}
