//! Record types flowing through HaTen2's MapReduce jobs.
//!
//! All intermediate tensors are carried as `(Ix4, f64)` records: a 4-slot
//! index tuple plus a value. 3-way tensors leave slot 3 at 0; the Hadamard
//! expansions `T' = X *ₙ Bᵀ` and `T'' = bin(X) *ₙ Cᵀ` use slot 3 for the
//! factor-column index `q`/`r` — exactly the 4-way tensors of Lemmas 1–2.

use haten2_mapreduce::EstimateSize;
use haten2_tensor::CooTensor3;

/// Four-slot index tuple `(i, j, k, q)`.
pub type Ix4 = (u64, u64, u64, u64);

/// Input record for Hadamard / naive n-mode product jobs: a tensor entry or
/// one element of the multiplying vector.
#[derive(Debug, Clone, PartialEq)]
pub enum TvRec {
    /// Tensor entry.
    Ent(Ix4, f64),
    /// Vector element `(index, coefficient)`.
    Coef(u64, f64),
}

impl EstimateSize for TvRec {
    fn est_bytes(&self) -> usize {
        1 + match self {
            TvRec::Ent(ix, v) => ix.est_bytes() + v.est_bytes(),
            TvRec::Coef(i, v) => i.est_bytes() + v.est_bytes(),
        }
    }
}

/// Input record for the integrated `IMHP(X, B, C)` job: a tensor entry or a
/// full factor-matrix row for one of the two join sides.
#[derive(Debug, Clone, PartialEq)]
pub enum ImhpRec {
    /// Tensor entry.
    Ent(Ix4, f64),
    /// Factor row: `side` 0 joins on the mode-1 index with a row of `Bᵀ`
    /// (length Q), `side` 1 joins on the mode-2 index with a row of `Cᵀ`
    /// (length R).
    Row(u8, u64, Vec<f64>),
}

impl EstimateSize for ImhpRec {
    fn est_bytes(&self) -> usize {
        1 + match self {
            ImhpRec::Ent(ix, v) => ix.est_bytes() + v.est_bytes(),
            ImhpRec::Row(s, i, row) => s.est_bytes() + i.est_bytes() + row.est_bytes(),
        }
    }
}

/// Intermediate value for Hadamard-style joins keyed on one tensor mode.
#[derive(Debug, Clone, PartialEq)]
pub enum HadVal {
    /// Tensor entry routed to this join key.
    Ent(Ix4, f64),
    /// The vector coefficient for this join key.
    Coef(f64),
}

impl EstimateSize for HadVal {
    fn est_bytes(&self) -> usize {
        1 + match self {
            HadVal::Ent(ix, v) => ix.est_bytes() + v.est_bytes(),
            HadVal::Coef(v) => v.est_bytes(),
        }
    }
}

/// Intermediate value for the naive broadcast join keyed on a fiber.
#[derive(Debug, Clone, PartialEq)]
pub enum NaiveVal {
    /// Tensor entry: `(contract-mode index, value)`.
    Ent(u64, f64),
    /// Broadcast vector element: `(contract-mode index, coefficient)`.
    Coef(u64, f64),
}

impl EstimateSize for NaiveVal {
    fn est_bytes(&self) -> usize {
        1 + match self {
            NaiveVal::Ent(i, v) | NaiveVal::Coef(i, v) => i.est_bytes() + v.est_bytes(),
        }
    }
}

/// Intermediate value for IMHP joins: entry or factor row.
#[derive(Debug, Clone, PartialEq)]
pub enum ImhpVal {
    /// Tensor entry routed to this join key.
    Ent(Ix4, f64),
    /// Factor row for this join key.
    Row(Vec<f64>),
}

impl EstimateSize for ImhpVal {
    fn est_bytes(&self) -> usize {
        1 + match self {
            ImhpVal::Ent(ix, v) => ix.est_bytes() + v.est_bytes(),
            ImhpVal::Row(row) => row.est_bytes(),
        }
    }
}

/// Merge-side value: one expanded entry from `T'` (`side` 0, slot-3 = q) or
/// `T''` (`side` 1, slot-3 = r), carrying `(j, k, slot3, value)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeVal {
    /// 0 = `T'` (B side), 1 = `T''` (C side).
    pub side: u8,
    /// Target-mode index (the merge key).
    pub i: u64,
    /// Mode-1 index.
    pub j: u64,
    /// Mode-2 index.
    pub k: u64,
    /// Factor-column index (q or r).
    pub d: u64,
    /// Value.
    pub v: f64,
}

impl EstimateSize for MergeVal {
    fn est_bytes(&self) -> usize {
        // side + j + k + d + v; the i index travels in the shuffle key, so it
        // is not double-counted here.
        1 + 8 + 8 + 8 + 8
    }
}

/// Convert a canonical 3-way tensor into `(Ix4, f64)` records (slot 3 = 0).
pub fn tensor_records(t: &CooTensor3) -> Vec<(Ix4, f64)> {
    t.entries()
        .iter()
        .map(|e| ((e.i, e.j, e.k, 0), e.v))
        .collect()
}

/// Wrap tensor records plus one vector as [`TvRec`] job input.
pub fn tv_input(entries: &[(Ix4, f64)], v: &[f64]) -> Vec<((), TvRec)> {
    let mut input: Vec<((), TvRec)> = entries
        .iter()
        .map(|&(ix, val)| ((), TvRec::Ent(ix, val)))
        .collect();
    input.extend(
        v.iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(i, &c)| ((), TvRec::Coef(i as u64, c))),
    );
    input
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_tensor::Entry3;

    #[test]
    fn record_sizes_positive() {
        assert!(TvRec::Ent((0, 0, 0, 0), 1.0).est_bytes() >= 40);
        assert!(TvRec::Coef(0, 1.0).est_bytes() >= 17);
        assert!(ImhpRec::Row(0, 1, vec![1.0; 10]).est_bytes() >= 80);
        assert_eq!(
            MergeVal {
                side: 0,
                i: 0,
                j: 0,
                k: 0,
                d: 0,
                v: 0.0
            }
            .est_bytes(),
            33
        );
    }

    #[test]
    fn tensor_records_roundtrip() {
        let t = CooTensor3::from_entries(
            [2, 2, 2],
            vec![Entry3::new(0, 1, 0, 2.0), Entry3::new(1, 0, 1, 3.0)],
        )
        .unwrap();
        let recs = tensor_records(&t);
        assert_eq!(recs.len(), 2);
        assert!(recs.contains(&((0, 1, 0, 0), 2.0)));
    }

    #[test]
    fn tv_input_skips_zero_coefs() {
        let input = tv_input(&[((0, 0, 0, 0), 1.0)], &[0.0, 2.0, 0.0]);
        assert_eq!(input.len(), 2);
        assert!(matches!(input[1].1, TvRec::Coef(1, c) if c == 2.0));
    }
}
