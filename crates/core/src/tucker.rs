//! HaTen2-Tucker: distributed computation of `Y ← X ×ₘ₁ U₁ ×ₘ₂ U₂`
//! (Algorithms 3, 5, 7, 9 of the paper), the bottleneck of Tucker-ALS.
//!
//! [`project`] computes, for a target mode `n`, the projection of `X` onto
//! the factor matrices of the two *other* modes: for `n = 0` this is
//! `Y = X ×₂ Bᵀ ×₃ Cᵀ ∈ ℝ^{I×Q×R}` — exactly lines 3/5/7 of Tucker-ALS
//! (Algorithm 2). The four variants trade intermediate data and job count as
//! summarized in Table III:
//!
//! | Variant | Max intermediate | Jobs    |
//! |---------|------------------|---------|
//! | Naive   | `nnz + IJK`      | `Q+R`   |
//! | DNN     | `nnz·Q·R`        | `Q+R+2` |
//! | DRN     | `nnz·(Q+R)`      | `Q+R+1` |
//! | DRI     | `nnz·(Q+R)`      | `2`     |

use crate::canon::canonicalize;
use crate::ops::{collapse_job, cross_merge_job, hadamard_vec_job, imhp_job, naive_ttv_job};
use crate::records::{tensor_records, Ix4};
use crate::{CoreError, Result, Variant};
use haten2_linalg::Mat;
use haten2_mapreduce::Cluster;
use haten2_tensor::{CooTensor3, Entry3};

/// Options for [`project`].
#[derive(Debug, Clone, Default)]
pub struct ProjectOptions {
    /// Use a map-side combiner in Collapse jobs (ablation; the paper's cost
    /// model assumes none).
    pub use_combiner: bool,
}

/// Compute `Y ← X ×ₘ₁ U₁ᵀ ×ₘ₂ U₂ᵀ` for the two non-target modes
/// `m₁ < m₂` of `mode`, using the given HaTen2 `variant`.
///
/// * `u1 ∈ ℝ^{Q×dims[m₁]}` and `u2 ∈ ℝ^{R×dims[m₂]}` are the transposed
///   factor matrices (`Bᵀ`, `Cᵀ` for `mode = 0`).
/// * Returns `Y` as a sparse tensor with dims `[dims[mode], Q, R]`.
///
/// ```
/// use haten2_core::{tucker, Variant};
/// use haten2_linalg::Mat;
/// use haten2_mapreduce::{Cluster, ClusterConfig};
/// use haten2_tensor::{CooTensor3, Entry3};
///
/// let x = CooTensor3::from_entries(
///     [2, 2, 2],
///     vec![Entry3::new(0, 1, 0, 3.0)],
/// )
/// .unwrap();
/// let bt = Mat::from_rows(&[vec![1.0, 2.0]]).unwrap(); // Q x J (Q = 1)
/// let ct = Mat::from_rows(&[vec![5.0, 7.0]]).unwrap(); // R x K (R = 1)
/// let cluster = Cluster::new(ClusterConfig::with_machines(2));
///
/// // Y = X x2 Bt x3 Ct: Y(0, 0, 0) = 3 * B(1, 0) * C(0, 0) = 3 * 2 * 5.
/// let y = tucker::project(
///     &cluster, Variant::Dri, &x, 0, &bt, &ct,
///     &tucker::ProjectOptions::default(),
/// )
/// .unwrap();
/// assert_eq!(y.dims(), [2, 1, 1]);
/// assert_eq!(y.get(0, 0, 0), 30.0);
/// // DRI: exactly 2 MapReduce jobs (Table III).
/// assert_eq!(cluster.metrics().total_jobs(), 2);
/// ```
pub fn project(
    cluster: &Cluster,
    variant: Variant,
    x: &CooTensor3,
    mode: usize,
    u1: &Mat,
    u2: &Mat,
    opts: &ProjectOptions,
) -> Result<CooTensor3> {
    if mode > 2 {
        return Err(CoreError::InvalidArgument(format!(
            "mode {mode} out of range"
        )));
    }
    let (xc, perm) = canonicalize(x, mode);
    let d = xc.dims();
    let (d0, d1, d2) = (d[0], d[1], d[2]);
    if u1.cols() != d1 as usize || u2.cols() != d2 as usize {
        return Err(CoreError::InvalidArgument(format!(
            "project: factors are {}x{} and {}x{} for canonical dims {d:?} (perm {perm:?})",
            u1.rows(),
            u1.cols(),
            u2.rows(),
            u2.cols()
        )));
    }
    let q_dim = u1.rows() as u64;
    let r_dim = u2.rows() as u64;
    let x_records = tensor_records(&xc);

    let y_records: Vec<(Ix4, f64)> = match variant {
        Variant::Naive => {
            // Algorithm 3: Q broadcast products with B's rows, then R with C's.
            let dims4 = [d0, d1, d2, 1];
            let mut t_records: Vec<(Ix4, f64)> = Vec::new();
            for q in 0..u1.rows() {
                let out = naive_ttv_job(
                    cluster,
                    &format!("tucker-naive-xv-b{q}"),
                    &x_records,
                    dims4,
                    1,
                    u1.row(q),
                )?;
                // Stack the Q results along slot 1.
                t_records.extend(
                    out.into_iter()
                        .map(|(ix, v)| ((ix.0, q as u64, ix.2, 0), v)),
                );
            }
            let t_dims = [d0, q_dim, d2, 1];
            let mut y = Vec::new();
            for r in 0..u2.rows() {
                let out = naive_ttv_job(
                    cluster,
                    &format!("tucker-naive-tv-c{r}"),
                    &t_records,
                    t_dims,
                    2,
                    u2.row(r),
                )?;
                y.extend(
                    out.into_iter()
                        .map(|(ix, v)| ((ix.0, ix.1, r as u64, 0), v)),
                );
            }
            y
        }
        Variant::Dnn => {
            // Algorithm 5: Hadamard per column, Collapse, repeat, Collapse.
            let mut t_prime: Vec<(Ix4, f64)> = Vec::new();
            for q in 0..u1.rows() {
                t_prime.extend(hadamard_vec_job(
                    cluster,
                    &format!("tucker-dnn-had-b{q}"),
                    &x_records,
                    1,
                    u1.row(q),
                    Some(q as u64),
                )?);
            }
            let t = collapse_job(
                cluster,
                "tucker-dnn-collapse-j",
                &t_prime,
                1,
                opts.use_combiner,
            )?;
            // T(x0, 0, k, q): move q into slot 1 so slot 3 is free for r.
            let t_repacked: Vec<(Ix4, f64)> = t
                .into_iter()
                .map(|(ix, v)| ((ix.0, ix.3, ix.2, 0), v))
                .collect();
            let mut y_prime: Vec<(Ix4, f64)> = Vec::new();
            for r in 0..u2.rows() {
                y_prime.extend(hadamard_vec_job(
                    cluster,
                    &format!("tucker-dnn-had-c{r}"),
                    &t_repacked,
                    2,
                    u2.row(r),
                    Some(r as u64),
                )?);
            }
            let y = collapse_job(
                cluster,
                "tucker-dnn-collapse-k",
                &y_prime,
                2,
                opts.use_combiner,
            )?;
            // Y(x0, q, 0, r) -> (x0, q, r, 0)
            y.into_iter()
                .map(|(ix, v)| ((ix.0, ix.1, ix.3, 0), v))
                .collect()
        }
        Variant::Drn => {
            // Algorithm 7: independent Hadamard expansions, then CrossMerge.
            let mut t_prime: Vec<(Ix4, f64)> = Vec::new();
            for q in 0..u1.rows() {
                t_prime.extend(hadamard_vec_job(
                    cluster,
                    &format!("tucker-drn-had-b{q}"),
                    &x_records,
                    1,
                    u1.row(q),
                    Some(q as u64),
                )?);
            }
            let bin_records = tensor_records(&xc.bin());
            let mut t_dprime: Vec<(Ix4, f64)> = Vec::new();
            for r in 0..u2.rows() {
                t_dprime.extend(hadamard_vec_job(
                    cluster,
                    &format!("tucker-drn-had-c{r}"),
                    &bin_records,
                    2,
                    u2.row(r),
                    Some(r as u64),
                )?);
            }
            cross_merge_job(cluster, "tucker-drn-crossmerge", &t_prime, &t_dprime)?
        }
        Variant::Dri => {
            // Algorithm 9: one IMHP job + one CrossMerge job.
            let (t_prime, t_dprime) = imhp_job(cluster, "tucker-dri-imhp", &x_records, u1, u2)?;
            cross_merge_job(cluster, "tucker-dri-crossmerge", &t_prime, &t_dprime)?
        }
    };

    let entries: Vec<Entry3> = y_records
        .into_iter()
        .map(|(ix, v)| Entry3::new(ix.0, ix.1, ix.2, v))
        .collect();
    Ok(CooTensor3::from_entries([d0, q_dim, r_dim], entries)?)
}

/// Number of MapReduce jobs [`project`] submits for a given variant and
/// core sizes — the "Total Jobs" column of Table III.
pub fn expected_jobs(variant: Variant, q: usize, r: usize) -> usize {
    match variant {
        Variant::Naive => q + r,
        Variant::Dnn => q + r + 2,
        Variant::Drn => q + r + 1,
        Variant::Dri => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_mapreduce::ClusterConfig;
    use haten2_tensor::ops::ttm;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_coo(dims: [u64; 3], nnz: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..nnz)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..dims[0]),
                    rng.gen_range(0..dims[1]),
                    rng.gen_range(0..dims[2]),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    fn reference(x: &CooTensor3, mode: usize, u1: &Mat, u2: &Mat) -> CooTensor3 {
        // Sequential sparse ttm on the two non-target modes, then permute so
        // the target mode leads.
        let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
        let t = ttm(x, others[0], u1).unwrap();
        let y = ttm(&t, others[1], u2).unwrap();
        let (canon, _) = crate::canon::canonicalize(&y, mode);
        canon
    }

    fn check_variant(variant: Variant) {
        let x = random_coo([4, 5, 3], 20, 42);
        let mut rng = StdRng::seed_from_u64(7);
        for mode in 0..3 {
            let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            let u1 = Mat::random(2, x.dims()[others[0]] as usize, &mut rng);
            let u2 = Mat::random(3, x.dims()[others[1]] as usize, &mut rng);
            let cluster = Cluster::new(ClusterConfig::with_machines(4));
            let y = project(
                &cluster,
                variant,
                &x,
                mode,
                &u1,
                &u2,
                &ProjectOptions::default(),
            )
            .unwrap();
            let want = reference(&x, mode, &u1, &u2);
            assert_eq!(y.dims(), want.dims(), "{variant} mode {mode}");
            for e in want.entries() {
                assert!(
                    (y.get(e.i, e.j, e.k) - e.v).abs() < 1e-9,
                    "{variant} mode {mode}: mismatch at ({},{},{}): {} vs {}",
                    e.i,
                    e.j,
                    e.k,
                    y.get(e.i, e.j, e.k),
                    e.v
                );
            }
            assert_eq!(y.nnz(), want.nnz(), "{variant} mode {mode} support");
        }
    }

    #[test]
    fn naive_matches_reference() {
        check_variant(Variant::Naive);
    }

    #[test]
    fn dnn_matches_reference() {
        check_variant(Variant::Dnn);
    }

    #[test]
    fn drn_matches_reference() {
        check_variant(Variant::Drn);
    }

    #[test]
    fn dri_matches_reference() {
        check_variant(Variant::Dri);
    }

    #[test]
    fn job_counts_match_table3() {
        let x = random_coo([4, 4, 4], 15, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (q, r) = (2usize, 3usize);
        let u1 = Mat::random(q, 4, &mut rng);
        let u2 = Mat::random(r, 4, &mut rng);
        for variant in Variant::ALL {
            let cluster = Cluster::new(ClusterConfig::with_machines(2));
            project(
                &cluster,
                variant,
                &x,
                0,
                &u1,
                &u2,
                &ProjectOptions::default(),
            )
            .unwrap();
            assert_eq!(
                cluster.metrics().total_jobs(),
                expected_jobs(variant, q, r),
                "{variant}"
            );
        }
    }

    #[test]
    fn naive_fails_on_capacity() {
        // Broadcast cost nnz + IJK must exceed a tiny capacity budget.
        let x = random_coo([50, 50, 50], 30, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let u1 = Mat::random(2, 50, &mut rng);
        let u2 = Mat::random(2, 50, &mut rng);
        let cfg = ClusterConfig {
            cluster_capacity_bytes: Some(100_000),
            ..ClusterConfig::with_machines(4)
        };
        let cluster = Cluster::new(cfg);
        let err = project(
            &cluster,
            Variant::Naive,
            &x,
            0,
            &u1,
            &u2,
            &ProjectOptions::default(),
        )
        .unwrap_err();
        assert!(err.is_oom(), "expected o.o.m., got {err}");
        // DRI must succeed under the same budget.
        let cluster2 = Cluster::new(ClusterConfig {
            cluster_capacity_bytes: Some(100_000),
            ..ClusterConfig::with_machines(4)
        });
        project(
            &cluster2,
            Variant::Dri,
            &x,
            0,
            &u1,
            &u2,
            &ProjectOptions::default(),
        )
        .unwrap();
    }

    #[test]
    fn intermediate_data_ordering_matches_table3() {
        // For fixed inputs: DNN's max intermediate >= DRN's ~= DRI's.
        let x = random_coo([6, 6, 6], 40, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let (q, r) = (4usize, 4usize);
        let u1 = Mat::random(q, 6, &mut rng);
        let u2 = Mat::random(r, 6, &mut rng);
        let mut max_inter = std::collections::HashMap::new();
        for variant in [Variant::Dnn, Variant::Drn, Variant::Dri] {
            let cluster = Cluster::new(ClusterConfig::with_machines(2));
            project(
                &cluster,
                variant,
                &x,
                0,
                &u1,
                &u2,
                &ProjectOptions::default(),
            )
            .unwrap();
            max_inter.insert(variant, cluster.metrics().max_intermediate_records());
        }
        assert!(
            max_inter[&Variant::Dnn] > max_inter[&Variant::Drn],
            "DNN {} should exceed DRN {}",
            max_inter[&Variant::Dnn],
            max_inter[&Variant::Drn]
        );
        // DRN and DRI share the merge job as their largest.
        let drn = max_inter[&Variant::Drn] as f64;
        let dri = max_inter[&Variant::Dri] as f64;
        assert!((drn - dri).abs() / drn < 0.25, "DRN {drn} vs DRI {dri}");
    }
}
