//! HaTen2-Tucker: distributed computation of `Y ← X ×ₘ₁ U₁ ×ₘ₂ U₂`
//! (Algorithms 3, 5, 7, 9 of the paper), the bottleneck of Tucker-ALS.
//!
//! [`project`] computes, for a target mode `n`, the projection of `X` onto
//! the factor matrices of the two *other* modes: for `n = 0` this is
//! `Y = X ×₂ Bᵀ ×₃ Cᵀ ∈ ℝ^{I×Q×R}` — exactly lines 3/5/7 of Tucker-ALS
//! (Algorithm 2). The four variants trade intermediate data and job count as
//! summarized in Table III; the per-column jobs within a stage are mutually
//! independent, so each variant is submitted as one scheduled
//! [`Batch`] whose *critical path* is what bounds latency on an idle
//! cluster ([`haten2_mapreduce::JobGraph::critical_path_jobs`]):
//!
//! | Variant | Max intermediate | Jobs    | Critical path |
//! |---------|------------------|---------|---------------|
//! | Naive   | `nnz + IJK`      | `Q+R`   | `2`           |
//! | DNN     | `nnz·Q·R`        | `Q+R+2` | `4`           |
//! | DRN     | `nnz·(Q+R)`      | `Q+R+1` | `2`           |
//! | DRI     | `nnz·(Q+R)`      | `2`     | `2`           |

use crate::canon::canonicalize;
use crate::ops::{
    collapse_job, cross_merge_job, cross_merge_split_job, hadamard_vec_job, imhp_job,
    merge_parts_job, naive_ttv_job,
};
use crate::plan::{certified_rewrite_for, plan_for, Decomp};
use crate::records::{tensor_records, Ix4};
use crate::{CoreError, Result, Variant};
use haten2_linalg::Mat;
use haten2_mapreduce::{Batch, Cluster, KeyFreqSketch};
use haten2_tensor::{CooTensor3, Entry3};
use std::sync::{Arc, OnceLock};

/// Options for [`project`].
#[derive(Debug, Clone, Default)]
pub struct ProjectOptions {
    /// Use a map-side combiner in Collapse jobs (ablation; the paper's cost
    /// model assumes none).
    pub use_combiner: bool,
}

/// Compute `Y ← X ×ₘ₁ U₁ᵀ ×ₘ₂ U₂ᵀ` for the two non-target modes
/// `m₁ < m₂` of `mode`, using the given HaTen2 `variant`.
///
/// * `u1 ∈ ℝ^{Q×dims[m₁]}` and `u2 ∈ ℝ^{R×dims[m₂]}` are the transposed
///   factor matrices (`Bᵀ`, `Cᵀ` for `mode = 0`).
/// * Returns `Y` as a sparse tensor with dims `[dims[mode], Q, R]`.
///
/// ```
/// use haten2_core::{tucker, Variant};
/// use haten2_linalg::Mat;
/// use haten2_mapreduce::{Cluster, ClusterConfig};
/// use haten2_tensor::{CooTensor3, Entry3};
///
/// let x = CooTensor3::from_entries(
///     [2, 2, 2],
///     vec![Entry3::new(0, 1, 0, 3.0)],
/// )
/// .unwrap();
/// let bt = Mat::from_rows(&[vec![1.0, 2.0]]).unwrap(); // Q x J (Q = 1)
/// let ct = Mat::from_rows(&[vec![5.0, 7.0]]).unwrap(); // R x K (R = 1)
/// let cluster = Cluster::new(ClusterConfig::with_machines(2));
///
/// // Y = X x2 Bt x3 Ct: Y(0, 0, 0) = 3 * B(1, 0) * C(0, 0) = 3 * 2 * 5.
/// let y = tucker::project(
///     &cluster, Variant::Dri, &x, 0, &bt, &ct,
///     &tucker::ProjectOptions::default(),
/// )
/// .unwrap();
/// assert_eq!(y.dims(), [2, 1, 1]);
/// assert_eq!(y.get(0, 0, 0), 30.0);
/// // DRI: exactly 2 MapReduce jobs (Table III).
/// assert_eq!(cluster.metrics().total_jobs(), 2);
/// ```
pub fn project(
    cluster: &Cluster,
    variant: Variant,
    x: &CooTensor3,
    mode: usize,
    u1: &Mat,
    u2: &Mat,
    opts: &ProjectOptions,
) -> Result<CooTensor3> {
    if mode > 2 {
        return Err(CoreError::InvalidArgument(format!(
            "mode {mode} out of range"
        )));
    }
    let (xc, perm) = canonicalize(x, mode);
    let d = xc.dims();
    let (d0, d1, d2) = (d[0], d[1], d[2]);
    if u1.cols() != d1 as usize || u2.cols() != d2 as usize {
        return Err(CoreError::InvalidArgument(format!(
            "project: factors are {}x{} and {}x{} for canonical dims {d:?} (perm {perm:?})",
            u1.rows(),
            u1.cols(),
            u2.rows(),
            u2.cols()
        )));
    }
    let q_dim = u1.rows() as u64;
    let r_dim = u2.rows() as u64;
    let x_records = tensor_records(&xc);
    let graph = plan_for(Decomp::Tucker, variant);

    // Skew-aware runtime rewrite: one O(nnz) map-side pass sketches the
    // frequency of the final merge's reduce keys (the canonical
    // target-mode indices) per hash slice; when the cluster's
    // [`haten2_mapreduce::RewritePolicy`] fires, the analyzer-certified
    // `heavy-key-split` plan is submitted instead — bit-identical outputs,
    // but the straggling merge becomes `machines` concurrent split jobs.
    // Pipelines without a certification record (Naive/DNN) never rewrite.
    let mut sketch = KeyFreqSketch::new(cluster.config().machines.max(1));
    for (ix, _) in &x_records {
        sketch.observe(&ix.0);
    }
    let rewritten = cluster
        .config()
        .rewrite
        .should_rewrite(&sketch)
        .then(|| certified_rewrite_for(&graph, "heavy-key-split"))
        .flatten();
    let rewrite = rewritten.is_some();
    let graph = rewritten.unwrap_or(graph);

    let y_records: Vec<(Ix4, f64)> = match variant {
        Variant::Naive => {
            // Algorithm 3: Q broadcast products with B's rows (mutually
            // independent per-column jobs), then R with C's, each reading
            // the merged T — one batch, critical path 2.
            let dims4 = [d0, d1, d2, 1];
            let t_dims = [d0, q_dim, d2, 1];
            let mut batch = Batch::with_graph(&graph);
            let mut parts = Vec::with_capacity(u1.rows());
            for q in 0..u1.rows() {
                let name = format!("tucker-naive-xv-b{q}");
                let x_records = &x_records;
                let row = u1.row(q);
                parts.push(batch.submit(
                    name.clone(),
                    vec!["x".into()],
                    vec![format!("t#{q}")],
                    move |ctx| naive_ttv_job(ctx, &name, x_records, dims4, 1, row),
                )?);
            }
            // Whichever tv job runs first stacks the Q results along slot 1;
            // the others reuse the memoized merge.
            let merged_t: Arc<OnceLock<Vec<(Ix4, f64)>>> = Arc::new(OnceLock::new());
            let mut ys = Vec::with_capacity(u2.rows());
            for r in 0..u2.rows() {
                let name = format!("tucker-naive-tv-c{r}");
                let row = u2.row(r);
                let parts = parts.clone();
                let merged_t = Arc::clone(&merged_t);
                ys.push(batch.submit(
                    name.clone(),
                    vec!["t".into()],
                    vec![format!("y#{r}")],
                    move |ctx| {
                        let mut stacked = Vec::with_capacity(parts.len());
                        for h in &parts {
                            stacked.push(ctx.get(h)?);
                        }
                        let t = merged_t.get_or_init(|| {
                            let mut t_records: Vec<(Ix4, f64)> = Vec::new();
                            for (q, out) in stacked.iter().enumerate() {
                                t_records.extend(
                                    out.iter().map(|&(ix, v)| ((ix.0, q as u64, ix.2, 0), v)),
                                );
                            }
                            t_records
                        });
                        naive_ttv_job(ctx, &name, t, t_dims, 2, row)
                    },
                )?);
            }
            batch.run(cluster)?;
            let mut y = Vec::new();
            for (r, h) in ys.into_iter().enumerate() {
                y.extend(
                    h.take()?
                        .into_iter()
                        .map(|(ix, v)| ((ix.0, ix.1, r as u64, 0), v)),
                );
            }
            y
        }
        Variant::Dnn => {
            // Algorithm 5: Hadamard per column, Collapse, repeat, Collapse —
            // one batch, critical path 4.
            let use_combiner = opts.use_combiner;
            let mut batch = Batch::with_graph(&graph);
            let mut hb = Vec::with_capacity(u1.rows());
            for q in 0..u1.rows() {
                let name = format!("tucker-dnn-had-b{q}");
                let x_records = &x_records;
                let row = u1.row(q);
                hb.push(batch.submit(
                    name.clone(),
                    vec!["x".into()],
                    vec![format!("t_prime#{q}")],
                    move |ctx| hadamard_vec_job(ctx, &name, x_records, 1, row, Some(q as u64)),
                )?);
            }
            let t = batch.submit(
                "tucker-dnn-collapse-j",
                vec!["t_prime".into()],
                vec!["t".into()],
                {
                    let hb = hb.clone();
                    move |ctx| {
                        let mut t_prime: Vec<(Ix4, f64)> = Vec::new();
                        for h in &hb {
                            t_prime.extend(ctx.get(h)?.iter().copied());
                        }
                        let t =
                            collapse_job(ctx, "tucker-dnn-collapse-j", &t_prime, 1, use_combiner)?;
                        // T(x0, 0, k, q): move q into slot 1 so slot 3 is
                        // free for r.
                        Ok(t.into_iter()
                            .map(|(ix, v)| ((ix.0, ix.3, ix.2, 0), v))
                            .collect::<Vec<(Ix4, f64)>>())
                    }
                },
            )?;
            let mut hc = Vec::with_capacity(u2.rows());
            for r in 0..u2.rows() {
                let name = format!("tucker-dnn-had-c{r}");
                let row = u2.row(r);
                let t = t.clone();
                hc.push(batch.submit(
                    name.clone(),
                    vec!["t".into()],
                    vec![format!("y_prime#{r}")],
                    move |ctx| hadamard_vec_job(ctx, &name, ctx.get(&t)?, 2, row, Some(r as u64)),
                )?);
            }
            let y = batch.submit(
                "tucker-dnn-collapse-k",
                vec!["y_prime".into()],
                vec!["y".into()],
                {
                    let hc = hc.clone();
                    move |ctx| {
                        let mut y_prime: Vec<(Ix4, f64)> = Vec::new();
                        for h in &hc {
                            y_prime.extend(ctx.get(h)?.iter().copied());
                        }
                        collapse_job(ctx, "tucker-dnn-collapse-k", &y_prime, 2, use_combiner)
                    }
                },
            )?;
            batch.run(cluster)?;
            // Y(x0, q, 0, r) -> (x0, q, r, 0)
            y.take()?
                .into_iter()
                .map(|(ix, v)| ((ix.0, ix.1, ix.3, 0), v))
                .collect()
        }
        Variant::Drn => {
            // Algorithm 7: independent Hadamard expansions, then CrossMerge —
            // one batch, critical path 2.
            let bin_records = tensor_records(&xc.bin());
            let mut batch = Batch::with_graph(&graph);
            let mut tp = Vec::with_capacity(u1.rows());
            for q in 0..u1.rows() {
                let name = format!("tucker-drn-had-b{q}");
                let x_records = &x_records;
                let row = u1.row(q);
                tp.push(batch.submit(
                    name.clone(),
                    vec!["x".into()],
                    vec![format!("t_prime#{q}")],
                    move |ctx| hadamard_vec_job(ctx, &name, x_records, 1, row, Some(q as u64)),
                )?);
            }
            let mut tdp = Vec::with_capacity(u2.rows());
            for r in 0..u2.rows() {
                let name = format!("tucker-drn-had-c{r}");
                let bin_records = &bin_records;
                let row = u2.row(r);
                tdp.push(batch.submit(
                    name.clone(),
                    vec!["x_bin".into()],
                    vec![format!("t_dprime#{r}")],
                    move |ctx| hadamard_vec_job(ctx, &name, bin_records, 2, row, Some(r as u64)),
                )?);
            }
            let y = if rewrite {
                // Two-phase aggregation: M per-slice splits of the
                // crossmerge (each cost-hinted with its slice's sketched
                // record count for LPT dispatch), then mergeparts.
                let m = sketch.width();
                let mut split_parts = Vec::with_capacity(m);
                for s in 0..m {
                    let name = format!("tucker-drn-crossmerge-split{s}");
                    let tp = tp.clone();
                    let tdp = tdp.clone();
                    let split_h = batch.submit(
                        name.clone(),
                        vec!["t_prime".into(), "t_dprime".into()],
                        vec![format!("y__part#{s}")],
                        move |ctx| {
                            let mut t_prime: Vec<(Ix4, f64)> = Vec::new();
                            for h in &tp {
                                t_prime.extend(ctx.get(h)?.iter().copied());
                            }
                            let mut t_dprime: Vec<(Ix4, f64)> = Vec::new();
                            for h in &tdp {
                                t_dprime.extend(ctx.get(h)?.iter().copied());
                            }
                            cross_merge_split_job(ctx, &name, &t_prime, &t_dprime, s, m)
                        },
                    )?;
                    batch.set_cost_hint(&split_h, sketch.bucket(s) as f64);
                    split_parts.push(split_h);
                }
                batch.submit(
                    "tucker-drn-crossmerge-mergeparts",
                    vec!["y__part".into()],
                    vec!["y".into()],
                    {
                        let split_parts = split_parts.clone();
                        move |ctx| {
                            let mut all: Vec<(Ix4, f64)> = Vec::new();
                            for ph in &split_parts {
                                all.extend(ctx.get(ph)?.iter().copied());
                            }
                            merge_parts_job(ctx, "tucker-drn-crossmerge-mergeparts", &all)
                        }
                    },
                )?
            } else {
                batch.submit(
                    "tucker-drn-crossmerge",
                    vec!["t_prime".into(), "t_dprime".into()],
                    vec!["y".into()],
                    {
                        let tp = tp.clone();
                        let tdp = tdp.clone();
                        move |ctx| {
                            let mut t_prime: Vec<(Ix4, f64)> = Vec::new();
                            for h in &tp {
                                t_prime.extend(ctx.get(h)?.iter().copied());
                            }
                            let mut t_dprime: Vec<(Ix4, f64)> = Vec::new();
                            for h in &tdp {
                                t_dprime.extend(ctx.get(h)?.iter().copied());
                            }
                            cross_merge_job(ctx, "tucker-drn-crossmerge", &t_prime, &t_dprime)
                        }
                    },
                )?
            };
            batch.run(cluster)?;
            y.take()?
        }
        Variant::Dri => {
            // Algorithm 9: one IMHP job + one CrossMerge job.
            let mut batch = Batch::with_graph(&graph);
            let imhp = batch.submit(
                "tucker-dri-imhp",
                vec!["x".into()],
                vec!["t_prime".into(), "t_dprime".into()],
                {
                    let x_records = &x_records;
                    move |ctx| imhp_job(ctx, "tucker-dri-imhp", x_records, u1, u2)
                },
            )?;
            let y = if rewrite {
                let m = sketch.width();
                let mut split_parts = Vec::with_capacity(m);
                for s in 0..m {
                    let name = format!("tucker-dri-crossmerge-split{s}");
                    let imhp = imhp.clone();
                    let split_h = batch.submit(
                        name.clone(),
                        vec!["t_prime".into(), "t_dprime".into()],
                        vec![format!("y__part#{s}")],
                        move |ctx| {
                            let (t_prime, t_dprime) = ctx.get(&imhp)?;
                            cross_merge_split_job(ctx, &name, t_prime, t_dprime, s, m)
                        },
                    )?;
                    batch.set_cost_hint(&split_h, sketch.bucket(s) as f64);
                    split_parts.push(split_h);
                }
                batch.submit(
                    "tucker-dri-crossmerge-mergeparts",
                    vec!["y__part".into()],
                    vec!["y".into()],
                    {
                        let split_parts = split_parts.clone();
                        move |ctx| {
                            let mut all: Vec<(Ix4, f64)> = Vec::new();
                            for ph in &split_parts {
                                all.extend(ctx.get(ph)?.iter().copied());
                            }
                            merge_parts_job(ctx, "tucker-dri-crossmerge-mergeparts", &all)
                        }
                    },
                )?
            } else {
                batch.submit(
                    "tucker-dri-crossmerge",
                    vec!["t_prime".into(), "t_dprime".into()],
                    vec!["y".into()],
                    {
                        let imhp = imhp.clone();
                        move |ctx| {
                            let (t_prime, t_dprime) = ctx.get(&imhp)?;
                            cross_merge_job(ctx, "tucker-dri-crossmerge", t_prime, t_dprime)
                        }
                    },
                )?
            };
            batch.run(cluster)?;
            y.take()?
        }
    };

    let entries: Vec<Entry3> = y_records
        .into_iter()
        .map(|(ix, v)| Entry3::new(ix.0, ix.1, ix.2, v))
        .collect();
    Ok(CooTensor3::from_entries([d0, q_dim, r_dim], entries)?)
}

/// Number of MapReduce jobs [`project`] submits for a given variant and
/// core sizes — the "Total Jobs" column of Table III.
pub fn expected_jobs(variant: Variant, q: usize, r: usize) -> usize {
    match variant {
        Variant::Naive => q + r,
        Variant::Dnn => q + r + 2,
        Variant::Drn => q + r + 1,
        Variant::Dri => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_mapreduce::ClusterConfig;
    use haten2_tensor::ops::ttm;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_coo(dims: [u64; 3], nnz: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..nnz)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..dims[0]),
                    rng.gen_range(0..dims[1]),
                    rng.gen_range(0..dims[2]),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    fn reference(x: &CooTensor3, mode: usize, u1: &Mat, u2: &Mat) -> CooTensor3 {
        // Sequential sparse ttm on the two non-target modes, then permute so
        // the target mode leads.
        let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
        let t = ttm(x, others[0], u1).unwrap();
        let y = ttm(&t, others[1], u2).unwrap();
        let (canon, _) = crate::canon::canonicalize(&y, mode);
        canon
    }

    fn check_variant(variant: Variant) {
        let x = random_coo([4, 5, 3], 20, 42);
        let mut rng = StdRng::seed_from_u64(7);
        for mode in 0..3 {
            let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            let u1 = Mat::random(2, x.dims()[others[0]] as usize, &mut rng);
            let u2 = Mat::random(3, x.dims()[others[1]] as usize, &mut rng);
            let cluster = Cluster::new(ClusterConfig::with_machines(4));
            let y = project(
                &cluster,
                variant,
                &x,
                mode,
                &u1,
                &u2,
                &ProjectOptions::default(),
            )
            .unwrap();
            let want = reference(&x, mode, &u1, &u2);
            assert_eq!(y.dims(), want.dims(), "{variant} mode {mode}");
            for e in want.entries() {
                assert!(
                    (y.get(e.i, e.j, e.k) - e.v).abs() < 1e-9,
                    "{variant} mode {mode}: mismatch at ({},{},{}): {} vs {}",
                    e.i,
                    e.j,
                    e.k,
                    y.get(e.i, e.j, e.k),
                    e.v
                );
            }
            assert_eq!(y.nnz(), want.nnz(), "{variant} mode {mode} support");
        }
    }

    #[test]
    fn naive_matches_reference() {
        check_variant(Variant::Naive);
    }

    #[test]
    fn dnn_matches_reference() {
        check_variant(Variant::Dnn);
    }

    #[test]
    fn drn_matches_reference() {
        check_variant(Variant::Drn);
    }

    #[test]
    fn dri_matches_reference() {
        check_variant(Variant::Dri);
    }

    #[test]
    fn job_counts_match_table3() {
        let x = random_coo([4, 4, 4], 15, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (q, r) = (2usize, 3usize);
        let u1 = Mat::random(q, 4, &mut rng);
        let u2 = Mat::random(r, 4, &mut rng);
        for variant in Variant::ALL {
            let cluster = Cluster::new(ClusterConfig::with_machines(2));
            project(
                &cluster,
                variant,
                &x,
                0,
                &u1,
                &u2,
                &ProjectOptions::default(),
            )
            .unwrap();
            assert_eq!(
                cluster.metrics().total_jobs(),
                expected_jobs(variant, q, r),
                "{variant}"
            );
        }
    }

    #[test]
    fn rewritten_plan_is_bit_identical_to_unrewritten() {
        use haten2_mapreduce::{RewritePolicy, SchedulerMode};
        let x = random_coo([8, 5, 4], 60, 77);
        let mut rng = StdRng::seed_from_u64(78);
        let u1 = Mat::random(2, 5, &mut rng);
        let u2 = Mat::random(3, 4, &mut rng);
        for variant in [Variant::Drn, Variant::Dri] {
            let mut outs: Vec<Vec<(u64, u64, u64, u64)>> = Vec::new();
            for (policy, sched) in [
                (RewritePolicy::Off, SchedulerMode::Sequential),
                (RewritePolicy::Always, SchedulerMode::Sequential),
                (RewritePolicy::Always, SchedulerMode::Dag),
            ] {
                let mut cfg = ClusterConfig::with_machines(4);
                cfg.rewrite = policy;
                cfg.scheduler = sched;
                let cluster = Cluster::new(cfg);
                let y = project(
                    &cluster,
                    variant,
                    &x,
                    0,
                    &u1,
                    &u2,
                    &ProjectOptions::default(),
                )
                .unwrap();
                outs.push(
                    y.entries()
                        .iter()
                        .map(|e| (e.i, e.j, e.k, e.v.to_bits()))
                        .collect(),
                );
            }
            assert_eq!(outs[0], outs[1], "{variant}: rewrite broke bit-identity");
            assert_eq!(
                outs[0], outs[2],
                "{variant}: DAG rewrite broke bit-identity"
            );
        }
    }

    #[test]
    fn naive_fails_on_capacity() {
        // Broadcast cost nnz + IJK must exceed a tiny capacity budget.
        let x = random_coo([50, 50, 50], 30, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let u1 = Mat::random(2, 50, &mut rng);
        let u2 = Mat::random(2, 50, &mut rng);
        let cfg = ClusterConfig {
            cluster_capacity_bytes: Some(100_000),
            ..ClusterConfig::with_machines(4)
        };
        let cluster = Cluster::new(cfg);
        let err = project(
            &cluster,
            Variant::Naive,
            &x,
            0,
            &u1,
            &u2,
            &ProjectOptions::default(),
        )
        .unwrap_err();
        assert!(err.is_oom(), "expected o.o.m., got {err}");
        // DRI must succeed under the same budget.
        let cluster2 = Cluster::new(ClusterConfig {
            cluster_capacity_bytes: Some(100_000),
            ..ClusterConfig::with_machines(4)
        });
        project(
            &cluster2,
            Variant::Dri,
            &x,
            0,
            &u1,
            &u2,
            &ProjectOptions::default(),
        )
        .unwrap();
    }

    #[test]
    fn intermediate_data_ordering_matches_table3() {
        // For fixed inputs: DNN's max intermediate >= DRN's ~= DRI's.
        let x = random_coo([6, 6, 6], 40, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let (q, r) = (4usize, 4usize);
        let u1 = Mat::random(q, 6, &mut rng);
        let u2 = Mat::random(r, 6, &mut rng);
        let mut max_inter = std::collections::HashMap::new();
        for variant in [Variant::Dnn, Variant::Drn, Variant::Dri] {
            let cluster = Cluster::new(ClusterConfig::with_machines(2));
            project(
                &cluster,
                variant,
                &x,
                0,
                &u1,
                &u2,
                &ProjectOptions::default(),
            )
            .unwrap();
            max_inter.insert(variant, cluster.metrics().max_intermediate_records());
        }
        assert!(
            max_inter[&Variant::Dnn] > max_inter[&Variant::Drn],
            "DNN {} should exceed DRN {}",
            max_inter[&Variant::Dnn],
            max_inter[&Variant::Drn]
        );
        // DRN and DRI share the merge job as their largest.
        let drn = max_inter[&Variant::Drn] as f64;
        let dri = max_inter[&Variant::Dri] as f64;
        assert!((drn - dri).abs() / drn < 0.25, "DRN {drn} vs DRI {dri}");
    }
}
