//! Mode canonicalization.
//!
//! Both [`crate::tucker::project`] and [`crate::parafac::mttkrp`] are
//! defined for an arbitrary target mode, but the distributed kernels are
//! written once for the canonical orientation: the target mode first, then
//! the remaining two modes in ascending original order. `canonicalize`
//! permutes a tensor into that orientation; the kernel outputs
//! (`Y(x₀, q, r)` / `M(x₀, r)`) are already in caller coordinates because
//! slot 0 *is* the target mode.

use haten2_tensor::{CooTensor3, Entry3};

/// Permute `t` so that `target` becomes mode 0 and the other two modes
/// follow in ascending original order. Returns the permuted tensor and the
/// permutation `perm` (canonical position → original mode).
pub fn canonicalize(t: &CooTensor3, target: usize) -> (CooTensor3, [usize; 3]) {
    assert!(target < 3, "target mode must be 0, 1 or 2");
    let others: Vec<usize> = (0..3).filter(|&m| m != target).collect();
    let perm = [target, others[0], others[1]];
    if perm == [0, 1, 2] {
        return (t.clone(), perm);
    }
    let d = t.dims();
    let dims = [d[perm[0]], d[perm[1]], d[perm[2]]];
    let entries: Vec<Entry3> = t
        .entries()
        .iter()
        .map(|e| Entry3::new(e.index(perm[0]), e.index(perm[1]), e.index(perm[2]), e.v))
        .collect();
    let canon = CooTensor3::from_entries(dims, entries).expect("permutation preserves bounds");
    (canon, perm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor3 {
        CooTensor3::from_entries(
            [2, 3, 4],
            vec![Entry3::new(1, 2, 3, 5.0), Entry3::new(0, 1, 0, -1.0)],
        )
        .unwrap()
    }

    #[test]
    fn target_zero_is_identity() {
        let t = sample();
        let (c, perm) = canonicalize(&t, 0);
        assert_eq!(perm, [0, 1, 2]);
        assert_eq!(c, t);
    }

    #[test]
    fn target_one_swaps() {
        let t = sample();
        let (c, perm) = canonicalize(&t, 1);
        assert_eq!(perm, [1, 0, 2]);
        assert_eq!(c.dims(), [3, 2, 4]);
        assert_eq!(c.get(2, 1, 3), 5.0);
        assert_eq!(c.get(1, 0, 0), -1.0);
    }

    #[test]
    fn target_two_rotates() {
        let t = sample();
        let (c, perm) = canonicalize(&t, 2);
        assert_eq!(perm, [2, 0, 1]);
        assert_eq!(c.dims(), [4, 2, 3]);
        assert_eq!(c.get(3, 1, 2), 5.0);
    }

    #[test]
    fn norm_preserved() {
        let t = sample();
        for m in 0..3 {
            let (c, _) = canonicalize(&t, m);
            assert!((c.fro_norm() - t.fro_norm()).abs() < 1e-12);
            assert_eq!(c.nnz(), t.nnz());
        }
    }
}
