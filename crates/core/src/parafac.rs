//! HaTen2-PARAFAC: distributed MTTKRP `Y ← X₍ₙ₎ (⊙ of the other factors)`
//! (Algorithms 4, 6, 8, 10 of the paper), the bottleneck of PARAFAC-ALS.
//!
//! For target mode 0 this is `Y = X₍₁₎ (C ⊙ B) ∈ ℝ^{I×R}` — lines 3/5/7 of
//! PARAFAC-ALS (Algorithm 1). Costs per variant (Table IV); the per-rank
//! chains are mutually independent, so each variant is submitted as one
//! scheduled [`Batch`] whose *critical path* bounds latency on an idle
//! cluster ([`haten2_mapreduce::JobGraph::critical_path_jobs`]):
//!
//! | Variant | Max intermediate | Jobs   | Critical path |
//! |---------|------------------|--------|---------------|
//! | Naive   | `nnz + IJK`      | `2R`   | `2`           |
//! | DNN     | `nnz + J`        | `4R`   | `4`           |
//! | DRN     | `2·nnz·R`        | `2R+1` | `2`           |
//! | DRI     | `2·nnz·R`        | `2`    | `2`           |

use crate::canon::canonicalize;
use crate::ops::{
    collapse_job, hadamard_vec_job, imhp_job, merge_parts_job, naive_ttv_job, pairwise_merge_job,
    pairwise_merge_split_job,
};
use crate::plan::{certified_rewrite_for, plan_for, Decomp};
use crate::records::{tensor_records, Ix4};
use crate::{CoreError, Result, Variant};
use haten2_linalg::Mat;
use haten2_mapreduce::{Batch, Cluster, KeyFreqSketch};
use haten2_tensor::CooTensor3;

/// Compute the MTTKRP `M ← X₍ₙ₎ (F₂ ⊙ F₁)` for target mode `n` using the
/// given HaTen2 `variant`.
///
/// `f1 ∈ ℝ^{dims[m₁]×R}` and `f2 ∈ ℝ^{dims[m₂]×R}` are the factor matrices
/// of the two non-target modes `m₁ < m₂` (for `n = 0`: `B` and `C`).
/// Returns `M ∈ ℝ^{dims[n]×R}` dense.
///
/// ```
/// use haten2_core::{parafac, Variant};
/// use haten2_linalg::Mat;
/// use haten2_mapreduce::{Cluster, ClusterConfig};
/// use haten2_tensor::{CooTensor3, Entry3};
///
/// let x = CooTensor3::from_entries(
///     [2, 2, 2],
///     vec![Entry3::new(0, 1, 0, 3.0), Entry3::new(1, 0, 1, 2.0)],
/// )
/// .unwrap();
/// let b = Mat::from_rows(&[vec![1.0], vec![2.0]]).unwrap(); // J x R
/// let c = Mat::from_rows(&[vec![5.0], vec![7.0]]).unwrap(); // K x R
/// let cluster = Cluster::new(ClusterConfig::with_machines(2));
///
/// // M(i, r) = sum_{j,k} X(i,j,k) B(j,r) C(k,r)
/// let m = parafac::mttkrp(&cluster, Variant::Dri, &x, 0, &b, &c).unwrap();
/// assert_eq!(m.get(0, 0), 3.0 * 2.0 * 5.0);
/// assert_eq!(m.get(1, 0), 2.0 * 1.0 * 7.0);
/// // DRI: exactly 2 MapReduce jobs (Table IV).
/// assert_eq!(cluster.metrics().total_jobs(), 2);
/// ```
pub fn mttkrp(
    cluster: &Cluster,
    variant: Variant,
    x: &CooTensor3,
    mode: usize,
    f1: &Mat,
    f2: &Mat,
) -> Result<Mat> {
    if mode > 2 {
        return Err(CoreError::InvalidArgument(format!(
            "mode {mode} out of range"
        )));
    }
    if f1.cols() != f2.cols() {
        return Err(CoreError::InvalidArgument(format!(
            "mttkrp: rank mismatch {} vs {}",
            f1.cols(),
            f2.cols()
        )));
    }
    let (xc, _perm) = canonicalize(x, mode);
    let d = xc.dims();
    let (d0, d1, d2) = (d[0], d[1], d[2]);
    if f1.rows() != d1 as usize || f2.rows() != d2 as usize {
        return Err(CoreError::InvalidArgument(format!(
            "mttkrp: factors are {}x{} and {}x{} for canonical dims {d:?}",
            f1.rows(),
            f1.cols(),
            f2.rows(),
            f2.cols()
        )));
    }
    let r_dim = f1.cols();
    let x_records = tensor_records(&xc);
    let mut m = Mat::zeros(d0 as usize, r_dim);
    let graph = plan_for(Decomp::Parafac, variant);

    // Skew-aware runtime rewrite — see [`crate::tucker::project`]: sketch
    // the final merge's reduce-key frequencies, and when the cluster's
    // rewrite policy fires, submit the analyzer-certified
    // `heavy-key-split` plan (bit-identical outputs, concurrent splits
    // instead of one straggling merge). Naive/DNN have no certification
    // record and never rewrite.
    let mut sketch = KeyFreqSketch::new(cluster.config().machines.max(1));
    for (ix, _) in &x_records {
        sketch.observe(&ix.0);
    }
    let rewritten = cluster
        .config()
        .rewrite
        .should_rewrite(&sketch)
        .then(|| certified_rewrite_for(&graph, "heavy-key-split"))
        .flatten();
    let rewrite = rewritten.is_some();
    let graph = rewritten.unwrap_or(graph);

    match variant {
        Variant::Naive => {
            // Algorithm 4: T_r = X ×̄₂ b_r, then Y_r = T_r ×̄₃ c_r. The R
            // two-job chains are mutually independent — one batch,
            // critical path 2. Submission stays interleaved per rank (the
            // sequential execution order, which keys the fault schedule).
            let dims4 = [d0, d1, d2, 1];
            let mut batch = Batch::with_graph(&graph);
            let mut ys = Vec::with_capacity(r_dim);
            for r in 0..r_dim {
                let b_col = f1.col(r);
                let c_col = f2.col(r);
                let name_x = format!("parafac-naive-xb{r}");
                let t_r =
                    batch.submit(name_x.clone(), vec!["x".into()], vec![format!("t#{r}")], {
                        let x_records = &x_records;
                        move |ctx| naive_ttv_job(ctx, &name_x, x_records, dims4, 1, &b_col)
                    })?;
                let name_t = format!("parafac-naive-tc{r}");
                ys.push(batch.submit(
                    name_t.clone(),
                    vec![format!("t#{r}")],
                    vec![format!("y#{r}")],
                    move |ctx| {
                        naive_ttv_job(ctx, &name_t, ctx.get(&t_r)?, [d0, 1, d2, 1], 2, &c_col)
                    },
                )?);
            }
            batch.run(cluster)?;
            for (r, h) in ys.into_iter().enumerate() {
                accumulate_column(&mut m, &h.take()?, r);
            }
        }
        Variant::Dnn => {
            // Algorithm 6: per rank, Hadamard + Collapse twice — R
            // independent four-job chains, critical path 4.
            let mut batch = Batch::with_graph(&graph);
            let mut ys = Vec::with_capacity(r_dim);
            for r in 0..r_dim {
                let b_col = f1.col(r);
                let c_col = f2.col(r);
                let name_hb = format!("parafac-dnn-had-b{r}");
                let h1 = batch.submit(
                    name_hb.clone(),
                    vec!["x".into()],
                    vec![format!("h_b#{r}")],
                    {
                        let x_records = &x_records;
                        move |ctx| hadamard_vec_job(ctx, &name_hb, x_records, 1, &b_col, None)
                    },
                )?;
                let name_cj = format!("parafac-dnn-col-j{r}");
                let t_r = batch.submit(
                    name_cj.clone(),
                    vec![format!("h_b#{r}")],
                    vec![format!("t#{r}")],
                    move |ctx| collapse_job(ctx, &name_cj, ctx.get(&h1)?, 1, false),
                )?;
                let name_hc = format!("parafac-dnn-had-c{r}");
                let h2 = batch.submit(
                    name_hc.clone(),
                    vec![format!("t#{r}")],
                    vec![format!("h_c#{r}")],
                    move |ctx| hadamard_vec_job(ctx, &name_hc, ctx.get(&t_r)?, 2, &c_col, None),
                )?;
                let name_ck = format!("parafac-dnn-col-k{r}");
                ys.push(batch.submit(
                    name_ck.clone(),
                    vec![format!("h_c#{r}")],
                    vec![format!("y#{r}")],
                    move |ctx| collapse_job(ctx, &name_ck, ctx.get(&h2)?, 2, false),
                )?);
            }
            batch.run(cluster)?;
            for (r, h) in ys.into_iter().enumerate() {
                accumulate_column(&mut m, &h.take()?, r);
            }
        }
        Variant::Drn => {
            // Algorithm 8: R Hadamard expansions per side (all independent),
            // one PairwiseMerge — critical path 2.
            let bin_records = tensor_records(&xc.bin());
            let mut batch = Batch::with_graph(&graph);
            let mut tp = Vec::with_capacity(r_dim);
            for r in 0..r_dim {
                let name = format!("parafac-drn-had-b{r}");
                let b_col = f1.col(r);
                tp.push(batch.submit(
                    name.clone(),
                    vec!["x".into()],
                    vec![format!("t_prime#{r}")],
                    {
                        let x_records = &x_records;
                        move |ctx| {
                            hadamard_vec_job(ctx, &name, x_records, 1, &b_col, Some(r as u64))
                        }
                    },
                )?);
            }
            let mut tdp = Vec::with_capacity(r_dim);
            for r in 0..r_dim {
                let name = format!("parafac-drn-had-c{r}");
                let c_col = f2.col(r);
                tdp.push(batch.submit(
                    name.clone(),
                    vec!["x_bin".into()],
                    vec![format!("t_dprime#{r}")],
                    {
                        let bin_records = &bin_records;
                        move |ctx| {
                            hadamard_vec_job(ctx, &name, bin_records, 2, &c_col, Some(r as u64))
                        }
                    },
                )?);
            }
            let y = if rewrite {
                // Two-phase aggregation: per-slice splits cost-hinted with
                // the sketch's slice counts, then mergeparts.
                let msl = sketch.width();
                let mut split_parts = Vec::with_capacity(msl);
                for s in 0..msl {
                    let name = format!("parafac-drn-pairwisemerge-split{s}");
                    let tp = tp.clone();
                    let tdp = tdp.clone();
                    let split_h = batch.submit(
                        name.clone(),
                        vec!["t_prime".into(), "t_dprime".into()],
                        vec![format!("y__part#{s}")],
                        move |ctx| {
                            let mut t_prime: Vec<(Ix4, f64)> = Vec::new();
                            for h in &tp {
                                t_prime.extend(ctx.get(h)?.iter().copied());
                            }
                            let mut t_dprime: Vec<(Ix4, f64)> = Vec::new();
                            for h in &tdp {
                                t_dprime.extend(ctx.get(h)?.iter().copied());
                            }
                            pairwise_merge_split_job(ctx, &name, &t_prime, &t_dprime, s, msl)
                        },
                    )?;
                    batch.set_cost_hint(&split_h, sketch.bucket(s) as f64);
                    split_parts.push(split_h);
                }
                batch.submit(
                    "parafac-drn-pairwisemerge-mergeparts",
                    vec!["y__part".into()],
                    vec!["y".into()],
                    {
                        let split_parts = split_parts.clone();
                        move |ctx| {
                            let mut all: Vec<(Ix4, f64)> = Vec::new();
                            for ph in &split_parts {
                                all.extend(ctx.get(ph)?.iter().copied());
                            }
                            merge_parts_job(ctx, "parafac-drn-pairwisemerge-mergeparts", &all)
                        }
                    },
                )?
            } else {
                batch.submit(
                    "parafac-drn-pairwisemerge",
                    vec!["t_prime".into(), "t_dprime".into()],
                    vec!["y".into()],
                    {
                        let tp = tp.clone();
                        let tdp = tdp.clone();
                        move |ctx| {
                            let mut t_prime: Vec<(Ix4, f64)> = Vec::new();
                            for h in &tp {
                                t_prime.extend(ctx.get(h)?.iter().copied());
                            }
                            let mut t_dprime: Vec<(Ix4, f64)> = Vec::new();
                            for h in &tdp {
                                t_dprime.extend(ctx.get(h)?.iter().copied());
                            }
                            pairwise_merge_job(
                                ctx,
                                "parafac-drn-pairwisemerge",
                                &t_prime,
                                &t_dprime,
                            )
                        }
                    },
                )?
            };
            batch.run(cluster)?;
            accumulate_pairs(&mut m, &y.take()?);
        }
        Variant::Dri => {
            // Algorithm 10: IMHP + PairwiseMerge (Q = R in PARAFAC).
            let bt = f1.transpose();
            let ct = f2.transpose();
            let mut batch = Batch::with_graph(&graph);
            let imhp = batch.submit(
                "parafac-dri-imhp",
                vec!["x".into()],
                vec!["t_prime".into(), "t_dprime".into()],
                {
                    let x_records = &x_records;
                    let bt = &bt;
                    let ct = &ct;
                    move |ctx| imhp_job(ctx, "parafac-dri-imhp", x_records, bt, ct)
                },
            )?;
            let y = if rewrite {
                let msl = sketch.width();
                let mut split_parts = Vec::with_capacity(msl);
                for s in 0..msl {
                    let name = format!("parafac-dri-pairwisemerge-split{s}");
                    let imhp = imhp.clone();
                    let split_h = batch.submit(
                        name.clone(),
                        vec!["t_prime".into(), "t_dprime".into()],
                        vec![format!("y__part#{s}")],
                        move |ctx| {
                            let (t_prime, t_dprime) = ctx.get(&imhp)?;
                            pairwise_merge_split_job(ctx, &name, t_prime, t_dprime, s, msl)
                        },
                    )?;
                    batch.set_cost_hint(&split_h, sketch.bucket(s) as f64);
                    split_parts.push(split_h);
                }
                batch.submit(
                    "parafac-dri-pairwisemerge-mergeparts",
                    vec!["y__part".into()],
                    vec!["y".into()],
                    {
                        let split_parts = split_parts.clone();
                        move |ctx| {
                            let mut all: Vec<(Ix4, f64)> = Vec::new();
                            for ph in &split_parts {
                                all.extend(ctx.get(ph)?.iter().copied());
                            }
                            merge_parts_job(ctx, "parafac-dri-pairwisemerge-mergeparts", &all)
                        }
                    },
                )?
            } else {
                batch.submit(
                    "parafac-dri-pairwisemerge",
                    vec!["t_prime".into(), "t_dprime".into()],
                    vec!["y".into()],
                    {
                        let imhp = imhp.clone();
                        move |ctx| {
                            let (t_prime, t_dprime) = ctx.get(&imhp)?;
                            pairwise_merge_job(ctx, "parafac-dri-pairwisemerge", t_prime, t_dprime)
                        }
                    },
                )?
            };
            batch.run(cluster)?;
            accumulate_pairs(&mut m, &y.take()?);
        }
    }
    Ok(m)
}

/// Scatter records `((x0, 0, 0, 0), v)` into column `r` of `m`.
fn accumulate_column(m: &mut Mat, records: &[(Ix4, f64)], r: usize) {
    for &(ix, v) in records {
        m.add_at(ix.0 as usize, r, v);
    }
}

/// Scatter PairwiseMerge records `((x0, r, 0, 0), v)` into `m`.
fn accumulate_pairs(m: &mut Mat, records: &[(Ix4, f64)]) {
    for &(ix, v) in records {
        m.add_at(ix.0 as usize, ix.1 as usize, v);
    }
}

/// Number of MapReduce jobs [`mttkrp`] submits — the "Total Jobs" column of
/// Table IV.
pub fn expected_jobs(variant: Variant, r: usize) -> usize {
    match variant {
        Variant::Naive => 2 * r,
        Variant::Dnn => 4 * r,
        Variant::Drn => 2 * r + 1,
        Variant::Dri => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_mapreduce::ClusterConfig;
    use haten2_tensor::ops::mttkrp_dense;
    use haten2_tensor::Entry3;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_coo(dims: [u64; 3], nnz: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..nnz)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..dims[0]),
                    rng.gen_range(0..dims[1]),
                    rng.gen_range(0..dims[2]),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    fn check_variant(variant: Variant) {
        let x = random_coo([4, 5, 3], 20, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let r_dim = 3;
        let a = Mat::random(4, r_dim, &mut rng);
        let b = Mat::random(5, r_dim, &mut rng);
        let c = Mat::random(3, r_dim, &mut rng);
        let factors = [&a, &b, &c];
        for mode in 0..3 {
            let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            let cluster = Cluster::new(ClusterConfig::with_machines(4));
            let m = mttkrp(
                &cluster,
                variant,
                &x,
                mode,
                factors[others[0]],
                factors[others[1]],
            )
            .unwrap();
            let want = mttkrp_dense(&x, mode, [&a, &b, &c]).unwrap();
            assert!(
                m.approx_eq(&want, 1e-9),
                "{variant} mode {mode}:\ngot\n{m}\nwant\n{want}"
            );
        }
    }

    #[test]
    fn naive_matches_reference() {
        check_variant(Variant::Naive);
    }

    #[test]
    fn dnn_matches_reference() {
        check_variant(Variant::Dnn);
    }

    #[test]
    fn drn_matches_reference() {
        check_variant(Variant::Drn);
    }

    #[test]
    fn dri_matches_reference() {
        check_variant(Variant::Dri);
    }

    #[test]
    fn job_counts_match_table4() {
        let x = random_coo([4, 4, 4], 15, 23);
        let mut rng = StdRng::seed_from_u64(24);
        let r_dim = 3;
        let b = Mat::random(4, r_dim, &mut rng);
        let c = Mat::random(4, r_dim, &mut rng);
        for variant in Variant::ALL {
            let cluster = Cluster::new(ClusterConfig::with_machines(2));
            mttkrp(&cluster, variant, &x, 0, &b, &c).unwrap();
            assert_eq!(
                cluster.metrics().total_jobs(),
                expected_jobs(variant, r_dim),
                "{variant}"
            );
        }
    }

    #[test]
    fn naive_fails_on_capacity_dri_survives() {
        let x = random_coo([40, 40, 40], 25, 25);
        let mut rng = StdRng::seed_from_u64(26);
        let b = Mat::random(40, 2, &mut rng);
        let c = Mat::random(40, 2, &mut rng);
        let cfg = || ClusterConfig {
            cluster_capacity_bytes: Some(80_000),
            ..ClusterConfig::with_machines(4)
        };
        let err = mttkrp(&Cluster::new(cfg()), Variant::Naive, &x, 0, &b, &c).unwrap_err();
        assert!(err.is_oom());
        mttkrp(&Cluster::new(cfg()), Variant::Dri, &x, 0, &b, &c).unwrap();
    }

    #[test]
    fn dnn_has_smallest_intermediate_dri_fewest_jobs() {
        // Table IV structure: DNN minimizes intermediate data, DRI jobs.
        let x = random_coo([6, 6, 6], 40, 27);
        let mut rng = StdRng::seed_from_u64(28);
        let b = Mat::random(6, 4, &mut rng);
        let c = Mat::random(6, 4, &mut rng);
        let mut inter = std::collections::HashMap::new();
        let mut jobs = std::collections::HashMap::new();
        for variant in [Variant::Dnn, Variant::Drn, Variant::Dri] {
            let cluster = Cluster::new(ClusterConfig::with_machines(2));
            mttkrp(&cluster, variant, &x, 0, &b, &c).unwrap();
            inter.insert(variant, cluster.metrics().max_intermediate_records());
            jobs.insert(variant, cluster.metrics().total_jobs());
        }
        assert!(inter[&Variant::Dnn] <= inter[&Variant::Drn]);
        assert!(jobs[&Variant::Dri] < jobs[&Variant::Drn]);
        assert!(jobs[&Variant::Drn] < jobs[&Variant::Dnn]);
    }

    #[test]
    fn rewritten_plan_is_bit_identical_to_unrewritten() {
        use haten2_mapreduce::{RewritePolicy, SchedulerMode};
        let x = random_coo([12, 5, 4], 80, 91);
        let mut rng = StdRng::seed_from_u64(92);
        let b = Mat::random(5, 3, &mut rng);
        let c = Mat::random(4, 3, &mut rng);
        for variant in [Variant::Drn, Variant::Dri] {
            let mut outs: Vec<Vec<u64>> = Vec::new();
            for (policy, sched) in [
                (RewritePolicy::Off, SchedulerMode::Sequential),
                (RewritePolicy::Always, SchedulerMode::Sequential),
                (RewritePolicy::Always, SchedulerMode::Dag),
            ] {
                let mut cfg = ClusterConfig::with_machines(4);
                cfg.rewrite = policy;
                cfg.scheduler = sched;
                let cluster = Cluster::new(cfg);
                let m = mttkrp(&cluster, variant, &x, 0, &b, &c).unwrap();
                let mut bits = Vec::with_capacity(m.rows() * m.cols());
                for i in 0..m.rows() {
                    for r in 0..m.cols() {
                        bits.push(m.get(i, r).to_bits());
                    }
                }
                outs.push(bits);
            }
            assert_eq!(outs[0], outs[1], "{variant}: rewrite broke bit-identity");
            assert_eq!(
                outs[0], outs[2],
                "{variant}: DAG rewrite broke bit-identity"
            );
        }
    }

    #[test]
    fn auto_policy_rewrites_only_under_skew() {
        use haten2_mapreduce::RewritePolicy;
        let r_dim = 2;
        let mut rng = StdRng::seed_from_u64(93);
        // Skewed: a 10×10 dense slab at i = 0 plus a few scattered entries
        // — one reduce key owns ~96% of the merge input.
        let mut entries: Vec<Entry3> = Vec::new();
        for j in 0..10 {
            for k in 0..10 {
                entries.push(Entry3::new(0, j, k, rng.gen_range(0.5..2.0)));
            }
        }
        for i in 1..4 {
            entries.push(Entry3::new(i, 0, 0, 1.0));
        }
        let skewed = CooTensor3::from_entries([40, 10, 10], entries).unwrap();
        let b = Mat::random(10, r_dim, &mut rng);
        let c = Mat::random(10, r_dim, &mut rng);
        let machines = 4;
        let auto_cfg = || {
            let mut cfg = ClusterConfig::with_machines(machines);
            cfg.rewrite = RewritePolicy::Auto {
                skew_threshold: 2.0,
            };
            cfg
        };
        let cluster = Cluster::new(auto_cfg());
        mttkrp(&cluster, Variant::Dri, &skewed, 0, &b, &c).unwrap();
        // IMHP + `machines` splits + mergeparts: the rewrite fired.
        assert_eq!(cluster.metrics().total_jobs(), 2 + machines);

        // Uniform tensor at the same policy: plan submitted unrewritten.
        let uniform = random_coo([40, 10, 10], 200, 94);
        let cluster = Cluster::new(auto_cfg());
        mttkrp(&cluster, Variant::Dri, &uniform, 0, &b, &c).unwrap();
        assert_eq!(cluster.metrics().total_jobs(), 2);
    }

    #[test]
    fn rank_mismatch_rejected() {
        let x = random_coo([3, 3, 3], 5, 29);
        let b = Mat::zeros(3, 2);
        let c = Mat::zeros(3, 3);
        assert!(mttkrp(&Cluster::with_defaults(), Variant::Dri, &x, 0, &b, &c).is_err());
    }
}
