//! N-way PARAFAC on the HaTen2-DRI framework.
//!
//! The paper defines PARAFAC, `PairwiseMerge` (Definition 4) and the
//! Hadamard expansions for general N-way tensors; this module is that
//! generalization: for each target mode the MTTKRP is computed as one
//! integrated Hadamard job (the N-way `IMHP`) producing the `N−1` expanded
//! tensors `T'₁ = X *̄ₘ₁ f`, `T''ₘ = bin(X) *̄ₘ f` and one `PairwiseMerge`
//! job joining them on the target-mode index — exactly two jobs per mode
//! regardless of rank, matching the DRI row of Table IV.
//!
//! The two jobs are submitted as one (graphless) [`Batch`]: there is no
//! registered [`haten2_mapreduce::JobGraph`] for the generic N-way
//! pipeline, so the batch skips template validation and the jobs keep
//! their explicit [`JobSpec::with_map_emit_hint`] overrides — the
//! documented escape hatch when no plan IR exists to derive hints from.

use crate::{CoreError, Result};
use haten2_linalg::{pinv, Mat};
use haten2_mapreduce::{run_job, Batch, Cluster, EstimateSize, JobSite, JobSpec, RunMetrics};
use haten2_tensor::DynTensor;

/// Expanded record from the N-way IMHP job: `((side, full index, column),
/// value)`.
type ExpandedRecord = ((u8, Vec<u64>, u64), f64);
/// Per-side grouping of expanded records by full base index. Ordered map:
/// the crossmerge reducer iterates it into emits, so the grouping must be
/// hasher-independent for the output order to be deterministic.
type SideIndex<'a> = std::collections::BTreeMap<&'a [u64], Vec<(u64, f64)>>;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Input record for the N-way IMHP job.
#[derive(Debug, Clone, PartialEq)]
enum NRec {
    /// Tensor entry: full index plus value.
    Ent(Vec<u64>, f64),
    /// Factor row for join side `side` (position among the non-target
    /// modes): `(side, mode index, row of length R)`.
    Row(u8, u64, Vec<f64>),
}

impl EstimateSize for NRec {
    fn est_bytes(&self) -> usize {
        1 + match self {
            NRec::Ent(ix, v) => ix.est_bytes() + v.est_bytes(),
            NRec::Row(s, i, row) => s.est_bytes() + i.est_bytes() + row.est_bytes(),
        }
    }
}

/// Intermediate value for the N-way IMHP join.
#[derive(Debug, Clone, PartialEq)]
enum NVal {
    Ent(Vec<u64>, f64),
    Row(Vec<f64>),
}

impl EstimateSize for NVal {
    fn est_bytes(&self) -> usize {
        1 + match self {
            NVal::Ent(ix, v) => ix.est_bytes() + v.est_bytes(),
            NVal::Row(row) => row.est_bytes(),
        }
    }
}

/// Merge-side value: `(side, full index, rank column, value)`.
#[derive(Debug, Clone, PartialEq)]
struct NMergeVal {
    side: u8,
    ix: Vec<u64>,
    r: u64,
    v: f64,
}

impl EstimateSize for NMergeVal {
    fn est_bytes(&self) -> usize {
        1 + self.ix.est_bytes() + 8 + 8
    }
}

/// The integrated N-way Hadamard-expansion job shared by the N-way MTTKRP
/// and the N-way Tucker projection: one MapReduce job producing, for each
/// non-target mode (a "side"), the expanded records
/// `((side, full-index, column), value)` where side 0 carries
/// `X·factor` and the remaining sides carry the `bin(X)`-based factor
/// coefficients (Lemmas 1–2 generalized).
fn nway_imhp(
    site: &impl JobSite,
    x: &DynTensor,
    others: &[usize],
    factors: &[&Mat],
    mode: usize,
) -> haten2_mapreduce::Result<Vec<ExpandedRecord>> {
    let mut input: Vec<((), NRec)> = (0..x.nnz())
        .map(|e| ((), NRec::Ent(x.index(e).to_vec(), x.value(e))))
        .collect();
    for (side, &m) in others.iter().enumerate() {
        let f = factors[m];
        for idx in 0..f.rows() {
            input.push(((), NRec::Row(side as u8, idx as u64, f.row(idx).to_vec())));
        }
    }

    let out = run_job(
        site,
        // Each tensor entry emits once per non-target mode. Explicit hint:
        // there is no plan graph to derive it from.
        JobSpec::named(format!("nway-imhp-mode{mode}")).with_map_emit_hint(others.len().max(1)),
        &input,
        |_, rec: &NRec, emit| match rec {
            NRec::Ent(ix, v) => {
                for (side, &m) in others.iter().enumerate() {
                    emit((side as u8, ix[m]), NVal::Ent(ix.clone(), *v));
                }
            }
            NRec::Row(side, idx, row) => emit((*side, *idx), NVal::Row(row.clone())),
        },
        |key, vals, emit| {
            let (side, _) = *key;
            let mut row: Option<&Vec<f64>> = None;
            for v in &vals {
                if let NVal::Row(r) = v {
                    row = Some(r);
                }
            }
            let Some(row) = row else { return };
            for v in &vals {
                if let NVal::Ent(ix, val) = v {
                    for (r, &coef) in row.iter().enumerate() {
                        if coef == 0.0 {
                            continue;
                        }
                        // The first side carries X's values; the rest are
                        // bin(X)-based, carrying only the factor coefficient.
                        let out_v = if side == 0 { val * coef } else { coef };
                        emit((side, ix.clone(), r as u64), out_v);
                    }
                }
            }
        },
    )?;
    Ok(out)
}

/// Distributed N-way MTTKRP for `mode`, DRI style (2 jobs).
///
/// `factors` supplies the factor matrix of every mode (the target one is
/// ignored); all must share the same column count `R`. Returns
/// `M ∈ ℝ^{dims[mode]×R}`.
pub fn nway_mttkrp(cluster: &Cluster, x: &DynTensor, mode: usize, factors: &[&Mat]) -> Result<Mat> {
    let n = x.order();
    if n < 2 {
        return Err(CoreError::InvalidArgument(
            "tensor order must be ≥ 2".into(),
        ));
    }
    if factors.len() != n {
        return Err(CoreError::InvalidArgument(format!(
            "expected {n} factors, got {}",
            factors.len()
        )));
    }
    if mode >= n {
        return Err(CoreError::InvalidArgument(format!(
            "mode {mode} out of range"
        )));
    }
    let others: Vec<usize> = (0..n).filter(|&m| m != mode).collect();
    let rank = factors[others[0]].cols();
    for &m in &others {
        if factors[m].rows() != x.dims()[m] as usize || factors[m].cols() != rank {
            return Err(CoreError::InvalidArgument(format!(
                "factor {m} is {}x{}, expected {}x{rank}",
                factors[m].rows(),
                factors[m].cols(),
                x.dims()[m]
            )));
        }
    }

    // One two-job chain (IMHP → PairwiseMerge), submitted as a graphless
    // batch — concurrent per-mode invocations share the scheduler path.
    let sides = others.len() as u8;
    let mut batch = Batch::new();
    let expanded = batch.submit(
        format!("nway-imhp-mode{mode}"),
        vec!["x".into()],
        vec!["expanded".into()],
        {
            let others = &others;
            move |ctx| nway_imhp(ctx, x, others, factors, mode)
        },
    )?;
    let merged = batch.submit(
        format!("nway-pairwisemerge-mode{mode}"),
        vec!["expanded".into()],
        vec!["y".into()],
        {
            let expanded = expanded.clone();
            move |ctx| {
                let merge_input: Vec<((), NMergeVal)> = ctx
                    .get(&expanded)?
                    .iter()
                    .cloned()
                    .map(|((side, ix, r), v)| ((), NMergeVal { side, ix, r, v }))
                    .collect();
                run_job(
                    ctx,
                    JobSpec::named(format!("nway-pairwisemerge-mode{mode}")).with_map_emit_hint(1),
                    &merge_input,
                    move |_, rec: &NMergeVal, emit| emit(rec.ix[mode], rec.clone()),
                    move |i, vals, emit| {
                        use std::collections::BTreeMap;
                        // Join on (full index, r): all sides must be present.
                        // Ordered maps throughout — both are iterated on the
                        // way to emits.
                        let mut groups: BTreeMap<(&[u64], u64), (u8, f64)> = BTreeMap::new();
                        for v in &vals {
                            let e = groups.entry((v.ix.as_slice(), v.r)).or_insert((0, 1.0));
                            e.0 += 1;
                            e.1 *= v.v;
                        }
                        let mut acc: BTreeMap<u64, f64> = BTreeMap::new();
                        for ((_, r), (count, prod)) in groups {
                            if count == sides {
                                *acc.entry(r).or_insert(0.0) += prod;
                            }
                        }
                        for (r, y) in acc {
                            if y != 0.0 {
                                emit((*i, r), y);
                            }
                        }
                    },
                )
            }
        },
    )?;
    batch.run(cluster)?;

    let mut m = Mat::zeros(x.dims()[mode] as usize, rank);
    for ((i, r), v) in merged.take()? {
        m.add_at(i as usize, r as usize, v);
    }
    Ok(m)
}

/// Result of [`nway_parafac_als`].
#[derive(Debug, Clone)]
pub struct NwayParafacResult {
    /// Column norms `λ ∈ ℝ^R`.
    pub lambda: Vec<f64>,
    /// One factor matrix per mode, unit-norm columns.
    pub factors: Vec<Mat>,
    /// Fit after each sweep.
    pub fits: Vec<f64>,
    /// Sweeps executed.
    pub iterations: usize,
    /// MapReduce metrics.
    pub metrics: RunMetrics,
}

/// N-way PARAFAC-ALS on the DRI kernels (the paper's N-way formulation in
/// §II-B1 with the §III framework).
pub fn nway_parafac_als(
    cluster: &Cluster,
    x: &DynTensor,
    rank: usize,
    max_iters: usize,
    tol: f64,
    seed: u64,
) -> Result<NwayParafacResult> {
    let n = x.order();
    if rank == 0 {
        return Err(CoreError::InvalidArgument("rank must be positive".into()));
    }
    if n < 3 {
        return Err(CoreError::InvalidArgument("PARAFAC needs order ≥ 3".into()));
    }
    let mark = cluster.jobs_run();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors: Vec<Mat> = x
        .dims()
        .iter()
        .map(|&d| Mat::random(d as usize, rank, &mut rng))
        .collect();
    let mut lambda = vec![1.0; rank];
    let norm_x_sq: f64 = (0..x.nnz()).map(|e| x.value(e) * x.value(e)).sum();
    let norm_x = norm_x_sq.sqrt();

    let mut fits = Vec::new();
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let mut last_m: Option<Mat> = None;
        for mode in 0..n {
            let refs: Vec<&Mat> = factors.iter().collect();
            let m = nway_mttkrp(cluster, x, mode, &refs)?;
            // Hadamard product of all other Gram matrices.
            let mut g =
                Mat::from_vec(rank, rank, vec![1.0; rank * rank]).expect("square ones matrix");
            for (other, f) in factors.iter().enumerate() {
                if other != mode {
                    g = g.hadamard(&f.gram()).map_err(CoreError::Linalg)?;
                }
            }
            factors[mode] = m.matmul(&pinv(&g)?).map_err(CoreError::Linalg)?;
            lambda = factors[mode].normalize_columns();
            if mode == n - 1 {
                last_m = Some(m);
            }
        }

        let m = last_m.expect("modes swept");
        let f_last = &factors[n - 1];
        let mut inner = 0.0;
        for i in 0..f_last.rows() {
            for (r, &l) in lambda.iter().enumerate() {
                inner += m.get(i, r) * f_last.get(i, r) * l;
            }
        }
        let mut g_all =
            Mat::from_vec(rank, rank, vec![1.0; rank * rank]).expect("square ones matrix");
        for f in &factors {
            g_all = g_all.hadamard(&f.gram()).map_err(CoreError::Linalg)?;
        }
        let mut norm_model_sq = 0.0;
        for r in 0..rank {
            for s in 0..rank {
                norm_model_sq += lambda[r] * lambda[s] * g_all.get(r, s);
            }
        }
        let err_sq = (norm_x_sq + norm_model_sq - 2.0 * inner).max(0.0);
        let fit = if norm_x > 0.0 {
            1.0 - err_sq.sqrt() / norm_x
        } else {
            1.0
        };
        let prev = fits.last().copied();
        fits.push(fit);
        if let Some(p) = prev {
            if (fit - p).abs() < tol {
                break;
            }
        }
    }

    Ok(NwayParafacResult {
        lambda,
        factors,
        fits,
        iterations,
        metrics: cluster.metrics_since(mark),
    })
}

/// Distributed N-way Tucker projection for `mode`, DRI style (2 jobs):
/// `Y = X ×ₘ₁ U₁ᵀ ... ×ₘ_{N−1} U_{N−1}ᵀ` over all non-target modes.
///
/// `factors` supplies the factor matrix `Uₘ ∈ ℝ^{dₘ×cₘ}` of every mode
/// (the target one is ignored). Returns `Y` with dims
/// `[d_mode, c_{m₁}, …, c_{m_{N−1}}]` (non-target modes in ascending
/// order) — the N-way generalization of [`crate::tucker::project`] via the
/// N-way `CrossMerge` (Definition 3).
pub fn nway_tucker_project(
    cluster: &Cluster,
    x: &DynTensor,
    mode: usize,
    factors: &[&Mat],
) -> Result<DynTensor> {
    let n = x.order();
    if mode >= n {
        return Err(CoreError::InvalidArgument(format!(
            "mode {mode} out of range"
        )));
    }
    if factors.len() != n {
        return Err(CoreError::InvalidArgument(format!(
            "expected {n} factors, got {}",
            factors.len()
        )));
    }
    let others: Vec<usize> = (0..n).filter(|&m| m != mode).collect();
    for &m in &others {
        if factors[m].rows() != x.dims()[m] as usize {
            return Err(CoreError::InvalidArgument(format!(
                "factor {m} has {} rows for dim {}",
                factors[m].rows(),
                x.dims()[m]
            )));
        }
    }

    // One two-job chain (IMHP → CrossMerge; per-side column counts may
    // differ), submitted as a graphless batch.
    let sides = others.len();
    let mut batch = Batch::new();
    let expanded = batch.submit(
        format!("nway-imhp-mode{mode}"),
        vec!["x".into()],
        vec!["expanded".into()],
        {
            let others = &others;
            move |ctx| nway_imhp(ctx, x, others, factors, mode)
        },
    )?;
    let merged = batch.submit(
        format!("nway-crossmerge-mode{mode}"),
        vec!["expanded".into()],
        vec!["y".into()],
        {
            let expanded = expanded.clone();
            move |ctx| {
                let merge_input: Vec<((), NMergeVal)> = ctx
                    .get(&expanded)?
                    .iter()
                    .cloned()
                    .map(|((side, ix, r), v)| ((), NMergeVal { side, ix, r, v }))
                    .collect();
                run_job(
                    ctx,
                    JobSpec::named(format!("nway-crossmerge-mode{mode}")).with_map_emit_hint(1),
                    &merge_input,
                    move |_, rec: &NMergeVal, emit| emit(rec.ix[mode], rec.clone()),
                    move |i, vals, emit| {
                        use std::collections::BTreeMap;
                        // Group by side, then by full base index (ordered — iterated
                        // into emits below).
                        let mut by_side: Vec<SideIndex> =
                            (0..sides).map(|_| SideIndex::new()).collect();
                        for v in &vals {
                            by_side[v.side as usize]
                                .entry(v.ix.as_slice())
                                .or_default()
                                .push((v.r, v.v));
                        }
                        let mut acc: BTreeMap<Vec<u64>, f64> = BTreeMap::new();
                        for (base, list0) in &by_side[0] {
                            // All sides must cover this base (they do on supp(X)).
                            let mut lists: Vec<&Vec<(u64, f64)>> = Vec::with_capacity(sides);
                            lists.push(list0);
                            let mut complete = true;
                            for side_map in by_side.iter().skip(1) {
                                match side_map.get(base) {
                                    Some(l) => lists.push(l),
                                    None => {
                                        complete = false;
                                        break;
                                    }
                                }
                            }
                            if !complete {
                                continue;
                            }
                            // Cartesian product of the per-side (column, value) lists.
                            let mut combos: Vec<(Vec<u64>, f64)> = vec![(Vec::new(), 1.0)];
                            for l in lists {
                                let mut next = Vec::with_capacity(combos.len() * l.len());
                                for (q, p) in &combos {
                                    for &(r, v) in l.iter() {
                                        let mut q2 = q.clone();
                                        q2.push(r);
                                        next.push((q2, p * v));
                                    }
                                }
                                combos = next;
                            }
                            for (q, p) in combos {
                                *acc.entry(q).or_insert(0.0) += p;
                            }
                        }
                        for (q, y) in acc {
                            if y != 0.0 {
                                emit((*i, q), y);
                            }
                        }
                    },
                )
            }
        },
    )?;
    batch.run(cluster)?;

    let mut dims = vec![x.dims()[mode]];
    dims.extend(others.iter().map(|&m| factors[m].cols() as u64));
    let mut y = DynTensor::new(dims);
    let mut idx = Vec::with_capacity(n);
    for ((i, q), v) in merged.take()? {
        idx.clear();
        idx.push(i);
        idx.extend_from_slice(&q);
        y.push(&idx, v)?;
    }
    Ok(y.coalesce())
}

/// Result of [`nway_tucker_als`].
#[derive(Debug, Clone)]
pub struct NwayTuckerResult {
    /// Core tensor `G` with dims `core_dims`.
    pub core: DynTensor,
    /// One orthonormal factor matrix per mode.
    pub factors: Vec<Mat>,
    /// `‖G‖` after each sweep.
    pub core_norms: Vec<f64>,
    /// Sweeps executed.
    pub iterations: usize,
    /// Fit `1 − ‖X − X̂‖/‖X‖` (orthonormal-factor identity `‖X̂‖ = ‖G‖`).
    pub fit: f64,
    /// MapReduce metrics.
    pub metrics: RunMetrics,
}

/// N-way Tucker-ALS (HOOI) on the DRI kernels — the paper's N-way Tucker
/// formulation (§II-B2) run through the §III framework: per mode, one
/// N-way `IMHP` job and one N-way `CrossMerge` job, then a driver-side
/// subspace iteration on the sparse matricized projection.
pub fn nway_tucker_als(
    cluster: &Cluster,
    x: &DynTensor,
    core_dims: &[usize],
    max_iters: usize,
    tol: f64,
    seed: u64,
) -> Result<NwayTuckerResult> {
    let n = x.order();
    if n < 3 {
        return Err(CoreError::InvalidArgument("Tucker needs order ≥ 3".into()));
    }
    if core_dims.len() != n {
        return Err(CoreError::InvalidArgument(format!(
            "expected {n} core dims, got {}",
            core_dims.len()
        )));
    }
    for (m, (&c, &d)) in core_dims.iter().zip(x.dims()).enumerate() {
        if c == 0 || c as u64 > d {
            return Err(CoreError::InvalidArgument(format!(
                "core dim {c} invalid for mode {m} of size {d}"
            )));
        }
        let product: usize = core_dims
            .iter()
            .enumerate()
            .filter(|&(mm, _)| mm != m)
            .map(|(_, &cc)| cc)
            .product();
        if c > product {
            return Err(CoreError::InvalidArgument(format!(
                "core dim {c} for mode {m} exceeds the {product} matricized columns"
            )));
        }
    }

    let mark = cluster.jobs_run();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors: Vec<Mat> = x
        .dims()
        .iter()
        .zip(core_dims)
        .map(|(&d, &c)| {
            haten2_linalg::thin_qr(&Mat::random(d as usize, c, &mut rng)).map_err(CoreError::Linalg)
        })
        .collect::<Result<_>>()?;
    let norm_x_sq: f64 = (0..x.nnz()).map(|e| x.value(e) * x.value(e)).sum();
    let norm_x = norm_x_sq.sqrt();

    let mut core = DynTensor::new(core_dims.iter().map(|&c| c as u64).collect());
    let mut core_norms: Vec<f64> = Vec::new();
    let mut iterations = 0;

    for sweep in 0..max_iters {
        iterations += 1;
        let mut last_y: Option<DynTensor> = None;
        for mode in 0..n {
            let refs: Vec<&Mat> = factors.iter().collect();
            let y = nway_tucker_project(cluster, x, mode, &refs)?;
            let y_mat = y.matricize(0).map_err(CoreError::Tensor)?;
            let sub_opts = haten2_linalg::SubspaceOptions {
                seed: seed ^ ((sweep as u64) << 8 | mode as u64),
                ..Default::default()
            };
            factors[mode] =
                haten2_linalg::leading_left_singular_vectors(&y_mat, core_dims[mode], &sub_opts)
                    .map_err(CoreError::Linalg)?;
            if mode == n - 1 {
                last_y = Some(y);
            }
        }

        // Core from the final projection Y (dims [d_{N-1}, c_0..c_{N-2}]):
        // G(q_0..q_{N-1}) = Σ_k Y(k, q_0..q_{N-2}) U_{N-1}(k, q_{N-1}).
        let y = last_y.expect("modes swept");
        let u_last = &factors[n - 1];
        let c_last = core_dims[n - 1];
        let mut g = DynTensor::new(core_dims.iter().map(|&c| c as u64).collect());
        let mut gidx = vec![0u64; n];
        for e in 0..y.nnz() {
            let idx = y.index(e);
            let k = idx[0] as usize;
            let v = y.value(e);
            gidx[..n - 1].copy_from_slice(&idx[1..]);
            for q in 0..c_last {
                gidx[n - 1] = q as u64;
                let coef = u_last.get(k, q);
                if coef != 0.0 {
                    g.push(&gidx, v * coef)?;
                }
            }
        }
        core = g.coalesce();

        let norm_g = core.fro_norm();
        let prev = core_norms.last().copied();
        core_norms.push(norm_g);
        if let Some(p) = prev {
            if (norm_g - p).abs() < tol * norm_x.max(1.0) {
                break;
            }
        }
    }

    let norm_g = core_norms.last().copied().unwrap_or(0.0);
    let err_sq = (norm_x_sq - norm_g * norm_g).max(0.0);
    let fit = if norm_x > 0.0 {
        1.0 - err_sq.sqrt() / norm_x
    } else {
        1.0
    };
    Ok(NwayTuckerResult {
        core,
        factors,
        core_norms,
        iterations,
        fit,
        metrics: cluster.metrics_since(mark),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_mapreduce::ClusterConfig;
    use haten2_tensor::ops::mttkrp_dense;
    use haten2_tensor::{CooTensor3, Entry3};
    use rand::Rng;

    fn random_dyn(dims: Vec<u64>, nnz: usize, seed: u64) -> DynTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = DynTensor::new(dims.clone());
        for _ in 0..nnz {
            let idx: Vec<u64> = dims.iter().map(|&d| rng.gen_range(0..d)).collect();
            t.push(&idx, rng.gen_range(0.5..2.0)).unwrap();
        }
        t.coalesce()
    }

    #[test]
    fn three_way_matches_reference_mttkrp() {
        let t3 = CooTensor3::from_entries(
            [4, 5, 3],
            (0..18)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(100 + s);
                    Entry3::new(
                        rng.gen_range(0..4),
                        rng.gen_range(0..5),
                        rng.gen_range(0..3),
                        rng.gen_range(0.5..2.0),
                    )
                })
                .collect(),
        )
        .unwrap();
        let x = DynTensor::from_coo3(&t3);
        let mut rng = StdRng::seed_from_u64(47);
        let a = Mat::random(4, 2, &mut rng);
        let b = Mat::random(5, 2, &mut rng);
        let c = Mat::random(3, 2, &mut rng);
        for mode in 0..3 {
            let cluster = Cluster::new(ClusterConfig::with_machines(3));
            let m = nway_mttkrp(&cluster, &x, mode, &[&a, &b, &c]).unwrap();
            let want = mttkrp_dense(&t3, mode, [&a, &b, &c]).unwrap();
            assert!(m.approx_eq(&want, 1e-9), "mode {mode}");
            // DRI framework: exactly 2 jobs per MTTKRP.
            assert_eq!(cluster.metrics().total_jobs(), 2);
        }
    }

    #[test]
    fn four_way_mttkrp_matches_bruteforce() {
        let dims = vec![3, 4, 3, 2];
        let x = random_dyn(dims.clone(), 15, 49);
        let mut rng = StdRng::seed_from_u64(50);
        let rank = 2;
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| Mat::random(d as usize, rank, &mut rng))
            .collect();
        let refs: Vec<&Mat> = factors.iter().collect();
        for mode in 0..4 {
            let cluster = Cluster::new(ClusterConfig::with_machines(3));
            let m = nway_mttkrp(&cluster, &x, mode, &refs).unwrap();
            // Brute force: M(i, r) = Σ_entries v · Π_{m≠mode} F_m[ix_m, r].
            let mut want = Mat::zeros(dims[mode] as usize, rank);
            for (idx, v) in x.iter() {
                for r in 0..rank {
                    let mut p = v;
                    for (mm, f) in factors.iter().enumerate() {
                        if mm != mode {
                            p *= f.get(idx[mm] as usize, r);
                        }
                    }
                    want.add_at(idx[mode] as usize, r, p);
                }
            }
            assert!(m.approx_eq(&want, 1e-9), "mode {mode}");
        }
    }

    #[test]
    fn four_way_als_converges() {
        let x = random_dyn(vec![5, 4, 4, 3], 30, 51);
        let cluster = Cluster::new(ClusterConfig::with_machines(3));
        let res = nway_parafac_als(&cluster, &x, 3, 8, 0.0, 7).unwrap();
        assert_eq!(res.factors.len(), 4);
        for w in res.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "fits {:?}", res.fits);
        }
        // 2 jobs × 4 modes × 8 sweeps.
        assert_eq!(res.metrics.total_jobs(), 64);
    }

    #[test]
    fn nway_tucker_project_matches_3way_kernel() {
        // The N-way projection specialised to 3 ways must agree with the
        // dedicated 3-way Tucker DRI kernel.
        let t3 = CooTensor3::from_entries(
            [4, 5, 3],
            (0..20)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(200 + s);
                    Entry3::new(
                        rng.gen_range(0..4),
                        rng.gen_range(0..5),
                        rng.gen_range(0..3),
                        rng.gen_range(0.5..2.0),
                    )
                })
                .collect(),
        )
        .unwrap();
        let x = DynTensor::from_coo3(&t3);
        let mut rng = StdRng::seed_from_u64(55);
        let a = Mat::random(4, 2, &mut rng);
        let b = Mat::random(5, 2, &mut rng);
        let c = Mat::random(3, 3, &mut rng);
        let factors = [&a, &b, &c];
        for mode in 0..3usize {
            let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            let cluster = Cluster::new(ClusterConfig::with_machines(3));
            let y = nway_tucker_project(&cluster, &x, mode, &factors).unwrap();
            assert_eq!(cluster.metrics().total_jobs(), 2);

            let cluster2 = Cluster::new(ClusterConfig::with_machines(3));
            let want = crate::tucker::project(
                &cluster2,
                crate::Variant::Dri,
                &t3,
                mode,
                &factors[others[0]].transpose(),
                &factors[others[1]].transpose(),
                &crate::tucker::ProjectOptions::default(),
            )
            .unwrap();
            assert_eq!(y.nnz(), want.nnz(), "mode {mode}");
            for (idx, v) in y.iter() {
                assert!(
                    (want.get(idx[0], idx[1], idx[2]) - v).abs() < 1e-9,
                    "mode {mode} at {idx:?}"
                );
            }
        }
    }

    #[test]
    fn four_way_tucker_converges_with_orthonormal_factors() {
        let x = random_dyn(vec![6, 5, 4, 3], 40, 57);
        let cluster = Cluster::new(ClusterConfig::with_machines(3));
        let res = nway_tucker_als(&cluster, &x, &[2, 2, 2, 2], 5, 0.0, 9).unwrap();
        assert_eq!(res.factors.len(), 4);
        for f in &res.factors {
            assert!(f.gram().approx_eq(&Mat::identity(f.cols()), 1e-8));
        }
        for w in res.core_norms.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "core norms {:?}", res.core_norms);
        }
        assert!(res.fit >= 0.0 && res.fit <= 1.0);
        assert_eq!(res.core.dims(), &[2, 2, 2, 2]);
        // 2 jobs × 4 modes × 5 sweeps.
        assert_eq!(res.metrics.total_jobs(), 40);
    }

    #[test]
    fn four_way_tucker_exact_on_low_multilinear_rank() {
        // X = G ×₁ U₁ ... ×₄ U₄ with rank (2,2,2,2): Tucker recovers it.
        let mut rng = StdRng::seed_from_u64(58);
        let dims = [5usize, 4, 4, 3];
        let us: Vec<Mat> = dims
            .iter()
            .map(|&d| haten2_linalg::thin_qr(&Mat::random(d, 2, &mut rng)).unwrap())
            .collect();
        let mut g_core = vec![0.0; 16];
        for v in &mut g_core {
            *v = rng.gen_range(0.5..2.0);
        }
        let mut x = DynTensor::new(dims.iter().map(|&d| d as u64).collect());
        for i0 in 0..dims[0] {
            for i1 in 0..dims[1] {
                for i2 in 0..dims[2] {
                    for i3 in 0..dims[3] {
                        let mut v = 0.0;
                        for q0 in 0..2 {
                            for q1 in 0..2 {
                                for q2 in 0..2 {
                                    for q3 in 0..2 {
                                        v += g_core[q0 * 8 + q1 * 4 + q2 * 2 + q3]
                                            * us[0].get(i0, q0)
                                            * us[1].get(i1, q1)
                                            * us[2].get(i2, q2)
                                            * us[3].get(i3, q3);
                                    }
                                }
                            }
                        }
                        x.push(&[i0 as u64, i1 as u64, i2 as u64, i3 as u64], v)
                            .unwrap();
                    }
                }
            }
        }
        let cluster = Cluster::new(ClusterConfig::with_machines(3));
        let res = nway_tucker_als(&cluster, &x, &[2, 2, 2, 2], 8, 1e-12, 13).unwrap();
        assert!(res.fit > 0.999, "fit = {}", res.fit);
    }

    #[test]
    fn nway_tucker_argument_validation() {
        let x = random_dyn(vec![3, 3, 3], 5, 59);
        let f = Mat::zeros(3, 2);
        let cluster = Cluster::with_defaults();
        assert!(nway_tucker_project(&cluster, &x, 5, &[&f, &f, &f]).is_err());
        assert!(nway_tucker_project(&cluster, &x, 0, &[&f, &f]).is_err());
        assert!(nway_tucker_als(&cluster, &x, &[2, 2], 2, 0.0, 1).is_err());
        assert!(nway_tucker_als(&cluster, &x, &[0, 2, 2], 2, 0.0, 1).is_err());
        assert!(nway_tucker_als(&cluster, &x, &[4, 2, 2], 2, 0.0, 1).is_err());
    }

    #[test]
    fn argument_validation() {
        let x = random_dyn(vec![3, 3, 3], 5, 53);
        let f = Mat::zeros(3, 2);
        let cluster = Cluster::with_defaults();
        assert!(nway_mttkrp(&cluster, &x, 5, &[&f, &f, &f]).is_err());
        assert!(nway_mttkrp(&cluster, &x, 0, &[&f, &f]).is_err());
        assert!(nway_parafac_als(&cluster, &x, 0, 2, 0.0, 1).is_err());
    }
}
