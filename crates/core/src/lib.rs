//! HaTen2: distributed Tucker and PARAFAC tensor decompositions.
//!
//! This crate is the Rust reproduction of the paper's contribution — the
//! four algorithm variants (Table II) for the two bottleneck operations of
//! tensor ALS, expressed as MapReduce jobs over [`haten2_mapreduce`]:
//!
//! | Variant | Ideas applied |
//! |---------|---------------|
//! | [`Variant::Naive`] | per-column n-mode vector products with vector broadcast (MET-style, Algorithms 3–4) |
//! | [`Variant::Dnn`]   | + decoupled multiply/add: `*̄ₙ` Hadamard + `Collapse` (Algorithms 5–6) |
//! | [`Variant::Drn`]   | + dependency removal: `CrossMerge` / `PairwiseMerge` (Lemmas 1–2, Algorithms 7–8) |
//! | [`Variant::Dri`]   | + job integration: `IMHP` fuses all Hadamard products into one job (Algorithms 9–10) |
//!
//! The two decompositions share the framework: [`tucker::project`] computes
//! `Y ← X ×₂ Bᵀ ×₃ Cᵀ` (generalized to any target mode) and
//! [`parafac::mttkrp`] computes `Y ← X₍ₙ₎ (⊙ other factors)`; under DRI both
//! run `IMHP` followed by their merge (`CrossMerge` vs `PairwiseMerge`).
//! On top sit the ALS drivers [`als::parafac_als`] (Algorithm 1) and
//! [`als::tucker_als`] (Algorithm 2), plus an N-way PARAFAC generalization
//! in [`nway`].
//!
//! Every distributed operation is tested for exact agreement with the
//! single-machine reference implementations in `haten2_tensor::ops`.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod als;
pub mod canon;
pub mod checkpoint;
pub mod compress;
pub mod missing;
pub mod nonneg;
pub mod nway;
pub mod ops;
pub mod parafac;
pub mod plan;
pub mod records;
pub mod store;
pub mod tucker;

pub use als::{
    parafac_als, parafac_als_with_init, tucker_als, tucker_als_with_init, AlsOptions,
    ParafacResult, TuckerResult,
};
pub use checkpoint::{
    load_parafac, load_sweep_marker, load_tucker, parafac_als_checkpointed, resume_parafac,
    resume_tucker, save_parafac, save_parafac_state, save_tucker, save_tucker_state,
    tucker_als_checkpointed,
};
pub use compress::parafac_via_compression;
pub use missing::{parafac_missing, MissingParafacResult};
pub use nonneg::{nonneg_parafac, NonnegParafacResult};
pub use plan::{
    certified_rewrite_for, comm_assoc_annotation, comm_for, env_for, is_comm_assoc_site, plan_for,
    recovery_for, CommSpec, Decomp, ReducerAnnotation, CERTIFIED_REWRITES, COMM_ASSOC_REDUCERS,
};
pub use records::Ix4;
pub use store::{
    load_factor, load_parafac_state, load_tensor, load_tucker_state, persist_factor,
    persist_parafac_state, persist_tensor, persist_tucker_state,
};

/// Which HaTen2 variant executes an operation (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Straightforward MET-style port: one n-mode vector product per factor
    /// column, broadcasting the vector to every fiber.
    Naive,
    /// Decoupling the steps: n-mode vector Hadamard product + Collapse.
    Dnn,
    /// + Removing dependencies: CrossMerge / PairwiseMerge.
    Drn,
    /// + Integrating jobs (IMHP). This is "HaTen2" proper.
    Dri,
}

impl Variant {
    /// All variants in the paper's presentation order.
    pub const ALL: [Variant; 4] = [Variant::Naive, Variant::Dnn, Variant::Drn, Variant::Dri];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Naive => "HaTen2-Naive",
            Variant::Dnn => "HaTen2-DNN",
            Variant::Drn => "HaTen2-DRN",
            Variant::Dri => "HaTen2-DRI",
        }
    }

    /// Which of the paper's three ideas the variant applies, as
    /// (decoupling, dependency-removal, job-integration) — Table II.
    pub fn ideas(&self) -> (bool, bool, bool) {
        match self {
            Variant::Naive => (false, false, false),
            Variant::Dnn => (true, false, false),
            Variant::Drn => (true, true, false),
            Variant::Dri => (true, true, true),
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from HaTen2 algorithms.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// The MapReduce substrate failed (out of memory, capacity, task loss).
    MapReduce(haten2_mapreduce::MrError),
    /// Tensor-level failure (shape/index).
    Tensor(haten2_tensor::TensorError),
    /// Driver-side linear algebra failure.
    Linalg(haten2_linalg::LinalgError),
    /// Invalid decomposition parameters.
    InvalidArgument(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::MapReduce(e) => write!(f, "mapreduce: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor: {e}"),
            CoreError::Linalg(e) => write!(f, "linalg: {e}"),
            CoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<haten2_mapreduce::MrError> for CoreError {
    fn from(e: haten2_mapreduce::MrError) -> Self {
        CoreError::MapReduce(e)
    }
}
impl From<haten2_tensor::TensorError> for CoreError {
    fn from(e: haten2_tensor::TensorError) -> Self {
        CoreError::Tensor(e)
    }
}
impl From<haten2_linalg::LinalgError> for CoreError {
    fn from(e: haten2_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl CoreError {
    /// True when the failure is a (simulated) resource exhaustion — the
    /// "o.o.m." outcome in the paper's figures.
    pub fn is_oom(&self) -> bool {
        matches!(
            self,
            CoreError::MapReduce(
                haten2_mapreduce::MrError::ReducerOom { .. }
                    | haten2_mapreduce::MrError::ClusterCapacityExceeded { .. }
            )
        )
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;
