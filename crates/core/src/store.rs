//! Driver-state persistence through the cluster-owned DFS.
//!
//! HaTen2 keeps the input tensor and the factor matrices *on HDFS*
//! between jobs; the driver only orchestrates. This module reproduces
//! that placement: the tensor and per-sweep factor state are stored as
//! typed datasets in [`Cluster::dfs`], so on a durable backend
//! ([`haten2_mapreduce::DfsBackend::Durable`]) they survive a process
//! restart and a resumed driver reloads them from disk instead of
//! regenerating — the property the chaos harness's kill-and-reexec
//! scenario asserts. On the default memory backend these helpers still
//! work (and are metered), they just don't outlive the process.
//!
//! Naming convention: a caller-chosen key plus typed suffixes —
//! `{key}` for the record payload, `{key}.dims` / `{key}.shape` for the
//! geometry datasets that make the payload self-describing.

use crate::records::{tensor_records, Ix4};
use crate::{CoreError, Result};
use haten2_linalg::Mat;
use haten2_mapreduce::Cluster;
use haten2_tensor::{CooTensor3, DenseTensor3, Entry3};

const FACTOR_NAMES: [&str; 3] = ["A", "B", "C"];

/// Store `x` under `key` in the cluster's DFS: `{key}` holds the
/// `(Ix4, f64)` entry records, `{key}.dims` the mode sizes.
pub fn persist_tensor(cluster: &Cluster, key: &str, x: &CooTensor3) -> Result<()> {
    let dims = x.dims();
    let dfs = cluster.dfs();
    dfs.put(&format!("{key}.dims"), vec![(dims[0], dims[1], dims[2])])?;
    dfs.put(key, tensor_records(x))?;
    Ok(())
}

/// Load a tensor stored by [`persist_tensor`]; `None` when either dataset
/// is absent (e.g. memory backend after a restart).
pub fn load_tensor(cluster: &Cluster, key: &str) -> Result<Option<CooTensor3>> {
    let dfs = cluster.dfs();
    let Some(dims) = dfs.get::<(u64, u64, u64)>(&format!("{key}.dims")) else {
        return Ok(None);
    };
    let Some(records) = dfs.get::<(Ix4, f64)>(key) else {
        return Ok(None);
    };
    let &(d0, d1, d2) = dims
        .first()
        .ok_or_else(|| CoreError::InvalidArgument(format!("dataset '{key}.dims' is empty")))?;
    let entries = records
        .iter()
        .map(|&((i, j, k, _), v)| Entry3::new(i, j, k, v))
        .collect();
    Ok(Some(CooTensor3::from_entries([d0, d1, d2], entries)?))
}

/// Store a dense factor matrix under `key`: `{key}` holds the row-major
/// `f64` data, `{key}.shape` the `(rows, cols)` geometry.
pub fn persist_factor(cluster: &Cluster, key: &str, m: &Mat) -> Result<()> {
    let dfs = cluster.dfs();
    dfs.put(
        &format!("{key}.shape"),
        vec![(m.rows() as u64, m.cols() as u64)],
    )?;
    dfs.put(key, m.data().to_vec())?;
    Ok(())
}

/// Load a factor stored by [`persist_factor`].
pub fn load_factor(cluster: &Cluster, key: &str) -> Result<Option<Mat>> {
    let dfs = cluster.dfs();
    let Some(shape) = dfs.get::<(u64, u64)>(&format!("{key}.shape")) else {
        return Ok(None);
    };
    let Some(data) = dfs.get::<f64>(key) else {
        return Ok(None);
    };
    let &(rows, cols) = shape
        .first()
        .ok_or_else(|| CoreError::InvalidArgument(format!("dataset '{key}.shape' is empty")))?;
    let m = Mat::from_vec(rows as usize, cols as usize, data.as_slice().to_vec())
        .map_err(CoreError::Linalg)?;
    Ok(Some(m))
}

/// Store mid-run PARAFAC state (`λ` + factors) under `key` — the DFS
/// counterpart of [`crate::checkpoint::save_parafac_state`], written by
/// the sweep loop on durable clusters so factor snapshots land in the
/// block store (metered, restart-visible).
pub fn persist_parafac_state(
    cluster: &Cluster,
    key: &str,
    lambda: &[f64],
    factors: &[Mat; 3],
) -> Result<()> {
    for (f, name) in factors.iter().zip(FACTOR_NAMES) {
        persist_factor(cluster, &format!("{key}.{name}"), f)?;
    }
    cluster
        .dfs()
        .put(&format!("{key}.lambda"), lambda.to_vec())?;
    Ok(())
}

/// Load PARAFAC state stored by [`persist_parafac_state`]: `(λ, [A, B, C])`.
pub fn load_parafac_state(cluster: &Cluster, key: &str) -> Result<Option<(Vec<f64>, [Mat; 3])>> {
    let Some(lambda) = cluster.dfs().get::<f64>(&format!("{key}.lambda")) else {
        return Ok(None);
    };
    let mut factors = Vec::with_capacity(3);
    for name in FACTOR_NAMES {
        match load_factor(cluster, &format!("{key}.{name}"))? {
            Some(f) => factors.push(f),
            None => return Ok(None),
        }
    }
    let [a, b, c]: [Mat; 3] = factors.try_into().expect("exactly three factors were read");
    Ok(Some((lambda.as_slice().to_vec(), [a, b, c])))
}

/// Store mid-run Tucker state (core + factors) under `key`. The core
/// travels as sparse `(Ix4, f64)` records plus a dims dataset, like a
/// tensor.
pub fn persist_tucker_state(
    cluster: &Cluster,
    key: &str,
    core: &DenseTensor3,
    factors: &[Mat; 3],
) -> Result<()> {
    for (f, name) in factors.iter().zip(FACTOR_NAMES) {
        persist_factor(cluster, &format!("{key}.{name}"), f)?;
    }
    persist_tensor(cluster, &format!("{key}.core"), &core.to_coo())
}

/// Load Tucker state stored by [`persist_tucker_state`]:
/// `(core, [A, B, C])`. Core dimensions come from the factor column
/// counts, so trailing all-zero core slices are preserved exactly as in
/// the file-based checkpoint loader.
pub fn load_tucker_state(cluster: &Cluster, key: &str) -> Result<Option<(DenseTensor3, [Mat; 3])>> {
    let mut factors = Vec::with_capacity(3);
    for name in FACTOR_NAMES {
        match load_factor(cluster, &format!("{key}.{name}"))? {
            Some(f) => factors.push(f),
            None => return Ok(None),
        }
    }
    let [a, b, c]: [Mat; 3] = factors.try_into().expect("exactly three factors were read");
    let Some(sparse_core) = load_tensor(cluster, &format!("{key}.core"))? else {
        return Ok(None);
    };
    let dims = [a.cols(), b.cols(), c.cols()];
    let mut core = DenseTensor3::zeros(dims);
    for e in sparse_core.entries() {
        if e.i as usize >= dims[0] || e.j as usize >= dims[1] || e.k as usize >= dims[2] {
            return Err(CoreError::InvalidArgument(format!(
                "core entry ({}, {}, {}) outside factor ranks {dims:?}",
                e.i, e.j, e.k
            )));
        }
        core.set(e.i as usize, e.j as usize, e.k as usize, e.v);
    }
    Ok(Some((core, [a, b, c])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_mapreduce::{ClusterConfig, DfsBackend, DurableConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sparse_random(dims: [u64; 3], nnz: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..nnz)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..dims[0]),
                    rng.gen_range(0..dims[1]),
                    rng.gen_range(0..dims[2]),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    fn durable_cluster(tag: &str) -> (Cluster, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("haten2-core-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cluster = Cluster::new(ClusterConfig {
            dfs: DfsBackend::Durable(DurableConfig::new(&dir)),
            ..ClusterConfig::with_machines(2)
        });
        (cluster, dir)
    }

    #[test]
    fn tensor_roundtrips_through_memory_dfs() {
        let x = sparse_random([6, 5, 4], 30, 11);
        let cluster = Cluster::new(ClusterConfig::with_machines(2));
        persist_tensor(&cluster, "t", &x).unwrap();
        let back = load_tensor(&cluster, "t").unwrap().unwrap();
        assert_eq!(back.dims(), x.dims());
        assert_eq!(back.entries(), x.entries());
        assert!(load_tensor(&cluster, "missing").unwrap().is_none());
    }

    #[test]
    fn tensor_survives_simulated_restart_on_durable_backend() {
        let x = sparse_random([8, 7, 6], 50, 13);
        let (cluster, dir) = durable_cluster("tensor");
        persist_tensor(&cluster, "input", &x).unwrap();
        drop(cluster);

        // A fresh cluster over the same directory finds the tensor,
        // bit-identical (entry values round-trip as raw f64 bits).
        let cluster = Cluster::new(ClusterConfig {
            dfs: DfsBackend::Durable(DurableConfig::new(&dir)),
            ..ClusterConfig::with_machines(2)
        });
        let back = load_tensor(&cluster, "input").unwrap().unwrap();
        assert_eq!(back.dims(), x.dims());
        assert_eq!(back.entries(), x.entries());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn factor_state_roundtrips_across_restart() {
        let mut rng = StdRng::seed_from_u64(17);
        let factors = [
            Mat::random(5, 2, &mut rng),
            Mat::random(4, 2, &mut rng),
            Mat::random(3, 2, &mut rng),
        ];
        let lambda = vec![1.25, -0.5];
        let (cluster, dir) = durable_cluster("state");
        persist_parafac_state(&cluster, "ck", &lambda, &factors).unwrap();
        drop(cluster);

        let cluster = Cluster::new(ClusterConfig {
            dfs: DfsBackend::Durable(DurableConfig::new(&dir)),
            ..ClusterConfig::with_machines(2)
        });
        let (l2, f2) = load_parafac_state(&cluster, "ck").unwrap().unwrap();
        assert_eq!(l2, lambda);
        for (orig, loaded) in factors.iter().zip(&f2) {
            assert_eq!(orig.data(), loaded.data(), "factor bits must survive");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tucker_state_roundtrips() {
        let mut rng = StdRng::seed_from_u64(19);
        let factors = [
            Mat::random(5, 2, &mut rng),
            Mat::random(4, 3, &mut rng),
            Mat::random(3, 2, &mut rng),
        ];
        let mut core = DenseTensor3::zeros([2, 3, 2]);
        core.set(0, 0, 0, 1.5);
        core.set(1, 2, 1, -2.25);
        let cluster = Cluster::new(ClusterConfig::with_machines(2));
        persist_tucker_state(&cluster, "tk", &core, &factors).unwrap();
        let (c2, f2) = load_tucker_state(&cluster, "tk").unwrap().unwrap();
        assert_eq!(c2.dims(), [2, 3, 2]);
        assert!(c2.approx_eq(&core, 0.0));
        for (orig, loaded) in factors.iter().zip(&f2) {
            assert_eq!(orig.data(), loaded.data());
        }
    }
}
