//! Nonnegative PARAFAC on the HaTen2 kernels.
//!
//! The paper's conclusion names nonnegative tensor decomposition as the
//! natural extension of the framework; this module provides it. The
//! algorithm is the Lee–Seung-style multiplicative-update ALS: with
//! nonnegative initialization,
//!
//! ```text
//! A ← A ⊛ M ⊘ (A (CᵀC ⊛ BᵀB) + ε)
//! ```
//!
//! where `M = X₍₁₎(C ⊙ B)` is the same distributed MTTKRP that powers
//! ordinary PARAFAC — so every HaTen2 variant (and its cost profile from
//! Table IV) applies unchanged. Multiplicative updates preserve
//! nonnegativity and monotonically decrease the reconstruction error for
//! nonnegative input tensors.

use crate::als::AlsOptions;
use crate::{parafac, CoreError, Result};
use haten2_linalg::Mat;
use haten2_mapreduce::{Cluster, RunMetrics};
use haten2_tensor::CooTensor3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stabilizer added to denominators of multiplicative updates.
const EPS: f64 = 1e-12;

/// Result of [`nonneg_parafac`].
#[derive(Debug, Clone)]
pub struct NonnegParafacResult {
    /// Nonnegative factor matrices `A ∈ ℝ₊^{I×R}`, `B`, `C`.
    pub factors: [Mat; 3],
    /// Fit `1 − ‖X − X̂‖/‖X‖` after each sweep.
    pub fits: Vec<f64>,
    /// Sweeps executed.
    pub iterations: usize,
    /// MapReduce metrics for the whole decomposition.
    pub metrics: RunMetrics,
}

impl NonnegParafacResult {
    /// Final fit.
    pub fn fit(&self) -> f64 {
        self.fits.last().copied().unwrap_or(0.0)
    }

    /// Model value `X̂(i,j,k) = Σ_r A(i,r) B(j,r) C(k,r)`.
    pub fn predict(&self, i: u64, j: u64, k: u64) -> f64 {
        let [a, b, c] = &self.factors;
        (0..a.cols())
            .map(|r| a.get(i as usize, r) * b.get(j as usize, r) * c.get(k as usize, r))
            .sum()
    }
}

/// Nonnegative 3-way PARAFAC via multiplicative updates, with the MTTKRP
/// executed distributedly by the configured HaTen2 variant.
///
/// Requires a nonnegative input tensor (every stored value ≥ 0); returns
/// [`CoreError::InvalidArgument`] otherwise.
pub fn nonneg_parafac(
    cluster: &Cluster,
    x: &CooTensor3,
    rank: usize,
    opts: &AlsOptions,
) -> Result<NonnegParafacResult> {
    if rank == 0 {
        return Err(CoreError::InvalidArgument("rank must be positive".into()));
    }
    if x.entries().iter().any(|e| e.v < 0.0) {
        return Err(CoreError::InvalidArgument(
            "nonneg_parafac requires a nonnegative tensor".into(),
        ));
    }
    let dims = x.dims();
    let mark = cluster.jobs_run();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    // Strictly positive init keeps the multiplicative dynamics alive.
    let mut init = |rows: usize| {
        let mut m = Mat::zeros(rows, rank);
        for i in 0..rows {
            for r in 0..rank {
                m.set(i, r, rng.gen_range(0.1..1.0));
            }
        }
        m
    };
    let mut factors = [
        init(dims[0] as usize),
        init(dims[1] as usize),
        init(dims[2] as usize),
    ];
    let norm_x_sq = x.fro_norm_sq();
    let norm_x = norm_x_sq.sqrt();

    let mut fits = Vec::new();
    let mut iterations = 0;
    for _ in 0..opts.max_iters {
        iterations += 1;
        let mut last_m: Option<Mat> = None;
        for mode in 0..3 {
            let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            // Numerator: the distributed MTTKRP.
            let m = parafac::mttkrp(
                cluster,
                opts.variant,
                x,
                mode,
                &factors[others[0]],
                &factors[others[1]],
            )?;
            // Denominator: F (G₁ ⊛ G₂), small dense driver-side work.
            let g = factors[others[0]]
                .gram()
                .hadamard(&factors[others[1]].gram())
                .map_err(CoreError::Linalg)?;
            let denom = factors[mode].matmul(&g).map_err(CoreError::Linalg)?;
            let f = &mut factors[mode];
            for i in 0..f.rows() {
                for r in 0..rank {
                    let cur = f.get(i, r);
                    let upd = cur * m.get(i, r) / (denom.get(i, r) + EPS);
                    f.set(i, r, upd.max(0.0));
                }
            }
            if mode == 2 {
                last_m = Some(m);
            }
        }

        // Fit: same algebra as standard ALS, with λ = 1 (factors carry
        // their own scale under multiplicative updates). The inner product
        // must be recomputed after C's update, so derive it from the last
        // MTTKRP and the *updated* C is not valid — instead compute it
        // exactly from the Gram identity using a fresh cheap pass over nnz.
        let _ = last_m;
        let mut inner = 0.0;
        for e in x.entries() {
            let mut model = 0.0;
            for r in 0..rank {
                model += factors[0].get(e.i as usize, r)
                    * factors[1].get(e.j as usize, r)
                    * factors[2].get(e.k as usize, r);
            }
            inner += e.v * model;
        }
        let g_all = factors[0]
            .gram()
            .hadamard(&factors[1].gram())
            .and_then(|g| g.hadamard(&factors[2].gram()))
            .map_err(CoreError::Linalg)?;
        let norm_model_sq: f64 = (0..rank)
            .flat_map(|r| (0..rank).map(move |s| (r, s)))
            .map(|(r, s)| g_all.get(r, s))
            .sum();
        let err_sq = (norm_x_sq + norm_model_sq - 2.0 * inner).max(0.0);
        let fit = if norm_x > 0.0 {
            1.0 - err_sq.sqrt() / norm_x
        } else {
            1.0
        };
        let prev = fits.last().copied();
        fits.push(fit);
        if let Some(p) = prev {
            if (fit - p).abs() < opts.tol {
                break;
            }
        }
    }

    Ok(NonnegParafacResult {
        factors,
        fits,
        iterations,
        metrics: cluster.metrics_since(mark),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variant;
    use haten2_mapreduce::ClusterConfig;
    use haten2_tensor::Entry3;

    fn nonneg_random(dims: [u64; 3], nnz: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..nnz)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..dims[0]),
                    rng.gen_range(0..dims[1]),
                    rng.gen_range(0..dims[2]),
                    rng.gen_range(0.1..2.0),
                )
            })
            .collect();
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    /// Exactly nonneg low-rank tensor.
    fn nonneg_low_rank(dims: [u64; 3], rank: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(dims[0] as usize, rank, &mut rng);
        let b = Mat::random(dims[1] as usize, rank, &mut rng);
        let c = Mat::random(dims[2] as usize, rank, &mut rng);
        let mut entries = Vec::new();
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    let v: f64 = (0..rank)
                        .map(|r| a.get(i as usize, r) * b.get(j as usize, r) * c.get(k as usize, r))
                        .sum();
                    entries.push(Entry3::new(i, j, k, v));
                }
            }
        }
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    #[test]
    fn factors_stay_nonnegative() {
        let x = nonneg_random([8, 7, 6], 50, 81);
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        let opts = AlsOptions {
            max_iters: 5,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = nonneg_parafac(&cluster, &x, 3, &opts).unwrap();
        for f in &res.factors {
            assert!(f.data().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn fit_improves_on_low_rank_nonneg_tensor() {
        let x = nonneg_low_rank([6, 5, 4], 2, 82);
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        let opts = AlsOptions {
            max_iters: 80,
            tol: 1e-9,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = nonneg_parafac(&cluster, &x, 3, &opts).unwrap();
        assert!(res.fit() > 0.95, "fit = {}", res.fit());
        // Predictions track the data.
        for e in x.entries().iter().take(5) {
            let p = res.predict(e.i, e.j, e.k);
            assert!((p - e.v).abs() < 0.2 * e.v.abs().max(0.2), "{p} vs {}", e.v);
        }
    }

    #[test]
    fn fit_monotone_nondecreasing() {
        let x = nonneg_random([7, 7, 7], 60, 83);
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        let opts = AlsOptions {
            max_iters: 12,
            tol: 0.0,
            ..AlsOptions::with_variant(Variant::Dri)
        };
        let res = nonneg_parafac(&cluster, &x, 3, &opts).unwrap();
        for w in res.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "fits {:?}", res.fits);
        }
    }

    #[test]
    fn rejects_negative_tensor() {
        let x = CooTensor3::from_entries([2, 2, 2], vec![Entry3::new(0, 0, 0, -1.0)]).unwrap();
        let cluster = Cluster::with_defaults();
        assert!(nonneg_parafac(&cluster, &x, 2, &AlsOptions::default()).is_err());
    }

    #[test]
    fn variants_agree() {
        let x = nonneg_random([6, 6, 6], 40, 84);
        let mut trajectories = Vec::new();
        for v in [Variant::Dnn, Variant::Dri] {
            let cluster = Cluster::new(ClusterConfig::with_machines(3));
            let opts = AlsOptions {
                max_iters: 4,
                tol: 0.0,
                ..AlsOptions::with_variant(v)
            };
            let res = nonneg_parafac(&cluster, &x, 2, &opts).unwrap();
            trajectories.push(res.fits);
        }
        for (a, b) in trajectories[0].iter().zip(&trajectories[1]) {
            assert!((a - b).abs() < 1e-8);
        }
    }
}
