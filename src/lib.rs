//! # HaTen2-rs — billion-scale tensor decompositions, reproduced in Rust
//!
//! A reproduction of *HaTen2: Billion-scale Tensor Decompositions* (Jeon,
//! Papalexakis, Kang, Faloutsos — ICDE 2015): scalable distributed Tucker
//! and PARAFAC decomposition on MapReduce, here executed on a hand-rolled,
//! metrics-exact MapReduce simulator.
//!
//! ## Quick start
//!
//! ```
//! use haten2::prelude::*;
//!
//! // A small sparse tensor (e.g. network logs: src-ip × dst-ip × port).
//! let x = CooTensor3::from_entries(
//!     [4, 4, 4],
//!     vec![
//!         Entry3::new(0, 1, 2, 1.0),
//!         Entry3::new(1, 2, 3, 2.0),
//!         Entry3::new(2, 0, 1, 1.5),
//!         Entry3::new(3, 3, 0, 0.5),
//!     ],
//! )
//! .unwrap();
//!
//! // A simulated 8-machine cluster.
//! let cluster = Cluster::new(ClusterConfig::with_machines(8));
//!
//! // Rank-2 PARAFAC with the full HaTen2 (DRI) algorithm.
//! let opts = AlsOptions::with_variant(Variant::Dri);
//! let result = parafac_als(&cluster, &x, 2, &opts).unwrap();
//!
//! assert_eq!(result.factors[0].rows(), 4);
//! assert!(result.fit() <= 1.0);
//! // Every MTTKRP took exactly 2 MapReduce jobs (Table IV, DRI row).
//! assert!(result.metrics.total_jobs() % 2 == 0);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`haten2_linalg`]    | hand-rolled dense linear algebra (QR, Jacobi eigen, SVD, pinv, subspace iteration) |
//! | [`haten2_tensor`]    | sparse COO tensors, reference tensor ops, matricization, I/O |
//! | [`haten2_mapreduce`] | the cluster-simulated MapReduce engine with intermediate-data accounting |
//! | [`haten2_core`]      | the HaTen2 algorithms: Naive/DNN/DRN/DRI kernels + ALS drivers + N-way |
//! | [`haten2_baseline`]  | single-machine MET-style comparator with memory budgets |
//! | [`haten2_data`]      | workload generators, KB synthesis, preprocessing, concept discovery |

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub use haten2_baseline as baseline;
pub use haten2_core as core;
pub use haten2_data as data;
pub use haten2_linalg as linalg;
pub use haten2_mapreduce as mapreduce;
pub use haten2_tensor as tensor;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use haten2_core::als::{parafac_als, tucker_als, AlsOptions, ParafacResult, TuckerResult};
    pub use haten2_core::missing::parafac_missing;
    pub use haten2_core::nonneg::nonneg_parafac;
    pub use haten2_core::nway::{nway_mttkrp, nway_parafac_als, nway_tucker_als};
    pub use haten2_core::Variant;
    pub use haten2_data::kb::KnowledgeBase;
    pub use haten2_data::preprocess::{preprocess, PreprocessConfig};
    pub use haten2_data::random::{random_tensor, RandomTensorConfig};
    pub use haten2_linalg::Mat;
    pub use haten2_mapreduce::{Cluster, ClusterConfig};
    pub use haten2_tensor::{CooTensor3, DenseTensor3, DynTensor, Entry3};
}
