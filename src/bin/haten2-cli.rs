//! `haten2` command-line interface: generate workloads, decompose tensors,
//! complete missing values, and inspect tensor files — the operations a
//! downstream user of the library needs without writing Rust.
//!
//! ```text
//! haten2-cli generate random --dims 1000,1000,1000 --nnz 10000 --out x.tns
//! haten2-cli generate kb --preset freebase-music --scale 2 --out kb.tns
//! haten2-cli convert --triples dump.tsv --order spo --out kb.tns
//! haten2-cli stats --input x.tns
//! haten2-cli decompose parafac --input x.tns --rank 10 --out-prefix out/cp
//! haten2-cli decompose tucker  --input x.tns --core 5,5,5 --out-prefix out/tk
//! haten2-cli complete --input observed.tns --rank 5 --out-prefix out/em
//! ```
//!
//! Tensor files are `i j k value` text (0-based); factor matrices are
//! written as `<prefix>.A.mat`, `<prefix>.B.mat`, `<prefix>.C.mat` (plus
//! `<prefix>.lambda.txt` for PARAFAC and `<prefix>.core.tns` for Tucker).

use haten2::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  haten2-cli generate random --dims I,J,K --nnz N [--seed S] --out FILE
  haten2-cli generate kb --preset freebase-music|nell [--scale N] [--seed S] [--raw] --out FILE
  haten2-cli convert --triples FILE [--order spo|sop] [--raw] --out FILE
  haten2-cli stats --input FILE
  haten2-cli decompose parafac --input FILE --rank R [--variant naive|dnn|drn|dri]
             [--iters T] [--machines M] [--nonneg] --out-prefix PREFIX
  haten2-cli decompose tucker --input FILE --core P,Q,R [--variant ...]
             [--iters T] [--machines M] --out-prefix PREFIX
  haten2-cli complete --input FILE --rank R [--iters T] [--machines M] --out-prefix PREFIX";

/// Parse `--key value` flags after the positional arguments.
fn parse_flags(args: &[String]) -> Result<(Vec<&str>, HashMap<&str, String>), String> {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            // Boolean flags have no value; peek to decide.
            match key {
                "raw" | "nonneg" => {
                    flags.insert(key, "true".to_string());
                }
                _ => {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("flag --{key} needs a value"))?;
                    flags.insert(key, v.clone());
                }
            }
        } else {
            pos.push(a.as_str());
        }
    }
    Ok((pos, flags))
}

fn req<'a>(flags: &'a HashMap<&str, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{key}"))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("bad {what} '{s}': {e}"))
}

fn parse_triple(s: &str, what: &str) -> Result<[u64; 3], String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 3 {
        return Err(format!(
            "{what} must be three comma-separated numbers, got '{s}'"
        ));
    }
    Ok([
        parse_u64(parts[0], what)?,
        parse_u64(parts[1], what)?,
        parse_u64(parts[2], what)?,
    ])
}

fn parse_variant(s: &str) -> Result<Variant, String> {
    match s.to_ascii_lowercase().as_str() {
        "naive" => Ok(Variant::Naive),
        "dnn" => Ok(Variant::Dnn),
        "drn" => Ok(Variant::Drn),
        "dri" => Ok(Variant::Dri),
        other => Err(format!("unknown variant '{other}' (naive|dnn|drn|dri)")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    match pos.as_slice() {
        ["generate", "random"] => generate_random(&flags),
        ["generate", "kb"] => generate_kb(&flags),
        ["convert"] => convert_triples(&flags),
        ["stats"] => stats(&flags),
        ["decompose", "parafac"] => decompose_parafac(&flags),
        ["decompose", "tucker"] => decompose_tucker(&flags),
        ["complete"] => complete(&flags),
        [] => Err("no command given".into()),
        other => Err(format!("unknown command: {}", other.join(" "))),
    }
}

fn generate_random(flags: &HashMap<&str, String>) -> Result<(), String> {
    let dims = parse_triple(req(flags, "dims")?, "--dims")?;
    let nnz = parse_u64(req(flags, "nnz")?, "--nnz")? as usize;
    let seed = flags
        .get("seed")
        .map_or(Ok(42), |s| parse_u64(s, "--seed"))?;
    let out = req(flags, "out")?;
    let cfg = RandomTensorConfig {
        dims,
        nnz,
        value_range: (0.0, 1.0),
        seed,
    };
    let t = random_tensor(&cfg);
    haten2::tensor::io::save_coo3(&t, out).map_err(|e| e.to_string())?;
    println!("wrote {} nonzeros ({:?}) to {out}", t.nnz(), t.dims());
    Ok(())
}

fn generate_kb(flags: &HashMap<&str, String>) -> Result<(), String> {
    let preset = req(flags, "preset")?;
    let scale = flags
        .get("scale")
        .map_or(Ok(1), |s| parse_u64(s, "--scale"))? as usize;
    let seed = flags
        .get("seed")
        .map_or(Ok(42), |s| parse_u64(s, "--seed"))?;
    let raw = flags.contains_key("raw");
    let out = req(flags, "out")?;
    let kb = match preset {
        "freebase-music" => KnowledgeBase::freebase_music(scale, seed),
        "nell" => KnowledgeBase::nell(scale, seed),
        other => return Err(format!("unknown preset '{other}' (freebase-music|nell)")),
    };
    let t = if raw {
        kb.to_binary_tensor()
    } else {
        let (t, report) = preprocess(&kb, &PreprocessConfig::default());
        println!(
            "preprocessed: {} literals, {} scarce, {} frequent removed",
            report.literals_removed, report.scarce_removed, report.frequent_removed
        );
        t
    };
    haten2::tensor::io::save_coo3(&t, out).map_err(|e| e.to_string())?;
    println!("wrote {} nonzeros ({:?}) to {out}", t.nnz(), t.dims());
    Ok(())
}

fn convert_triples(flags: &HashMap<&str, String>) -> Result<(), String> {
    use haten2::data::triples::{load_triples, TripleOrder};
    let path = req(flags, "triples")?;
    let order = match flags.get("order").map(String::as_str).unwrap_or("spo") {
        "spo" => TripleOrder::Spo,
        "sop" => TripleOrder::Sop,
        other => return Err(format!("unknown --order '{other}' (spo|sop)")),
    };
    let out = req(flags, "out")?;
    let kb = load_triples(path, order).map_err(|e| e.to_string())?;
    println!(
        "parsed {} triples: {} subjects, {} objects, {} predicates ({} literal)",
        kb.triples.len(),
        kb.subjects.len(),
        kb.objects.len(),
        kb.predicates.len(),
        kb.literal_predicates.len()
    );
    let t = if flags.contains_key("raw") {
        kb.to_binary_tensor()
    } else {
        let (t, report) = preprocess(&kb, &PreprocessConfig::default());
        println!(
            "preprocessed: {} literals, {} scarce, {} frequent removed",
            report.literals_removed, report.scarce_removed, report.frequent_removed
        );
        t
    };
    haten2::tensor::io::save_coo3(&t, out).map_err(|e| e.to_string())?;
    println!("wrote {} nonzeros ({:?}) to {out}", t.nnz(), t.dims());
    Ok(())
}

fn stats(flags: &HashMap<&str, String>) -> Result<(), String> {
    let input = req(flags, "input")?;
    let t = haten2::tensor::io::load_coo3(input).map_err(|e| e.to_string())?;
    println!("file:      {input}");
    println!("dims:      {:?}", t.dims());
    println!("nnz:       {}", t.nnz());
    println!("density:   {:.3e}", t.density());
    println!("fro norm:  {:.6}", t.fro_norm());
    for mode in 0..3 {
        if let Ok(Some((idx, count))) = t.heaviest_slice(mode) {
            println!(
                "mode {mode}: {} distinct indices, heaviest slice {idx} ({count} nnz)",
                t.distinct_along(mode)
            );
        }
    }
    Ok(())
}

fn cluster_from(flags: &HashMap<&str, String>) -> Result<Cluster, String> {
    let machines = flags
        .get("machines")
        .map_or(Ok(16), |s| parse_u64(s, "--machines"))? as usize;
    Ok(Cluster::new(ClusterConfig::with_machines(machines.max(1))))
}

fn als_opts(flags: &HashMap<&str, String>) -> Result<AlsOptions, String> {
    let variant = flags
        .get("variant")
        .map_or(Ok(Variant::Dri), |s| parse_variant(s))?;
    let iters = flags
        .get("iters")
        .map_or(Ok(20), |s| parse_u64(s, "--iters"))? as usize;
    let seed = flags
        .get("seed")
        .map_or(Ok(0x5eed), |s| parse_u64(s, "--seed"))?;
    Ok(AlsOptions {
        variant,
        max_iters: iters,
        seed,
        ..AlsOptions::default()
    })
}

fn write_factors(prefix: &str, factors: &[Mat], names: &[&str]) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(prefix).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
    }
    for (f, name) in factors.iter().zip(names) {
        let path = format!("{prefix}.{name}.mat");
        haten2::linalg::save_mat(f, &path).map_err(|e| e.to_string())?;
        println!("wrote {path} ({}x{})", f.rows(), f.cols());
    }
    Ok(())
}

fn print_metrics(m: &haten2::mapreduce::RunMetrics) {
    println!(
        "mapreduce: {} jobs, max intermediate {} records, {:.1} simulated s, {:.2} wall s",
        m.total_jobs(),
        m.max_intermediate_records(),
        m.total_sim_time_s(),
        m.total_wall_time_s()
    );
}

fn decompose_parafac(flags: &HashMap<&str, String>) -> Result<(), String> {
    let input = req(flags, "input")?;
    let rank = parse_u64(req(flags, "rank")?, "--rank")? as usize;
    let prefix = req(flags, "out-prefix")?;
    let t = haten2::tensor::io::load_coo3(input).map_err(|e| e.to_string())?;
    let cluster = cluster_from(flags)?;
    let opts = als_opts(flags)?;

    if flags.contains_key("nonneg") {
        let res = nonneg_parafac(&cluster, &t, rank, &opts).map_err(|e| e.to_string())?;
        println!(
            "nonnegative PARAFAC rank {rank}: fit {:.4} after {} sweeps",
            res.fit(),
            res.iterations
        );
        write_factors(prefix, &res.factors, &["A", "B", "C"])?;
        print_metrics(&res.metrics);
        return Ok(());
    }

    let res = parafac_als(&cluster, &t, rank, &opts).map_err(|e| e.to_string())?;
    println!(
        "PARAFAC rank {rank} ({}): fit {:.4} after {} sweeps",
        opts.variant,
        res.fit(),
        res.iterations
    );
    write_factors(prefix, &res.factors, &["A", "B", "C"])?;
    let lpath = format!("{prefix}.lambda.txt");
    std::fs::write(
        &lpath,
        res.lambda
            .iter()
            .map(f64::to_string)
            .collect::<Vec<_>>()
            .join("\n")
            + "\n",
    )
    .map_err(|e| e.to_string())?;
    println!("wrote {lpath}");
    print_metrics(&res.metrics);
    Ok(())
}

fn decompose_tucker(flags: &HashMap<&str, String>) -> Result<(), String> {
    let input = req(flags, "input")?;
    let core = parse_triple(req(flags, "core")?, "--core")?;
    let core = [core[0] as usize, core[1] as usize, core[2] as usize];
    let prefix = req(flags, "out-prefix")?;
    let t = haten2::tensor::io::load_coo3(input).map_err(|e| e.to_string())?;
    let cluster = cluster_from(flags)?;
    let opts = als_opts(flags)?;
    let res = tucker_als(&cluster, &t, core, &opts).map_err(|e| e.to_string())?;
    println!(
        "Tucker core {core:?} ({}): fit {:.4} after {} sweeps",
        opts.variant, res.fit, res.iterations
    );
    write_factors(prefix, &res.factors, &["A", "B", "C"])?;
    let cpath = format!("{prefix}.core.tns");
    haten2::tensor::io::save_coo3(&res.core.to_coo(), &cpath).map_err(|e| e.to_string())?;
    println!("wrote {cpath}");
    print_metrics(&res.metrics);
    Ok(())
}

fn complete(flags: &HashMap<&str, String>) -> Result<(), String> {
    let input = req(flags, "input")?;
    let rank = parse_u64(req(flags, "rank")?, "--rank")? as usize;
    let prefix = req(flags, "out-prefix")?;
    let t = haten2::tensor::io::load_coo3(input).map_err(|e| e.to_string())?;
    let cluster = cluster_from(flags)?;
    let opts = als_opts(flags)?;
    let res = parafac_missing(&cluster, &t, rank, &opts).map_err(|e| e.to_string())?;
    println!(
        "EM-ALS completion rank {rank}: observed fit {:.4} after {} sweeps",
        res.fit(),
        res.iterations
    );
    write_factors(prefix, &res.factors, &["A", "B", "C"])?;
    print_metrics(&res.metrics);
    Ok(())
}
