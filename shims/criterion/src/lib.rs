//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros so that
//! `cargo bench` targets compile and run without crates-io access. Each
//! bench runs its closure a small, bounded number of iterations and prints
//! the mean wall time — there is no statistical analysis, outlier
//! rejection, plotting, or baseline comparison. Use the repo's own
//! `BENCH_*.json` harnesses for tracked numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handle, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Default number of timed iterations per bench in this stand-in
    /// (upstream defaults to 100 samples; this runs far fewer to keep
    /// offline runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this stand-in does a single warm-up
    /// iteration regardless.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; iteration count is governed by
    /// [`BenchmarkGroup::sample_size`] alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Time `f` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration, then the timed batch.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = Some(start.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        iterations: sample_size,
        elapsed: None,
    };
    f(&mut b);
    match b.elapsed {
        Some(total) => {
            let mean = total.as_secs_f64() / sample_size as f64;
            println!(
                "bench {label}: mean {:.3} ms over {sample_size} iters",
                mean * 1e3
            );
        }
        None => println!("bench {label}: no measurement (closure never called iter)"),
    }
}

/// Collects benchmark functions into a runnable group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0usize;
        c.sample_size(3)
            .bench_function("counter", |b| b.iter(|| count += 1));
        // 1 warm-up + 3 timed.
        assert_eq!(count, 4);
    }

    #[test]
    fn group_bench_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut hits = 0usize;
        g.sample_size(2)
            .bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
                b.iter(|| {
                    assert_eq!(x, 7);
                    hits += 1;
                })
            });
        g.finish();
        assert_eq!(hits, 3);
    }
}
