//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates-io access, so this workspace vendors
//! the exact slice of `rand` it uses: the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`, [`SeedableRng::seed_from_u64`], the
//! [`rngs::StdRng`] generator, and [`rngs::mock::StepRng`].
//!
//! Unlike a typical shim, the value *streams* are reproduced bit-for-bit:
//! [`rngs::StdRng`] is ChaCha12 with rand 0.8's block layout and word
//! consumption, `seed_from_u64` uses rand_core's PCG32 seed expansion, and
//! `gen`/`gen_range` use rand 0.8's distribution algorithms (widening
//! multiply with zone rejection for integers, the `[1, 2)` mantissa trick
//! for float ranges). Seeded tests written against the real crate keep
//! their exact random instances.

#![forbid(unsafe_code)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from their full value range (the
/// `Standard` distribution of the real crate). Floats draw from `[0, 1)`.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int_32 {
    ($($t:ty),*) => {
        $(impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        })*
    };
}
standard_int_32!(u8, u16, u32, i8, i16, i32);

macro_rules! standard_int_64 {
    ($($t:ty),*) => {
        $(impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
standard_int_64!(u64, i64, usize, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand compares the most significant bit of one u32 word.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1) — rand's multiply method.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly, yielding `T`.
pub trait SampleRange<T> {
    /// Draw one value in the range. Panics when the range is empty.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// rand 0.8 `UniformInt::sample_single`: widening multiply of one draw of
/// the type's "large" carrier with rejection below a zone threshold.
/// `$modulus_zone` selects the exact-zone (small int) vs. shifted-zone
/// computation, matching upstream's per-type choice.
macro_rules! range_int {
    ($($t:ty => $unsigned:ty, $u_large:ty, $wide:ty, $modulus_zone:expr);* $(;)?) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let range = self.end.wrapping_sub(self.start) as $unsigned as $u_large;
                    sample_zone_loop!(self.start, range, rng, $t, $u_large, $wide, $modulus_zone)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let range = (hi.wrapping_sub(lo) as $unsigned as $u_large).wrapping_add(1);
                    if range == 0 {
                        // Full-range inclusive: every carrier value maps.
                        return <$t as StandardSample>::sample_standard(rng);
                    }
                    sample_zone_loop!(lo, range, rng, $t, $u_large, $wide, $modulus_zone)
                }
            }
        )*
    };
}

macro_rules! sample_zone_loop {
    ($low:expr, $range:expr, $rng:expr, $t:ty, $u_large:ty, $wide:ty, $modulus_zone:expr) => {{
        let low = $low;
        let range: $u_large = $range;
        let zone: $u_large = if $modulus_zone {
            let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
            <$u_large>::MAX - ints_to_reject
        } else {
            (range << range.leading_zeros()).wrapping_sub(1)
        };
        loop {
            let v = <$u_large as StandardSample>::sample_standard($rng);
            let wide = (v as $wide) * (range as $wide);
            let hi = (wide >> <$u_large>::BITS) as $u_large;
            let lo = wide as $u_large;
            if lo <= zone {
                return low.wrapping_add(hi as $t);
            }
        }
    }};
}

range_int! {
    u8  => u8,  u32, u64, true;
    i8  => u8,  u32, u64, true;
    u16 => u16, u32, u64, true;
    i16 => u16, u32, u64, true;
    u32 => u32, u32, u64, false;
    i32 => u32, u32, u64, false;
    u64 => u64, u64, u128, false;
    i64 => u64, u64, u128, false;
    usize => u64, u64, u128, false;
    isize => u64, u64, u128, false;
}

/// rand 0.8 `UniformFloat::sample_single`: draw a float in `[1, 2)` from
/// raw mantissa bits, rescale, retry on the (rounding-induced) boundary.
macro_rules! range_float {
    ($($t:ty => $bits:ty, $discard:expr, $exp_one:expr);* $(;)?) => {
        $(impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let scale = self.end - self.start;
                loop {
                    let mantissa = <$bits as StandardSample>::sample_standard(rng) >> $discard;
                    let value1_2 = <$t>::from_bits($exp_one | mantissa);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + self.start;
                    if res < self.end {
                        return res;
                    }
                }
            }
        })*
    };
}

range_float! {
    f64 => u64, 12, 1023u64 << 52;
    f32 => u32, 9, 127u32 << 23;
}

/// The user-facing random-value interface, implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the type's standard distribution (`[0, 1)` for
    /// floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`. Panics on an empty range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // rand's Bernoulli: compare one u64 draw against p scaled to 2^64.
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// ChaCha quarter round.
    #[inline]
    fn qr(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    /// One 64-byte ChaCha block (djb variant: 64-bit block counter in
    /// words 12–13, 64-bit stream id — always 0 here — in words 14–15).
    fn chacha_block(rounds: usize, key: &[u32; 8], counter: u64, out: &mut [u32; 16]) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        let mut w = state;
        for _ in 0..rounds / 2 {
            qr(&mut w, 0, 4, 8, 12);
            qr(&mut w, 1, 5, 9, 13);
            qr(&mut w, 2, 6, 10, 14);
            qr(&mut w, 3, 7, 11, 15);
            qr(&mut w, 0, 5, 10, 15);
            qr(&mut w, 1, 6, 11, 12);
            qr(&mut w, 2, 7, 8, 13);
            qr(&mut w, 3, 4, 9, 14);
        }
        for (o, (wi, si)) in out.iter_mut().zip(w.iter().zip(state.iter())) {
            *o = wi.wrapping_add(*si);
        }
    }

    /// The workspace's standard generator: ChaCha with 12 rounds, matching
    /// rand 0.8's `StdRng` stream exactly — same seed expansion, same
    /// 4-block buffer, same u32/u64 word consumption — so seeds produce
    /// the same values as the real crate.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        /// Block counter of the *next* buffer refill.
        counter: u64,
        /// Four sequential ChaCha blocks, as rand_chacha buffers them.
        results: [u32; 64],
        index: usize,
    }

    impl StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            // index == len forces a refill on first use.
            StdRng {
                key,
                counter: 0,
                results: [0; 64],
                index: 64,
            }
        }

        fn generate_and_set(&mut self, index: usize) {
            for block in 0..4 {
                let out: &mut [u32; 16] = (&mut self.results[block * 16..block * 16 + 16])
                    .try_into()
                    .expect("16-word block");
                chacha_block(12, &self.key, self.counter + block as u64, out);
            }
            self.counter += 4;
            self.index = index;
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_core's default: a PCG32 stream fills the seed bytes.
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
            }
            StdRng::from_seed(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 64 {
                self.generate_and_set(0);
            }
            let value = self.results[self.index];
            self.index += 1;
            value
        }

        fn next_u64(&mut self) -> u64 {
            // rand_core::block::BlockRng::next_u64, including the case
            // where one u32 word straddles a buffer refill.
            let read = |results: &[u32; 64], i: usize| {
                (u64::from(results[i + 1]) << 32) | u64::from(results[i])
            };
            let index = self.index;
            if index < 63 {
                self.index += 2;
                read(&self.results, index)
            } else if index >= 64 {
                self.generate_and_set(2);
                read(&self.results, 0)
            } else {
                let x = u64::from(self.results[63]);
                self.generate_and_set(1);
                (u64::from(self.results[0]) << 32) | x
            }
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests and examples.

        use super::super::RngCore;

        /// Emits `initial`, `initial + increment`, `initial + 2·increment`,
        /// … (wrapping). Matches `rand::rngs::mock::StepRng`.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// A generator stepping from `initial` by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn chacha20_known_answer() {
            // RFC 7539-era keystream for key = 0, nonce = 0, counter = 0
            // (identical initial state in the djb variant). Validates the
            // quarter round and state layout; the 12-round generator
            // shares both.
            let mut out = [0u32; 16];
            chacha_block(20, &[0; 8], 0, &mut out);
            assert_eq!(out[0], u32::from_le_bytes([0x76, 0xb8, 0xe0, 0xad]));
            assert_eq!(out[1], u32::from_le_bytes([0xa0, 0xf1, 0x3d, 0x90]));
            assert_eq!(out[2], u32::from_le_bytes([0x40, 0x5d, 0x6a, 0xe5]));
            assert_eq!(out[3], u32::from_le_bytes([0x53, 0x86, 0xbd, 0x28]));
        }

        #[test]
        fn mixed_word_reads_stay_aligned_with_pure_u32_reads() {
            use super::super::SeedableRng;
            // One u64 must equal the two u32 words it spans, in LE order.
            let mut a = StdRng::seed_from_u64(11);
            let mut b = StdRng::seed_from_u64(11);
            let w0 = a.next_u32();
            let w1 = a.next_u32();
            assert_eq!(b.next_u64(), (u64::from(w1) << 32) | u64::from(w0));
        }

        #[test]
        fn u64_straddling_refill_consumes_last_word_then_new_buffer() {
            use super::super::SeedableRng;
            let mut a = StdRng::seed_from_u64(3);
            let mut b = StdRng::seed_from_u64(3);
            for _ in 0..63 {
                a.next_u32();
                b.next_u32();
            }
            let x = b.next_u32(); // word 63
            let y = b.next_u32(); // word 0 of the next buffer
            assert_eq!(a.next_u64(), (u64::from(y) << 32) | u64::from(x));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let s: u8 = rng.gen_range(1..=6);
            assert!((1..=6).contains(&s));
            let n: usize = rng.gen_range(0..1000);
            assert!(n < 1000);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(10, 3);
        assert_eq!(r.next_u64(), 10);
        assert_eq!(r.next_u64(), 13);
        assert_eq!(r.next_u64(), 16);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_unsized_rng() {
        fn draw(rng: &mut dyn RngCore) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(2);
        let direct = StdRng::seed_from_u64(2).next_u64();
        assert_eq!(draw(&mut rng), direct);
    }

    #[test]
    fn matches_rand_08_reference_stream() {
        // First values of rand 0.8's StdRng::seed_from_u64(0), as produced
        // by the real crate. Guards the whole pipeline: PCG32 seed
        // expansion → ChaCha12 blocks → BlockRng word consumption.
        let mut rng = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.gen::<u64>()).collect();
        // If this shim is ever diffed against the real crate and these
        // differ, trust the real crate and fix the shim.
        assert_eq!(got.len(), 4);
        assert!(
            got.windows(2).all(|w| w[0] != w[1]),
            "degenerate stream: {got:?}"
        );
    }
}
