//! Value-generation strategies.
//!
//! A [`Strategy`] produces one random value per call from a [`TestRng`].
//! Unlike upstream proptest there is no value tree and no shrinking — a
//! strategy is just a deterministic function of the RNG state.

use crate::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives from
    /// it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy over a type's full value range; see [`any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The canonical strategy for `T`: uniform over the whole type.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! any_via_standard {
    ($($t:ty),*) => {
        $(impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        })*
    };
}
any_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

macro_rules! range_strategies {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        })*
    };
}
float_range_strategies!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::__case_rng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = __case_rng("ranges_and_tuples", 0);
        let s = (1usize..5, -1.0f64..1.0, any::<u64>());
        for _ in 0..200 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = __case_rng("map_flat_map", 0);
        let s = (1usize..4, 1usize..4).prop_flat_map(|(m, n)| {
            crate::collection::vec(0u64..10, m * n).prop_map(move |v| (m, n, v))
        });
        for _ in 0..100 {
            let (m, n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), m * n);
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = __case_rng("just", 0);
        assert_eq!(Just(41u8).generate(&mut rng), 41);
    }
}
