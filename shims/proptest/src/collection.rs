//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Anything usable as the size argument of [`vec`]: a fixed length or a
/// range of lengths.
pub trait SizeRange {
    /// Draw a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector whose elements come from `element` and whose length comes from
/// `size` (a `usize` or a range of `usize`).
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::__case_rng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = __case_rng("vec_sizes", 0);
        let s = vec(0u64..100, 3..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn vec_fixed_size() {
        let mut rng = __case_rng("vec_fixed", 0);
        assert_eq!(vec(0u64..10, 5usize).generate(&mut rng).len(), 5);
    }
}
