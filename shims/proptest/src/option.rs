//! Strategies for `Option<T>`, mirroring upstream's `proptest::option`.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Weighted toward `Some` like upstream, while `None` still shows
        // up often enough to exercise the degenerate case.
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Some(inner)` three times out of four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::__case_rng;

    #[test]
    fn of_generates_both_variants() {
        let mut rng = __case_rng("option_of", 0);
        let s = of(0u64..10);
        let values: Vec<Option<u64>> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().flatten().all(|v| *v < 10));
    }
}
