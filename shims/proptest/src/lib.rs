//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), range / tuple
//! / [`collection::vec`] / [`any`] strategies, [`Strategy::prop_map`] and
//! [`Strategy::prop_flat_map`], and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the seed-derived case index
//!   and the panic message, not a minimized input.
//! * **Deterministic cases.** Each test's inputs derive from a fixed seed
//!   (an FNV hash of the test name) plus the case index, so failures
//!   reproduce across runs — there is no `PROPTEST_CASES` environment
//!   handling or persistence file.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod option;
pub mod strategy;

pub use strategy::{any, Any, FlatMap, Just, Map, Strategy};

/// Per-`proptest!`-block configuration. Only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// True when the case was rejected (assumption unmet), not failed.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

/// Result type the bodies of [`proptest!`] tests produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG driving strategy generation.
pub type TestRng = StdRng;

/// Deterministic per-test, per-case RNG. Public for the macros; not part
/// of the upstream API.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` random instantiations of its
/// arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rejected = 0u32;
                let mut case = 0u32;
                let mut ran = 0u32;
                // Allow extra iterations to compensate for rejected cases,
                // like upstream's max_global_rejects.
                while ran < config.cases && case < config.cases.saturating_mul(16) {
                    let mut rng = $crate::__case_rng(stringify!($name), case);
                    case += 1;
                    $(let $arg_pat =
                        $crate::Strategy::generate(&($arg_strat), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject) => rejected += 1,
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "property '{}' failed at case {}: {}",
                            stringify!($name),
                            case - 1,
                            msg
                        ),
                    }
                }
                assert!(
                    ran > 0 || config.cases == 0,
                    "property '{}': every case was rejected ({} rejections)",
                    stringify!($name),
                    rejected
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the case
/// fails with the formatted message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}
